//! Offline stand-in for the `serde` facade.
//!
//! The build environment has no crates.io access, so the workspace ships a
//! minimal, self-contained (de)serialization layer under the familiar crate
//! names. The data model is a JSON value tree ([`Value`]); the [`Serialize`]
//! and [`Deserialize`] traits convert types to and from that tree, and the
//! companion `serde_json` crate renders/parses JSON text. The derive macros
//! (`#[derive(Serialize, Deserialize)]`) mirror serde's external tagging:
//!
//! - named-field struct → object
//! - newtype struct → inner value
//! - tuple struct → array
//! - unit enum variant → string
//! - data-carrying enum variant → `{"Variant": …}`
//!
//! Only the API surface this workspace uses is provided.

use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};
use std::fmt;

pub use serde_derive::{Deserialize, Serialize};

/// (De)serialization error: a message, optionally with a JSON path hint.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(pub String);

impl Error {
    /// Construct an error from any displayable message.
    pub fn msg(m: impl fmt::Display) -> Self {
        Error(m.to_string())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for Error {}

/// The self-describing data model: a JSON value tree.
///
/// Integers keep their signedness (`UInt`/`Int`) so `u64` seeds round-trip
/// exactly; floats render via Rust's shortest round-trip formatting.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Non-negative integer.
    UInt(u64),
    /// Negative integer.
    Int(i64),
    /// Floating-point number.
    Float(f64),
    /// String.
    Str(String),
    /// Array.
    Array(Vec<Value>),
    /// Object; insertion-ordered.
    Object(Map),
}

/// Insertion-ordered string-keyed map, the payload of [`Value::Object`].
///
/// Backed by a vector of pairs (objects here are small); `insert` replaces
/// an existing key in place, matching `serde_json::Map` semantics.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Map {
    entries: Vec<(String, Value)>,
}

impl Map {
    /// Empty map.
    pub fn new() -> Self {
        Map::default()
    }

    /// Insert `value` under `key`, returning the previous value if any.
    pub fn insert(&mut self, key: impl Into<String>, value: Value) -> Option<Value> {
        let key = key.into();
        match self.entries.iter_mut().find(|(k, _)| *k == key) {
            Some(slot) => Some(std::mem::replace(&mut slot.1, value)),
            None => {
                self.entries.push((key, value));
                None
            }
        }
    }

    /// Member lookup by key.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.entries.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// Whether `key` is present.
    pub fn contains_key(&self, key: &str) -> bool {
        self.get(key).is_some()
    }

    /// Iterate entries in insertion order.
    pub fn iter(&self) -> std::slice::Iter<'_, (String, Value)> {
        self.entries.iter()
    }

    /// First entry in insertion order (the tag of an externally-tagged
    /// enum value).
    pub fn first(&self) -> Option<&(String, Value)> {
        self.entries.first()
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the map has no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

impl From<Vec<(String, Value)>> for Map {
    fn from(entries: Vec<(String, Value)>) -> Self {
        Map { entries }
    }
}

impl FromIterator<(String, Value)> for Map {
    fn from_iter<I: IntoIterator<Item = (String, Value)>>(iter: I) -> Self {
        Map {
            entries: iter.into_iter().collect(),
        }
    }
}

impl IntoIterator for Map {
    type Item = (String, Value);
    type IntoIter = std::vec::IntoIter<(String, Value)>;
    fn into_iter(self) -> Self::IntoIter {
        self.entries.into_iter()
    }
}

impl<'a> IntoIterator for &'a Map {
    type Item = &'a (String, Value);
    type IntoIter = std::slice::Iter<'a, (String, Value)>;
    fn into_iter(self) -> Self::IntoIter {
        self.entries.iter()
    }
}

impl Value {
    /// `&str` view of a string value.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Boolean view.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// `u64` view of a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::UInt(u) => Some(*u),
            Value::Int(i) if *i >= 0 => Some(*i as u64),
            _ => None,
        }
    }

    /// `i64` view of any integer that fits.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            Value::UInt(u) if *u <= i64::MAX as u64 => Some(*u as i64),
            _ => None,
        }
    }

    /// `f64` view of any number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Float(f) => Some(*f),
            Value::UInt(u) => Some(*u as f64),
            Value::Int(i) => Some(*i as f64),
            _ => None,
        }
    }

    /// Array view.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// Object view (ordered key/value pairs).
    pub fn as_object(&self) -> Option<&Map> {
        match self {
            Value::Object(o) => Some(o),
            _ => None,
        }
    }

    /// Whether this is `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Object member lookup by key.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(o) => o.get(key),
            _ => None,
        }
    }

    /// Array element lookup by index.
    pub fn get_index(&self, idx: usize) -> Option<&Value> {
        match self {
            Value::Array(a) => a.get(idx),
            _ => None,
        }
    }

    /// Render as compact JSON text.
    pub fn render_json(&self) -> String {
        let mut out = String::new();
        self.write_json(&mut out, None, 0);
        out
    }

    /// Render as human-indented JSON text.
    pub fn render_json_pretty(&self) -> String {
        let mut out = String::new();
        self.write_json(&mut out, Some(2), 0);
        out
    }

    fn write_json(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::UInt(u) => out.push_str(&u.to_string()),
            Value::Int(i) => out.push_str(&i.to_string()),
            Value::Float(f) => {
                if f.is_finite() {
                    let s = f.to_string();
                    out.push_str(&s);
                    // Keep a float marker so integral floats stay floats.
                    if !s.contains(['.', 'e', 'E']) {
                        out.push_str(".0");
                    }
                } else {
                    out.push_str("null");
                }
            }
            Value::Str(s) => write_json_string(out, s),
            Value::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent, depth + 1);
                    item.write_json(out, indent, depth + 1);
                }
                if !items.is_empty() {
                    newline_indent(out, indent, depth);
                }
                out.push(']');
            }
            Value::Object(members) => {
                out.push('{');
                for (i, (k, v)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent, depth + 1);
                    write_json_string(out, k);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    v.write_json(out, indent, depth + 1);
                }
                if !members.is_empty() {
                    newline_indent(out, indent, depth);
                }
                out.push('}');
            }
        }
    }

    /// Parse JSON text into a value tree.
    ///
    /// # Errors
    ///
    /// Returns a descriptive [`Error`] on malformed input.
    pub fn parse_json(text: &str) -> Result<Value, Error> {
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        let v = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(Error::msg(format!("trailing characters at byte {pos}")));
        }
        Ok(v)
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(w) = indent {
        out.push('\n');
        for _ in 0..w * depth {
            out.push(' ');
        }
    }
}

fn write_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Value, Error> {
    skip_ws(b, pos);
    let Some(&c) = b.get(*pos) else {
        return Err(Error::msg("unexpected end of input"));
    };
    match c {
        b'n' => parse_lit(b, pos, "null", Value::Null),
        b't' => parse_lit(b, pos, "true", Value::Bool(true)),
        b'f' => parse_lit(b, pos, "false", Value::Bool(false)),
        b'"' => Ok(Value::Str(parse_string(b, pos)?)),
        b'[' => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Value::Array(items));
            }
            loop {
                items.push(parse_value(b, pos)?);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Value::Array(items));
                    }
                    _ => return Err(Error::msg(format!("expected ',' or ']' at byte {pos}"))),
                }
            }
        }
        b'{' => {
            *pos += 1;
            let mut members = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Value::Object(Map::from(members)));
            }
            loop {
                skip_ws(b, pos);
                let key = parse_string(b, pos)?;
                skip_ws(b, pos);
                if b.get(*pos) != Some(&b':') {
                    return Err(Error::msg(format!("expected ':' at byte {pos}")));
                }
                *pos += 1;
                let val = parse_value(b, pos)?;
                members.push((key, val));
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Value::Object(Map::from(members)));
                    }
                    _ => return Err(Error::msg(format!("expected ',' or '}}' at byte {pos}"))),
                }
            }
        }
        b'-' | b'0'..=b'9' => parse_number(b, pos),
        other => Err(Error::msg(format!(
            "unexpected character '{}' at byte {pos}",
            other as char
        ))),
    }
}

fn parse_lit(b: &[u8], pos: &mut usize, lit: &str, v: Value) -> Result<Value, Error> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(v)
    } else {
        Err(Error::msg(format!("invalid literal at byte {pos}")))
    }
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<Value, Error> {
    let start = *pos;
    if b.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    let mut is_float = false;
    while let Some(&c) = b.get(*pos) {
        match c {
            b'0'..=b'9' => *pos += 1,
            b'.' | b'e' | b'E' | b'+' | b'-' => {
                is_float = true;
                *pos += 1;
            }
            _ => break,
        }
    }
    let text = std::str::from_utf8(&b[start..*pos]).map_err(Error::msg)?;
    if !is_float {
        if let Ok(u) = text.parse::<u64>() {
            return Ok(Value::UInt(u));
        }
        if let Ok(i) = text.parse::<i64>() {
            return Ok(Value::Int(i));
        }
    }
    text.parse::<f64>()
        .map(Value::Float)
        .map_err(|e| Error::msg(format!("bad number '{text}': {e}")))
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, Error> {
    if b.get(*pos) != Some(&b'"') {
        return Err(Error::msg(format!("expected string at byte {pos}")));
    }
    *pos += 1;
    let mut out = String::new();
    loop {
        let Some(&c) = b.get(*pos) else {
            return Err(Error::msg("unterminated string"));
        };
        match c {
            b'"' => {
                *pos += 1;
                return Ok(out);
            }
            b'\\' => {
                *pos += 1;
                let Some(&esc) = b.get(*pos) else {
                    return Err(Error::msg("unterminated escape"));
                };
                *pos += 1;
                match esc {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'/' => out.push('/'),
                    b'n' => out.push('\n'),
                    b'r' => out.push('\r'),
                    b't' => out.push('\t'),
                    b'b' => out.push('\u{8}'),
                    b'f' => out.push('\u{c}'),
                    b'u' => {
                        let hex = b
                            .get(*pos..*pos + 4)
                            .ok_or_else(|| Error::msg("truncated \\u escape"))?;
                        let hex = std::str::from_utf8(hex).map_err(Error::msg)?;
                        let cp = u32::from_str_radix(hex, 16)
                            .map_err(|e| Error::msg(format!("bad \\u escape: {e}")))?;
                        *pos += 4;
                        // Surrogate pairs: read the low half if present.
                        let ch = if (0xD800..0xDC00).contains(&cp) {
                            if b.get(*pos) == Some(&b'\\') && b.get(*pos + 1) == Some(&b'u') {
                                let lo_hex = b
                                    .get(*pos + 2..*pos + 6)
                                    .ok_or_else(|| Error::msg("truncated surrogate"))?;
                                let lo_hex = std::str::from_utf8(lo_hex).map_err(Error::msg)?;
                                let lo = u32::from_str_radix(lo_hex, 16)
                                    .map_err(|e| Error::msg(format!("bad surrogate: {e}")))?;
                                *pos += 6;
                                let combined =
                                    0x10000 + ((cp - 0xD800) << 10) + (lo.wrapping_sub(0xDC00));
                                char::from_u32(combined)
                            } else {
                                None
                            }
                        } else {
                            char::from_u32(cp)
                        };
                        out.push(ch.ok_or_else(|| Error::msg("invalid \\u escape"))?);
                    }
                    other => {
                        return Err(Error::msg(format!("bad escape '\\{}'", other as char)));
                    }
                }
            }
            _ => {
                // Bulk-consume the run up to the next quote or escape,
                // validating UTF-8 once per run — not once per scalar
                // over the whole remaining input, which made parsing
                // quadratic in document size. Scanning bytewise is safe:
                // UTF-8 continuation bytes are ≥ 0x80 and can never alias
                // `"` or `\`.
                let start = *pos;
                while *pos < b.len() && b[*pos] != b'"' && b[*pos] != b'\\' {
                    *pos += 1;
                }
                let run = std::str::from_utf8(&b[start..*pos])
                    .map_err(|_| Error::msg("invalid UTF-8 in string"))?;
                out.push_str(run);
            }
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.render_json())
    }
}

// ---------------------------------------------------------------------------
// Equality against plain Rust values (test ergonomics: `v["x"] == "warm"`).

impl PartialEq<str> for Value {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == Some(other)
    }
}

impl PartialEq<&str> for Value {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == Some(*other)
    }
}

impl PartialEq<String> for Value {
    fn eq(&self, other: &String) -> bool {
        self.as_str() == Some(other.as_str())
    }
}

impl PartialEq<bool> for Value {
    fn eq(&self, other: &bool) -> bool {
        self.as_bool() == Some(*other)
    }
}

impl PartialEq<u64> for Value {
    fn eq(&self, other: &u64) -> bool {
        self.as_u64() == Some(*other)
    }
}

impl PartialEq<i64> for Value {
    fn eq(&self, other: &i64) -> bool {
        self.as_i64() == Some(*other)
    }
}

impl PartialEq<i32> for Value {
    fn eq(&self, other: &i32) -> bool {
        self.as_i64() == Some(*other as i64)
    }
}

impl PartialEq<usize> for Value {
    fn eq(&self, other: &usize) -> bool {
        self.as_u64() == Some(*other as u64)
    }
}

impl PartialEq<f64> for Value {
    fn eq(&self, other: &f64) -> bool {
        matches!(self, Value::Float(f) if f == other)
            || (self.as_f64() == Some(*other) && !matches!(self, Value::Str(_)))
    }
}

static NULL_VALUE: Value = Value::Null;

impl std::ops::Index<&str> for Value {
    type Output = Value;
    fn index(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&NULL_VALUE)
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;
    fn index(&self, idx: usize) -> &Value {
        self.get_index(idx).unwrap_or(&NULL_VALUE)
    }
}

// ---------------------------------------------------------------------------
// Traits.

/// Convert a type into the [`Value`] data model.
pub trait Serialize {
    /// The value-tree form of `self`.
    fn to_value(&self) -> Value;
}

/// Reconstruct a type from the [`Value`] data model.
pub trait Deserialize: Sized {
    /// Rebuild `Self` from a value tree.
    ///
    /// # Errors
    ///
    /// Returns an [`Error`] naming the expected shape when `v` mismatches.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

/// Module alias mirroring `serde::ser`.
pub mod ser {
    pub use crate::{Error, Serialize};
}

/// Module alias mirroring `serde::de`.
pub mod de {
    pub use crate::{Deserialize, Error};
}

fn expected(what: &str, got: &Value) -> Error {
    let kind = match got {
        Value::Null => "null",
        Value::Bool(_) => "bool",
        Value::UInt(_) | Value::Int(_) => "integer",
        Value::Float(_) => "float",
        Value::Str(_) => "string",
        Value::Array(_) => "array",
        Value::Object(_) => "object",
    };
    Error::msg(format!("expected {what}, got {kind}"))
}

// --- primitives ---

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_bool().ok_or_else(|| expected("bool", v))
    }
}

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::UInt(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let u = v.as_u64().ok_or_else(|| expected("unsigned integer", v))?;
                <$t>::try_from(u).map_err(|_| Error::msg("integer out of range"))
            }
        }
    )*};
}

impl_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let i = *self as i64;
                if i >= 0 { Value::UInt(i as u64) } else { Value::Int(i) }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let i = v.as_i64().ok_or_else(|| expected("integer", v))?;
                <$t>::try_from(i).map_err(|_| Error::msg("integer out of range"))
            }
        }
    )*};
}

impl_signed!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(f64::NAN), // non-finite floats render as null
            _ => v.as_f64().ok_or_else(|| expected("number", v)),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Float(f64::from(*self))
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        f64::from_value(v).map(|f| f as f32)
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_str()
            .map(str::to_string)
            .ok_or_else(|| expected("string", v))
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let s = v.as_str().ok_or_else(|| expected("char", v))?;
        let mut chars = s.chars();
        match (chars.next(), chars.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(Error::msg("expected single-character string")),
        }
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

impl Serialize for () {
    fn to_value(&self) -> Value {
        Value::Null
    }
}

impl Deserialize for () {
    fn from_value(_: &Value) -> Result<Self, Error> {
        Ok(())
    }
}

// --- references and smart pointers ---

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        T::from_value(v).map(Box::new)
    }
}

impl<T: Serialize + ?Sized> Serialize for std::sync::Arc<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for std::sync::Arc<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        T::from_value(v).map(std::sync::Arc::new)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(t) => t.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

// --- sequences ---

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        self.as_slice().to_value()
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_array()
            .ok_or_else(|| expected("array", v))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        self.as_slice().to_value()
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let items = v.as_array().ok_or_else(|| expected("array", v))?;
        if items.len() != N {
            return Err(Error::msg(format!(
                "expected array of {N}, got {}",
                items.len()
            )));
        }
        let vec: Vec<T> = items.iter().map(T::from_value).collect::<Result<_, _>>()?;
        vec.try_into()
            .map_err(|_| Error::msg("array length mismatch"))
    }
}

impl<T: Serialize> Serialize for BTreeSet<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + Ord> Deserialize for BTreeSet<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_array()
            .ok_or_else(|| expected("array", v))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for HashSet<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + Eq + std::hash::Hash> Deserialize for HashSet<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_array()
            .ok_or_else(|| expected("array", v))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

// --- tuples ---

macro_rules! impl_tuple {
    ($(($($n:tt $t:ident),+))+) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$n.to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let a = v.as_array().ok_or_else(|| expected("tuple array", v))?;
                let expect_len = [$( $n ),+].len();
                if a.len() != expect_len {
                    return Err(Error::msg(format!(
                        "expected tuple of {expect_len}, got {}", a.len()
                    )));
                }
                Ok(($($t::from_value(&a[$n])?,)+))
            }
        }
    )+};
}

impl_tuple! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
    (0 A, 1 B, 2 C, 3 D, 4 E)
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F)
}

// --- maps (non-string keys stringify, mirroring serde_json) ---

fn key_to_string(k: &Value) -> String {
    match k {
        Value::Str(s) => s.clone(),
        other => other.render_json(),
    }
}

fn key_from_string<K: Deserialize>(s: &str) -> Result<K, Error> {
    if let Ok(k) = K::from_value(&Value::Str(s.to_string())) {
        return Ok(k);
    }
    if let Ok(u) = s.parse::<u64>() {
        if let Ok(k) = K::from_value(&Value::UInt(u)) {
            return Ok(k);
        }
    }
    if let Ok(i) = s.parse::<i64>() {
        if let Ok(k) = K::from_value(&Value::Int(i)) {
            return Ok(k);
        }
    }
    if let Ok(f) = s.parse::<f64>() {
        if let Ok(k) = K::from_value(&Value::Float(f)) {
            return Ok(k);
        }
    }
    Err(Error::msg(format!("cannot reconstruct map key from '{s}'")))
}

impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (key_to_string(&k.to_value()), v.to_value()))
                .collect(),
        )
    }
}

impl<K: Deserialize + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_object()
            .ok_or_else(|| expected("object", v))?
            .iter()
            .map(|(k, val)| Ok((key_from_string::<K>(k)?, V::from_value(val)?)))
            .collect()
    }
}

impl<K: Serialize, V: Serialize> Serialize for HashMap<K, V> {
    fn to_value(&self) -> Value {
        // Deterministic output: sort members by key text.
        let mut members: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (key_to_string(&k.to_value()), v.to_value()))
            .collect();
        members.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Object(Map::from(members))
    }
}

impl<K: Deserialize + Eq + std::hash::Hash, V: Deserialize> Deserialize for HashMap<K, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_object()
            .ok_or_else(|| expected("object", v))?
            .iter()
            .map(|(k, val)| Ok((key_from_string::<K>(k)?, V::from_value(val)?)))
            .collect()
    }
}

// --- From conversions used by the `json!` macro ---

impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::Bool(b)
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::Str(s.to_string())
    }
}

impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::Str(s)
    }
}

impl From<f64> for Value {
    fn from(f: f64) -> Self {
        Value::Float(f)
    }
}

impl From<u64> for Value {
    fn from(u: u64) -> Self {
        Value::UInt(u)
    }
}

impl From<i64> for Value {
    fn from(i: i64) -> Self {
        if i >= 0 {
            Value::UInt(i as u64)
        } else {
            Value::Int(i)
        }
    }
}

impl From<usize> for Value {
    fn from(u: usize) -> Self {
        Value::UInt(u as u64)
    }
}
