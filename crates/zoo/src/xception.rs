//! Xception (Chollet, CVPR '17): depthwise-separable convolutions with
//! residual connections, in the published entry/middle/exit-flow layout.

use optimus_model::{Activation, GraphBuilder, ModelFamily, ModelGraph, OpId, PoolKind};

use crate::{IMAGE_INPUT, NUM_CLASSES};

fn sep_conv(b: &mut GraphBuilder, x: OpId, in_ch: usize, out_ch: usize) -> OpId {
    // Depthwise 3x3 then pointwise 1x1, each followed by BN.
    let mut x = b.conv2d_after(x, in_ch, in_ch, (3, 3), (1, 1), in_ch);
    x = b.conv2d_after(x, in_ch, out_ch, (1, 1), (1, 1), 1);
    b.batchnorm_after(x, out_ch)
}

fn entry_block(
    b: &mut GraphBuilder,
    x: OpId,
    in_ch: usize,
    out_ch: usize,
    relu_first: bool,
) -> OpId {
    let mut y = x;
    if relu_first {
        y = b.activation_after(y, Activation::Relu);
    }
    y = sep_conv(b, y, in_ch, out_ch);
    y = b.activation_after(y, Activation::Relu);
    y = sep_conv(b, y, out_ch, out_ch);
    y = b.pool_after(y, PoolKind::Max, (3, 3), (2, 2));
    // 1x1 strided shortcut.
    let mut s = b.conv2d_after(x, in_ch, out_ch, (1, 1), (2, 2), 1);
    s = b.batchnorm_after(s, out_ch);
    b.add_of(&[y, s])
}

/// Build Xception with a weight variant salt.
pub fn xception_variant(variant: u64) -> ModelGraph {
    let name = if variant == 0 {
        "xception".to_string()
    } else {
        format!("xception-v{variant}")
    };
    let mut b = GraphBuilder::new(name)
        .family(ModelFamily::Xception)
        .weight_variant(variant);
    let x = b.input(IMAGE_INPUT);
    // Entry flow stem.
    let mut x = b.conv2d_after(x, 3, 32, (3, 3), (2, 2), 1);
    x = b.batchnorm_after(x, 32);
    x = b.activation_after(x, Activation::Relu);
    x = b.conv2d_after(x, 32, 64, (3, 3), (1, 1), 1);
    x = b.batchnorm_after(x, 64);
    x = b.activation_after(x, Activation::Relu);
    // Entry-flow residual blocks: 128, 256, 728.
    x = entry_block(&mut b, x, 64, 128, false);
    x = entry_block(&mut b, x, 128, 256, true);
    x = entry_block(&mut b, x, 256, 728, true);
    // Middle flow: 8 blocks of three 728-channel separable convs.
    for _ in 0..8 {
        let shortcut = x;
        let mut y = x;
        for _ in 0..3 {
            y = b.activation_after(y, Activation::Relu);
            y = sep_conv(&mut b, y, 728, 728);
        }
        x = b.add_of(&[shortcut, y]);
    }
    // Exit flow.
    let shortcut = x;
    let mut y = b.activation_after(x, Activation::Relu);
    y = sep_conv(&mut b, y, 728, 728);
    y = b.activation_after(y, Activation::Relu);
    y = sep_conv(&mut b, y, 728, 1024);
    y = b.pool_after(y, PoolKind::Max, (3, 3), (2, 2));
    let mut s = b.conv2d_after(shortcut, 728, 1024, (1, 1), (2, 2), 1);
    s = b.batchnorm_after(s, 1024);
    x = b.add_of(&[y, s]);
    x = sep_conv(&mut b, x, 1024, 1536);
    x = b.activation_after(x, Activation::Relu);
    x = sep_conv(&mut b, x, 1536, 2048);
    x = b.activation_after(x, Activation::Relu);
    x = b.global_avg_pool_after(x);
    x = b.flatten_after(x);
    x = b.dense_after(x, 2048, NUM_CLASSES);
    let _ = b.activation_after(x, Activation::Softmax);
    b.finish().expect("xception builder produces valid graphs")
}

/// Xception at published configuration.
pub fn xception() -> ModelGraph {
    xception_variant(0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn params_match_published() {
        // Keras Xception: ~22.9M parameters.
        let p = xception().param_count() as f64 / 1e6;
        assert!((p - 22.9).abs() / 22.9 < 0.05, "params {p:.2}M");
    }

    #[test]
    fn validates_and_has_residuals() {
        let g = xception();
        assert!(g.validate().is_ok());
        let hist = optimus_model::OpHistogram::of(&g);
        // 3 entry + 8 middle + 1 exit residual adds.
        assert_eq!(hist.count(optimus_model::OpKind::Add), 12);
        assert_eq!(g.family(), ModelFamily::Xception);
    }
}
