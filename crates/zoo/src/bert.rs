//! BERT transformer encoders (Devlin et al., NAACL '19).
//!
//! The ten variants the paper's §8.1 workload uses: sizes Tiny / Mini /
//! Small / Medium / Base (the published compact-BERT grid), Cased and
//! Uncased vocabularies, and the five downstream-task heads — sequence
//! classification (SC), token classification (TC), question answering (QA),
//! next-sentence prediction (NSP) and multiple choice (MC).
//!
//! The graph follows §5.2's decomposition: an embedding block, then per
//! attention block the weighted Q/K/V/O projections, the weight-free Logit
//! and Attend operations, layer-norms, and two fully connected layers.

use optimus_model::{Activation, GraphBuilder, ModelFamily, ModelGraph, OpAttrs, OpId};

use serde::{Deserialize, Serialize};

/// Published compact-BERT sizes: (layers, hidden, heads).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BertSize {
    /// 2 layers, 128 hidden, 2 heads.
    Tiny,
    /// 4 layers, 256 hidden, 4 heads.
    Mini,
    /// 4 layers, 512 hidden, 8 heads.
    Small,
    /// 8 layers, 512 hidden, 8 heads.
    Medium,
    /// 12 layers, 768 hidden, 12 heads.
    Base,
}

impl BertSize {
    /// `(layers, hidden, heads)` of this size.
    pub fn dims(self) -> (usize, usize, usize) {
        match self {
            BertSize::Tiny => (2, 128, 2),
            BertSize::Mini => (4, 256, 4),
            BertSize::Small => (4, 512, 8),
            BertSize::Medium => (8, 512, 8),
            BertSize::Base => (12, 768, 12),
        }
    }

    /// Lower-case display name.
    pub fn name(self) -> &'static str {
        match self {
            BertSize::Tiny => "tiny",
            BertSize::Mini => "mini",
            BertSize::Small => "small",
            BertSize::Medium => "medium",
            BertSize::Base => "base",
        }
    }
}

/// Vocabulary choice (the paper's BERT-Cased / BERT-Uncased pair —
/// embedding blocks of different sizes, §5.2 Case 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BertVocab {
    /// WordPiece cased vocabulary (28,996 tokens).
    Cased,
    /// WordPiece uncased vocabulary (30,522 tokens).
    Uncased,
}

impl BertVocab {
    /// Token count.
    pub fn size(self) -> usize {
        match self {
            BertVocab::Cased => 28_996,
            BertVocab::Uncased => 30_522,
        }
    }
}

/// Downstream-task head (§5.2 Case 4 / Example 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BertTask {
    /// Bare encoder, no head.
    None,
    /// Sequence classification: one FC on top (paper, §5.2 Example 2).
    SequenceClassification,
    /// Token classification: per-token FC.
    TokenClassification,
    /// Question answering: two FCs on top (paper, §5.2 Example 2).
    QuestionAnswering,
    /// Next-sentence prediction: pooler + binary FC.
    NextSentencePrediction,
    /// Multiple choice: pooler + scalar FC.
    MultipleChoice,
}

impl BertTask {
    /// Suffix used in model names (e.g. `bert-base-uncased-sc`).
    pub fn suffix(self) -> &'static str {
        match self {
            BertTask::None => "",
            BertTask::SequenceClassification => "-sc",
            BertTask::TokenClassification => "-tc",
            BertTask::QuestionAnswering => "-qa",
            BertTask::NextSentencePrediction => "-nsp",
            BertTask::MultipleChoice => "-mc",
        }
    }
}

/// Full BERT configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct BertConfig {
    /// Model size.
    pub size: BertSize,
    /// Vocabulary.
    pub vocab: BertVocab,
    /// Downstream head.
    pub task: BertTask,
    /// Maximum sequence length (input uses this length).
    pub max_len: usize,
    /// Weight-variant salt (same structure, different weights).
    pub variant: u64,
}

impl BertConfig {
    /// Standard config: given size, uncased, no head, 128-token input.
    pub fn new(size: BertSize) -> Self {
        BertConfig {
            size,
            vocab: BertVocab::Uncased,
            task: BertTask::None,
            max_len: 128,
            variant: 0,
        }
    }

    /// Set the vocabulary.
    pub fn vocab(mut self, vocab: BertVocab) -> Self {
        self.vocab = vocab;
        self
    }

    /// Set the downstream task head.
    pub fn task(mut self, task: BertTask) -> Self {
        self.task = task;
        self
    }

    /// Set the weight variant salt.
    pub fn variant(mut self, variant: u64) -> Self {
        self.variant = variant;
        self
    }

    /// Canonical model name, e.g. `bert-mini-uncased-qa`.
    pub fn name(&self) -> String {
        let casing = match self.vocab {
            BertVocab::Cased => "cased",
            BertVocab::Uncased => "uncased",
        };
        let mut n = format!("bert-{}-{}{}", self.size.name(), casing, self.task.suffix());
        if self.variant != 0 {
            n.push_str(&format!("-v{}", self.variant));
        }
        n
    }
}

fn attention_block(b: &mut GraphBuilder, x: OpId, hidden: usize, heads: usize, i: usize) -> OpId {
    let q = b.after(x, format!("blk{i}.q"), OpAttrs::Query { hidden, heads });
    let k = b.after(x, format!("blk{i}.k"), OpAttrs::Key { hidden, heads });
    let v = b.after(x, format!("blk{i}.v"), OpAttrs::Value { hidden, heads });
    let l = b.merge(&[q, k], format!("blk{i}.logit"), OpAttrs::Logit { heads });
    let sm = b.after(l, format!("blk{i}.softmax"), OpAttrs::Softmax);
    let at = b.merge(
        &[sm, v],
        format!("blk{i}.attend"),
        OpAttrs::Attend { heads },
    );
    let o = b.after(at, format!("blk{i}.out"), OpAttrs::AttnOutput { hidden });
    let res1 = b.add_of(&[x, o]);
    let ln1 = b.layernorm_after(res1, hidden);
    // Feed-forward: two fully connected layers (hidden → 4·hidden → hidden).
    let ff1 = b.dense_after(ln1, hidden, 4 * hidden);
    let gelu = b.activation_after(ff1, Activation::Gelu);
    let ff2 = b.dense_after(gelu, 4 * hidden, hidden);
    let res2 = b.add_of(&[ln1, ff2]);
    b.layernorm_after(res2, hidden)
}

/// Build a BERT model from a configuration.
pub fn bert(config: BertConfig) -> ModelGraph {
    let (layers, hidden, heads) = config.size.dims();
    let mut b = GraphBuilder::new(config.name())
        .family(ModelFamily::Bert)
        .weight_variant(config.variant);
    let ids = b.input([1, config.max_len]);
    let emb = b.after(
        ids,
        "embedding",
        OpAttrs::Embedding {
            vocab: config.vocab.size(),
            hidden,
        },
    );
    let pos = b.after(
        emb,
        "pos_embedding",
        OpAttrs::PosEmbedding {
            max_len: config.max_len.max(512),
            hidden,
        },
    );
    let mut x = b.layernorm_after(pos, hidden);
    for i in 0..layers {
        x = attention_block(&mut b, x, hidden, heads, i);
    }
    // Downstream heads (§5.2 Case 4).
    match config.task {
        BertTask::None => {}
        BertTask::SequenceClassification => {
            // One fully connected layer on top (paper, §5.2 Example 2).
            let d = b.dense_after(x, hidden, 2);
            let _ = b.activation_after(d, Activation::Softmax);
        }
        BertTask::TokenClassification => {
            let d = b.dense_after(x, hidden, 9);
            let _ = b.activation_after(d, Activation::Softmax);
        }
        BertTask::QuestionAnswering => {
            // Two fully connected layers on top (paper, §5.2 Example 2).
            let d1 = b.dense_after(x, hidden, hidden);
            let t = b.activation_after(d1, Activation::Tanh);
            let _ = b.dense_after(t, hidden, 2);
        }
        BertTask::NextSentencePrediction => {
            let pool = b.dense_after(x, hidden, hidden);
            let t = b.activation_after(pool, Activation::Tanh);
            let d = b.dense_after(t, hidden, 2);
            let _ = b.activation_after(d, Activation::Softmax);
        }
        BertTask::MultipleChoice => {
            let pool = b.dense_after(x, hidden, hidden);
            let t = b.activation_after(pool, Activation::Tanh);
            let _ = b.dense_after(t, hidden, 1);
        }
    }
    b.finish().expect("bert builder produces valid graphs")
}

/// The paper's ten-variant BERT model zoo (§8.1).
pub fn bert_zoo() -> Vec<ModelGraph> {
    vec![
        bert(BertConfig::new(BertSize::Tiny)),
        bert(BertConfig::new(BertSize::Mini)),
        bert(BertConfig::new(BertSize::Small)),
        bert(BertConfig::new(BertSize::Base).vocab(BertVocab::Cased)),
        bert(BertConfig::new(BertSize::Base).vocab(BertVocab::Uncased)),
        bert(BertConfig::new(BertSize::Base).task(BertTask::SequenceClassification)),
        bert(BertConfig::new(BertSize::Base).task(BertTask::TokenClassification)),
        bert(BertConfig::new(BertSize::Base).task(BertTask::QuestionAnswering)),
        bert(BertConfig::new(BertSize::Base).task(BertTask::NextSentencePrediction)),
        bert(BertConfig::new(BertSize::Base).task(BertTask::MultipleChoice)),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn base_params_match_published() {
        // BERT-Base uncased: ~110M parameters.
        let p = bert(BertConfig::new(BertSize::Base)).param_count() as f64 / 1e6;
        assert!((p - 110.0).abs() / 110.0 < 0.02, "params {p:.1}M");
    }

    #[test]
    fn tiny_params_match_published() {
        // BERT-Tiny: ~4.4M parameters.
        let p = bert(BertConfig::new(BertSize::Tiny)).param_count() as f64 / 1e6;
        assert!((p - 4.4).abs() / 4.4 < 0.05, "params {p:.2}M");
    }

    #[test]
    fn zoo_has_ten_distinct_models() {
        let zoo = bert_zoo();
        assert_eq!(zoo.len(), 10);
        let names: std::collections::HashSet<_> =
            zoo.iter().map(|m| m.name().to_string()).collect();
        assert_eq!(names.len(), 10);
        for m in &zoo {
            assert!(m.validate().is_ok(), "{} invalid", m.name());
            assert_eq!(m.family(), ModelFamily::Bert);
            assert!(m.family().is_transformer());
        }
    }

    #[test]
    fn cased_and_uncased_differ_only_in_embedding() {
        let c = bert(BertConfig::new(BertSize::Base).vocab(BertVocab::Cased));
        let u = bert(BertConfig::new(BertSize::Base).vocab(BertVocab::Uncased));
        assert_eq!(c.op_count(), u.op_count());
        let diff = u.param_count() - c.param_count();
        assert_eq!(diff, (30_522 - 28_996) * 768);
    }

    #[test]
    fn qa_has_one_more_dense_than_sc() {
        // §5.2 Example 2: SC has one FC on top, QA has two.
        let sc = bert(BertConfig::new(BertSize::Base).task(BertTask::SequenceClassification));
        let qa = bert(BertConfig::new(BertSize::Base).task(BertTask::QuestionAnswering));
        let dense =
            |g: &ModelGraph| optimus_model::OpHistogram::of(g).count(optimus_model::OpKind::Dense);
        assert_eq!(dense(&qa), dense(&sc) + 1);
    }

    #[test]
    fn attention_ops_counted_per_block() {
        let (layers, _, _) = BertSize::Mini.dims();
        let g = bert(BertConfig::new(BertSize::Mini));
        let hist = optimus_model::OpHistogram::of(&g);
        assert_eq!(hist.count(optimus_model::OpKind::Query), layers);
        assert_eq!(hist.count(optimus_model::OpKind::Logit), layers);
        assert_eq!(hist.count(optimus_model::OpKind::Attend), layers);
        assert_eq!(hist.count(optimus_model::OpKind::LayerNorm), 2 * layers + 1);
    }

    #[test]
    fn names_are_canonical() {
        let cfg = BertConfig::new(BertSize::Mini)
            .vocab(BertVocab::Cased)
            .task(BertTask::QuestionAnswering);
        assert_eq!(cfg.name(), "bert-mini-cased-qa");
        assert_eq!(bert(cfg).name(), "bert-mini-cased-qa");
    }
}
