//! Wide residual networks (Zagoruyko & Komodakis, BMVC '16): CIFAR-style
//! pre-activation ResNets widened by a factor `k` — the canonical example
//! of "same structure design but wider layers" the paper's Insight 3 cites.

use optimus_model::{Activation, GraphBuilder, ModelFamily, ModelGraph, OpId};

/// Build WRN-`depth`-`k` (depth = 6n+4) with a weight-variant salt.
///
/// # Panics
///
/// Panics when `depth` is not of the form `6n + 4` or `k == 0`.
pub fn wide_resnet_variant(depth: usize, k: usize, variant: u64) -> ModelGraph {
    assert!(
        depth >= 10 && (depth - 4).is_multiple_of(6),
        "depth must be 6n+4"
    );
    assert!(k > 0, "widening factor must be positive");
    let n = (depth - 4) / 6;
    let name = if variant == 0 {
        format!("wrn{depth}-{k}")
    } else {
        format!("wrn{depth}-{k}-v{variant}")
    };
    let mut b = GraphBuilder::new(name)
        .family(ModelFamily::ResNet)
        .weight_variant(variant);
    let x = b.input([1, 3, 32, 32]);
    let mut x = b.conv2d_after(x, 3, 16, (3, 3), (1, 1), 1);
    let mut in_ch = 16usize;
    for (stage, base) in [16usize, 32, 64].into_iter().enumerate() {
        let out = base * k;
        for blk in 0..n {
            let stride = if stage > 0 && blk == 0 { 2 } else { 1 };
            x = wide_block(&mut b, x, in_ch, out, stride);
            in_ch = out;
        }
    }
    x = b.batchnorm_after(x, in_ch);
    x = b.activation_after(x, Activation::Relu);
    x = b.global_avg_pool_after(x);
    x = b.flatten_after(x);
    x = b.dense_after(x, in_ch, 10);
    let _ = b.activation_after(x, Activation::Softmax);
    b.finish().expect("wrn builder produces valid graphs")
}

/// Pre-activation basic block: BN-ReLU-conv3x3-BN-ReLU-conv3x3 + shortcut.
fn wide_block(b: &mut GraphBuilder, x: OpId, in_ch: usize, out: usize, stride: usize) -> OpId {
    let mut y = b.batchnorm_after(x, in_ch);
    y = b.activation_after(y, Activation::Relu);
    // Pre-activation shortcut branches off after the first BN-ReLU when
    // dimensions change.
    let shortcut_src = if stride != 1 || in_ch != out { y } else { x };
    y = b.conv2d_after(y, in_ch, out, (3, 3), (stride, stride), 1);
    y = b.batchnorm_after(y, out);
    y = b.activation_after(y, Activation::Relu);
    y = b.conv2d_after(y, out, out, (3, 3), (1, 1), 1);
    let shortcut = if stride != 1 || in_ch != out {
        b.conv2d_after(shortcut_src, in_ch, out, (1, 1), (stride, stride), 1)
    } else {
        shortcut_src
    };
    b.add_of(&[y, shortcut])
}

/// WRN-28-10, the flagship configuration.
pub fn wrn28_10() -> ModelGraph {
    wide_resnet_variant(28, 10, 0)
}

/// WRN-16-8.
pub fn wrn16_8() -> ModelGraph {
    wide_resnet_variant(16, 8, 0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn params_match_published() {
        // WRN-28-10: 36.5M parameters.
        let p = wrn28_10().param_count() as f64 / 1e6;
        assert!((p - 36.5).abs() / 36.5 < 0.03, "params {p:.1}M");
        // WRN-16-8: 11.0M parameters.
        let p = wrn16_8().param_count() as f64 / 1e6;
        assert!((p - 11.0).abs() / 11.0 < 0.05, "params {p:.1}M");
    }

    #[test]
    fn widening_preserves_structure() {
        // Insight 3: same structure, wider layers — identical op counts.
        // (k = 1 would drop the very first projection conv since
        // in == out there, so compare k = 2 against k = 10.)
        let narrow = wide_resnet_variant(28, 2, 0);
        let wide = wrn28_10();
        assert_eq!(narrow.op_count(), wide.op_count());
        assert!(wide.param_count() > 20 * narrow.param_count());
    }

    #[test]
    #[should_panic(expected = "6n+4")]
    fn bad_depth_panics() {
        let _ = wide_resnet_variant(27, 10, 0);
    }

    #[test]
    fn pool_free_until_head() {
        // CIFAR WRNs downsample by stride, not pooling.
        let hist = optimus_model::OpHistogram::of(&wrn28_10());
        assert_eq!(hist.count(optimus_model::OpKind::Pool2d), 0);
        assert_eq!(hist.count(optimus_model::OpKind::GlobalPool), 1);
    }
}
