//! SqueezeNet (Iandola et al. '16): Fire modules — a 1×1 "squeeze" layer
//! feeding parallel 1×1 and 3×3 "expand" layers whose outputs concatenate.

use optimus_model::{Activation, GraphBuilder, ModelFamily, ModelGraph, OpId, PoolKind};

use crate::{IMAGE_INPUT, NUM_CLASSES};

fn fire(b: &mut GraphBuilder, x: OpId, in_ch: usize, squeeze: usize, expand: usize) -> OpId {
    let s = b.conv2d_after(x, in_ch, squeeze, (1, 1), (1, 1), 1);
    let s = b.activation_after(s, Activation::Relu);
    let e1 = b.conv2d_after(s, squeeze, expand, (1, 1), (1, 1), 1);
    let e1 = b.activation_after(e1, Activation::Relu);
    let e3 = b.conv2d_after(s, squeeze, expand, (3, 3), (1, 1), 1);
    let e3 = b.activation_after(e3, Activation::Relu);
    b.concat_of(&[e1, e3])
}

/// SqueezeNet v1.1 with a weight-variant salt.
pub fn squeezenet_variant(variant: u64) -> ModelGraph {
    let name = if variant == 0 {
        "squeezenet1.1".to_string()
    } else {
        format!("squeezenet1.1-v{variant}")
    };
    let mut b = GraphBuilder::new(name)
        .family(ModelFamily::Custom)
        .weight_variant(variant);
    let x = b.input(IMAGE_INPUT);
    let mut x = b.conv2d_after(x, 3, 64, (3, 3), (2, 2), 1);
    x = b.activation_after(x, Activation::Relu);
    x = b.pool_after(x, PoolKind::Max, (3, 3), (2, 2));
    // Fire modules with v1.1's (squeeze, expand) schedule.
    x = fire(&mut b, x, 64, 16, 64);
    x = fire(&mut b, x, 128, 16, 64);
    x = b.pool_after(x, PoolKind::Max, (3, 3), (2, 2));
    x = fire(&mut b, x, 128, 32, 128);
    x = fire(&mut b, x, 256, 32, 128);
    x = b.pool_after(x, PoolKind::Max, (3, 3), (2, 2));
    x = fire(&mut b, x, 256, 48, 192);
    x = fire(&mut b, x, 384, 48, 192);
    x = fire(&mut b, x, 384, 64, 256);
    x = fire(&mut b, x, 512, 64, 256);
    // Classifier: 1x1 conv to classes then GAP (no dense layer).
    x = b.conv2d_after(x, 512, NUM_CLASSES, (1, 1), (1, 1), 1);
    x = b.activation_after(x, Activation::Relu);
    x = b.global_avg_pool_after(x);
    x = b.flatten_after(x);
    let _ = b.activation_after(x, Activation::Softmax);
    b.finish()
        .expect("squeezenet builder produces valid graphs")
}

/// SqueezeNet v1.1 at published configuration.
pub fn squeezenet() -> ModelGraph {
    squeezenet_variant(0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn params_match_published() {
        // SqueezeNet v1.1: ~1.24M parameters.
        let p = squeezenet().param_count() as f64 / 1e6;
        assert!((p - 1.24).abs() / 1.24 < 0.05, "params {p:.2}M");
    }

    #[test]
    fn eight_fire_modules() {
        let g = squeezenet();
        let hist = optimus_model::OpHistogram::of(&g);
        assert_eq!(hist.count(optimus_model::OpKind::Concat), 8);
        assert!(g.validate().is_ok());
    }

    #[test]
    fn no_dense_layers() {
        // SqueezeNet's defining property: fully convolutional classifier.
        let hist = optimus_model::OpHistogram::of(&squeezenet());
        assert_eq!(hist.count(optimus_model::OpKind::Dense), 0);
    }
}
