//! # optimus-zoo — the model populations of the paper's evaluation
//!
//! Programmatic builders for every architecture family the paper uses:
//!
//! - **Imgclsmob-style CNNs** (§8.1): VGG, ResNet, DenseNet, MobileNet,
//!   Xception and Inception, each a faithful construction of the published
//!   architecture (parameter counts are asserted against the published
//!   numbers in tests), plus a [`catalog()`] of several hundred width/depth
//!   variants standing in for the 389-model Imgclsmob zoo.
//! - **BERT** (§5.2, §8.1): Tiny/Mini/Small/Medium/Base sizes, Cased and
//!   Uncased vocabularies, and the five downstream-task heads the paper
//!   lists (SC, TC, QA, NSP, MC).
//! - **NAS-Bench-201** (§8.1): the real 15,625-architecture cell search
//!   space, deterministically buildable by index.
//!
//! All builders are deterministic: the same call always yields a
//! structurally identical graph with identical weight ids, which makes
//! every experiment in this repository reproducible.

pub mod bert;
pub mod catalog;
pub mod densenet;
pub mod efficientnet;
pub mod gpt;
pub mod inception;
pub mod mobilenet;
pub mod nasbench;
pub mod resnet;
pub mod resnext;
pub mod squeezenet;
pub mod textrnn;
pub mod vgg;
pub mod wideresnet;
pub mod xception;

pub use bert::{bert, BertConfig, BertSize, BertTask, BertVocab};
pub use catalog::{catalog, find, imgclsmob_catalog, ModelEntry};
pub use gpt::{gpt, gpt_zoo, GptConfig, GptSize, GPT_VOCAB};
pub use nasbench::{nasbench_model, CellOp, CellSpec, NASBENCH_SPACE_SIZE};

/// Default image-classification input: ImageNet-style 224×224 RGB.
pub const IMAGE_INPUT: [usize; 4] = [1, 3, 224, 224];

/// Default classifier width (ImageNet classes).
pub const NUM_CLASSES: usize = 1000;

#[cfg(test)]
mod tests {
    use super::*;

    /// Published parameter counts the paper's Figure 2c reports, within 1%.
    #[test]
    fn figure_2c_param_counts_match_paper() {
        let cases: [(&str, optimus_model::ModelGraph, f64); 6] = [
            ("VGG11", vgg::vgg11(), 132.9),
            ("VGG16", vgg::vgg16(), 138.4),
            ("VGG19", vgg::vgg19(), 143.7),
            ("ResNet50", resnet::resnet50(), 25.6),
            ("ResNet101", resnet::resnet101(), 44.7),
            ("ResNet152", resnet::resnet152(), 60.4),
        ];
        for (name, model, expected_m) in cases {
            let params_m = model.param_count() as f64 / 1e6;
            let rel = (params_m - expected_m).abs() / expected_m;
            assert!(
                rel < 0.01,
                "{name}: {params_m:.1}M params, paper says {expected_m}M (rel err {rel:.3})"
            );
        }
    }
}
