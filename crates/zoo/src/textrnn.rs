//! Text-classification RNNs: embedding → stacked LSTM/GRU → classifier.
//!
//! §7 notes the meta-operator interface "is compatible with ML operations
//! in most models, including CNN, RNN, and transformer"; this family
//! exercises the RNN leg — structurally similar recurrent classifiers at
//! several hidden widths and depths, transformation-friendly exactly like
//! the CNN families.

use optimus_model::{GraphBuilder, ModelFamily, ModelGraph, OpAttrs};

/// Recurrent cell flavour.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum RnnCell {
    /// Long short-term memory.
    Lstm,
    /// Gated recurrent unit.
    Gru,
}

impl RnnCell {
    fn name(self) -> &'static str {
        match self {
            RnnCell::Lstm => "lstm",
            RnnCell::Gru => "gru",
        }
    }
}

/// Build a text classifier: embedding, `layers` stacked recurrent layers
/// of width `hidden`, and a dense head over the final features.
///
/// # Panics
///
/// Panics when `layers == 0` or `hidden == 0`.
pub fn text_rnn(cell: RnnCell, layers: usize, hidden: usize, variant: u64) -> ModelGraph {
    assert!(layers > 0, "need at least one recurrent layer");
    assert!(hidden > 0, "hidden width must be positive");
    let name = if variant == 0 {
        format!("text{}-{layers}x{hidden}", cell.name())
    } else {
        format!("text{}-{layers}x{hidden}-v{variant}", cell.name())
    };
    let vocab = 30_000usize;
    let seq = 128usize;
    let mut b = GraphBuilder::new(name)
        .family(ModelFamily::Custom)
        .weight_variant(variant);
    let i = b.input([1, seq]);
    let mut x = b.after(i, "embedding", OpAttrs::Embedding { vocab, hidden });
    let mut input = hidden;
    for l in 0..layers {
        let attrs = match cell {
            RnnCell::Lstm => OpAttrs::Lstm { input, hidden },
            RnnCell::Gru => OpAttrs::Gru { input, hidden },
        };
        x = b.after(x, format!("{}_{l}", cell.name()), attrs);
        input = hidden;
    }
    let d = b.dense_after(x, hidden, 4);
    let _ = b.activation_after(d, optimus_model::Activation::Softmax);
    b.finish().expect("text rnn builder produces valid graphs")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builders_validate_and_scale() {
        for cell in [RnnCell::Lstm, RnnCell::Gru] {
            let small = text_rnn(cell, 1, 128, 0);
            let large = text_rnn(cell, 2, 256, 0);
            assert!(small.validate().is_ok());
            assert!(large.param_count() > small.param_count());
        }
    }

    #[test]
    fn lstm_params_match_formula() {
        // embedding 30000x256 + LSTM(256,256): 4h(in+h+1) + head 256*4+4.
        let g = text_rnn(RnnCell::Lstm, 1, 256, 0);
        let expected = 30_000 * 256 + 4 * 256 * (256 + 256 + 1) + 256 * 4 + 4;
        assert_eq!(g.param_count(), expected);
    }

    #[test]
    fn rnn_transformations_are_cheap_within_family() {
        use optimus_core::{GroupPlanner, Planner};
        use optimus_profile::{CostModel, CostProvider};
        let cost = CostModel::default();
        let a = text_rnn(RnnCell::Lstm, 1, 128, 0);
        let b = text_rnn(RnnCell::Lstm, 2, 256, 0);
        let plan = GroupPlanner.plan(&a, &b, &cost);
        assert!(plan.cost.n_reshape >= 1, "widening reshapes the LSTM");
        assert!(plan.cost.n_add >= 1, "deepening adds a layer");
        assert!(plan.cost.total() < cost.model_load_cost(&b));
        // Execute and run inference on the transformed graph.
        let mut g = a.clone();
        optimus_core::execute_plan(&mut g, &plan, &b).unwrap();
    }

    #[test]
    fn lstm_and_gru_do_not_substitute() {
        // Different op kinds: the planner must Reduce+Add, not Reshape.
        use optimus_core::{GroupPlanner, Planner};
        use optimus_profile::CostModel;
        let cost = CostModel::default();
        let a = text_rnn(RnnCell::Lstm, 1, 128, 0);
        let b = text_rnn(RnnCell::Gru, 1, 128, 0);
        let plan = GroupPlanner.plan(&a, &b, &cost);
        assert!(plan.cost.n_reduce >= 1 && plan.cost.n_add >= 1);
    }
}
