//! GPT-style causal decoder transformers (Radford et al., Brown et al.).
//!
//! The LLM workload family: tied-embedding decoders from 125M to 6.7B
//! parameters, following the published GPT-2/GPT-3 layer/width grid. Two
//! axes produce siblings that share most weights — the size ladder (wider
//! or deeper models reuse the narrower sibling's matching blocks the same
//! way the paper's §5.2 BERT cases do) and the **context-length axis**,
//! where `gpt-6.7b-c2048` and `gpt-6.7b-c4096` differ *only* in the
//! positional-embedding table: the ideal transformation pair for a
//! multi-GB model, since everything but one table is reusable.
//!
//! The graph mirrors `bert.rs`'s §5.2 decomposition (Q/K/V/O projections,
//! weight-free Logit/Attend, layer-norms, two FC layers per block) with a
//! GPT twist: embeddings are **tied** — exactly one `Embedding` table is
//! shared between input lookup and LM head, so the head itself is a
//! weight-free `Softmax` over the final layer-norm (this is why GPT-2's
//! 124M "small" has no second vocab-sized matrix).

use optimus_model::{
    Activation, GraphBuilder, KvCacheSpec, ModelFamily, ModelGraph, OpAttrs, OpId,
};

use serde::{Deserialize, Serialize};

/// BPE vocabulary size shared by the whole family (GPT-2's tokenizer).
pub const GPT_VOCAB: usize = 50_257;

/// Published GPT-2/GPT-3 sizes: (layers, hidden, heads).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum GptSize {
    /// 12 layers, 768 hidden, 12 heads (GPT-2 small, ~125M).
    G125M,
    /// 24 layers, 1024 hidden, 16 heads (GPT-2 medium, ~350M).
    G350M,
    /// 24 layers, 1536 hidden, 16 heads (GPT-2 large, ~760M).
    G760M,
    /// 24 layers, 2048 hidden, 32 heads (GPT-3 XL, ~1.3B).
    G1_3B,
    /// 32 layers, 2560 hidden, 32 heads (GPT-3 2.7B).
    G2_7B,
    /// 32 layers, 4096 hidden, 32 heads (GPT-3 6.7B).
    G6_7B,
}

impl GptSize {
    /// `(layers, hidden, heads)` of this size.
    pub fn dims(self) -> (usize, usize, usize) {
        match self {
            GptSize::G125M => (12, 768, 12),
            GptSize::G350M => (24, 1024, 16),
            GptSize::G760M => (24, 1536, 16),
            GptSize::G1_3B => (24, 2048, 32),
            GptSize::G2_7B => (32, 2560, 32),
            GptSize::G6_7B => (32, 4096, 32),
        }
    }

    /// Lower-case display name.
    pub fn name(self) -> &'static str {
        match self {
            GptSize::G125M => "125m",
            GptSize::G350M => "350m",
            GptSize::G760M => "760m",
            GptSize::G1_3B => "1.3b",
            GptSize::G2_7B => "2.7b",
            GptSize::G6_7B => "6.7b",
        }
    }

    /// The full size ladder, smallest first.
    pub fn all() -> [GptSize; 6] {
        [
            GptSize::G125M,
            GptSize::G350M,
            GptSize::G760M,
            GptSize::G1_3B,
            GptSize::G2_7B,
            GptSize::G6_7B,
        ]
    }
}

/// Full GPT configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct GptConfig {
    /// Model size (layer/width/head grid).
    pub size: GptSize,
    /// Context length: the positional-embedding table rows and the KV
    /// cache's maximum positions. The transformation axis: context
    /// siblings differ only in this one table.
    pub context: usize,
    /// Weight-variant salt (same structure, different weights).
    pub variant: u64,
}

impl GptConfig {
    /// Standard config: given size at a 1024-token context window.
    pub fn new(size: GptSize) -> Self {
        GptConfig {
            size,
            context: 1024,
            variant: 0,
        }
    }

    /// Set the context length.
    pub fn context(mut self, context: usize) -> Self {
        self.context = context;
        self
    }

    /// Set the weight variant salt.
    pub fn variant(mut self, variant: u64) -> Self {
        self.variant = variant;
        self
    }

    /// Canonical model name, e.g. `gpt-6.7b-c2048`.
    pub fn name(&self) -> String {
        let mut n = format!("gpt-{}-c{}", self.size.name(), self.context);
        if self.variant != 0 {
            n.push_str(&format!("-v{}", self.variant));
        }
        n
    }

    /// KV-cache shape this config's decoder maintains while serving.
    pub fn kv_spec(&self) -> KvCacheSpec {
        let (layers, hidden, heads) = self.size.dims();
        KvCacheSpec::new(layers, heads, hidden / heads, self.context)
    }
}

/// One pre-norm decoder block: causal self-attention plus the two-layer
/// feed-forward, with residual connections. Structurally this reuses the
/// §5.2 attention decomposition (so the planner matches GPT blocks
/// against each other exactly as it matches BERT blocks); causality is a
/// masking detail inside the weight-free `Logit`, not a graph change.
fn decoder_block(b: &mut GraphBuilder, x: OpId, hidden: usize, heads: usize, i: usize) -> OpId {
    let q = b.after(x, format!("blk{i}.q"), OpAttrs::Query { hidden, heads });
    let k = b.after(x, format!("blk{i}.k"), OpAttrs::Key { hidden, heads });
    let v = b.after(x, format!("blk{i}.v"), OpAttrs::Value { hidden, heads });
    let l = b.merge(&[q, k], format!("blk{i}.logit"), OpAttrs::Logit { heads });
    let sm = b.after(l, format!("blk{i}.softmax"), OpAttrs::Softmax);
    let at = b.merge(
        &[sm, v],
        format!("blk{i}.attend"),
        OpAttrs::Attend { heads },
    );
    let o = b.after(at, format!("blk{i}.out"), OpAttrs::AttnOutput { hidden });
    let res1 = b.add_of(&[x, o]);
    let ln1 = b.layernorm_after(res1, hidden);
    let ff1 = b.dense_after(ln1, hidden, 4 * hidden);
    let gelu = b.activation_after(ff1, Activation::Gelu);
    let ff2 = b.dense_after(gelu, 4 * hidden, hidden);
    let res2 = b.add_of(&[ln1, ff2]);
    b.layernorm_after(res2, hidden)
}

/// Build a GPT decoder from a configuration.
pub fn gpt(config: GptConfig) -> ModelGraph {
    let (layers, hidden, heads) = config.size.dims();
    // All configs of one size draw from the same weight seed group, so
    // context siblings hold byte-identical tensors everywhere their
    // shapes agree — the promise the transformation pairs rely on. The
    // variant salt still yields distinct-weight structural twins.
    let mut b = GraphBuilder::new(config.name())
        .family(ModelFamily::Gpt)
        .seed_group(format!("gpt-{}", config.size.name()))
        .weight_variant(config.variant);
    let ids = b.input([1, config.context]);
    // Tied token embedding: the single vocab-sized table in the graph.
    let emb = b.after(
        ids,
        "embedding",
        OpAttrs::Embedding {
            vocab: GPT_VOCAB,
            hidden,
        },
    );
    let pos = b.after(
        emb,
        "pos_embedding",
        OpAttrs::PosEmbedding {
            max_len: config.context,
            hidden,
        },
    );
    let mut x = pos;
    for i in 0..layers {
        x = decoder_block(&mut b, x, hidden, heads, i);
    }
    let lnf = b.layernorm_after(x, hidden);
    // LM head: logits come from the tied embedding table, so the head
    // carries no weights of its own — just the output distribution.
    let _ = b.after(lnf, "lm_head", OpAttrs::Softmax);
    b.finish().expect("gpt builder produces valid graphs")
}

/// The decoder zoo: the full size ladder at the default 1024-token
/// context, plus long-context siblings of the two largest sizes — the
/// pairs `exp_llm_transform` transforms between.
pub fn gpt_zoo() -> Vec<ModelGraph> {
    let mut zoo: Vec<ModelGraph> = GptSize::all()
        .into_iter()
        .map(|s| gpt(GptConfig::new(s)))
        .collect();
    for size in [GptSize::G2_7B, GptSize::G6_7B] {
        zoo.push(gpt(GptConfig::new(size).context(2048)));
        zoo.push(gpt(GptConfig::new(size).context(4096)));
    }
    zoo
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_params_match_published() {
        // GPT-2 small with tied embeddings: ~124M parameters.
        let p = gpt(GptConfig::new(GptSize::G125M)).param_count() as f64 / 1e6;
        assert!((p - 124.0).abs() / 124.0 < 0.05, "params {p:.1}M");
    }

    #[test]
    fn six_point_seven_b_params_match_published() {
        // GPT-3 6.7B: 12·L·h² dominates (6.44B) plus the tied embedding.
        let p = gpt(GptConfig::new(GptSize::G6_7B).context(2048)).param_count() as f64 / 1e9;
        assert!((p - 6.7).abs() / 6.7 < 0.05, "params {p:.2}B");
    }

    #[test]
    fn embeddings_are_tied() {
        let g = gpt(GptConfig::new(GptSize::G125M));
        let hist = optimus_model::OpHistogram::of(&g);
        // Exactly one vocab-sized table; the LM head is weight-free.
        assert_eq!(hist.count(optimus_model::OpKind::Embedding), 1);
        assert_eq!(hist.count(optimus_model::OpKind::PosEmbedding), 1);
    }

    #[test]
    fn kv_spec_derived_from_graph_matches_config() {
        for size in GptSize::all() {
            let cfg = GptConfig::new(size).context(2048);
            let spec = KvCacheSpec::of_model(&gpt(cfg)).expect("decoder has a KV cache");
            assert_eq!(spec, cfg.kv_spec(), "{}", cfg.name());
            let (layers, hidden, heads) = size.dims();
            assert_eq!(spec.layers, layers);
            assert_eq!(spec.heads, heads);
            assert_eq!(spec.hidden(), hidden);
            assert_eq!(spec.context, 2048);
        }
    }

    #[test]
    fn context_siblings_differ_only_in_pos_embedding() {
        let short = gpt(GptConfig::new(GptSize::G6_7B).context(2048));
        let long = gpt(GptConfig::new(GptSize::G6_7B).context(4096));
        assert_eq!(short.op_count(), long.op_count());
        let diff = long.param_count() - short.param_count();
        assert_eq!(diff, (4096 - 2048) * 4096);
        // Sharing is by *content*, not just by count: every op except the
        // positional table holds byte-identical weights in both siblings.
        for ((sid, sop), (lid, lop)) in short.ops().zip(long.ops()) {
            assert_eq!(sid, lid);
            if matches!(sop.attrs, OpAttrs::PosEmbedding { .. }) {
                assert_ne!(
                    sop.weights.as_ref().map(optimus_model::Weights::id),
                    lop.weights.as_ref().map(optimus_model::Weights::id),
                    "the positional table is the one real delta"
                );
            } else {
                assert_eq!(
                    sop.weights.as_ref().map(optimus_model::Weights::id),
                    lop.weights.as_ref().map(optimus_model::Weights::id),
                    "op {sid:?} must share content across the context axis"
                );
            }
        }
        // The shared fraction is what makes transformation worthwhile:
        // > 99.8% of the 7B sibling's parameters already exist in the
        // resident one.
        let shared = 1.0 - diff as f64 / long.param_count() as f64;
        assert!(shared > 0.998, "shared fraction {shared:.4}");
    }

    #[test]
    fn zoo_models_are_distinct_valid_gpt_decoders() {
        let zoo = gpt_zoo();
        assert_eq!(zoo.len(), 10);
        let names: std::collections::HashSet<_> =
            zoo.iter().map(|m| m.name().to_string()).collect();
        assert_eq!(names.len(), 10);
        for m in &zoo {
            assert!(m.validate().is_ok(), "{} invalid", m.name());
            assert_eq!(m.family(), ModelFamily::Gpt);
            assert!(m.family().is_transformer());
        }
    }

    #[test]
    fn names_are_canonical() {
        let cfg = GptConfig::new(GptSize::G2_7B).context(4096);
        assert_eq!(cfg.name(), "gpt-2.7b-c4096");
        assert_eq!(gpt(cfg).name(), "gpt-2.7b-c4096");
    }
}
