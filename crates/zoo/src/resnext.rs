//! ResNeXt (Xie et al., CVPR '17): ResNet bottlenecks with grouped 3×3
//! convolutions ("cardinality"), in the published 32×4d configurations.

use optimus_model::{Activation, GraphBuilder, ModelFamily, ModelGraph, OpId, PoolKind};

use crate::{IMAGE_INPUT, NUM_CLASSES};

fn config(depth: usize) -> [usize; 4] {
    match depth {
        50 => [3, 4, 6, 3],
        101 => [3, 4, 23, 3],
        _ => panic!("unsupported ResNeXt depth {depth} (50 or 101)"),
    }
}

#[allow(clippy::too_many_arguments)]
fn conv_bn_relu(
    b: &mut GraphBuilder,
    x: OpId,
    in_ch: usize,
    out_ch: usize,
    kernel: (usize, usize),
    stride: (usize, usize),
    groups: usize,
    relu: bool,
) -> OpId {
    let mut x = b.conv2d_after(x, in_ch, out_ch, kernel, stride, groups);
    x = b.batchnorm_after(x, out_ch);
    if relu {
        x = b.activation_after(x, Activation::Relu);
    }
    x
}

/// Build a ResNeXt-`depth` (32×4d) with a weight-variant salt.
///
/// # Panics
///
/// Panics on unsupported depths (50, 101).
pub fn resnext_variant(depth: usize, variant: u64) -> ModelGraph {
    let stages = config(depth);
    let cardinality = 32usize;
    let name = if variant == 0 {
        format!("resnext{depth}_32x4d")
    } else {
        format!("resnext{depth}_32x4d-v{variant}")
    };
    let mut b = GraphBuilder::new(name)
        .family(ModelFamily::ResNet)
        .weight_variant(variant);
    let x = b.input(IMAGE_INPUT);
    let mut x = conv_bn_relu(&mut b, x, 3, 64, (7, 7), (2, 2), 1, true);
    x = b.pool_after(x, PoolKind::Max, (3, 3), (2, 2));
    let mut in_ch = 64usize;
    // 32x4d: stage widths 128/256/512/1024 for the grouped 3x3, out 4x base.
    let widths = [128usize, 256, 512, 1024];
    for (stage, &blocks) in stages.iter().enumerate() {
        let mid = widths[stage];
        let out = mid * 2;
        for blk in 0..blocks {
            let stride = if stage > 0 && blk == 0 { 2 } else { 1 };
            let main = conv_bn_relu(&mut b, x, in_ch, mid, (1, 1), (1, 1), 1, true);
            let main = conv_bn_relu(
                &mut b,
                main,
                mid,
                mid,
                (3, 3),
                (stride, stride),
                cardinality,
                true,
            );
            let main = conv_bn_relu(&mut b, main, mid, out, (1, 1), (1, 1), 1, false);
            let shortcut = if stride != 1 || in_ch != out {
                conv_bn_relu(&mut b, x, in_ch, out, (1, 1), (stride, stride), 1, false)
            } else {
                x
            };
            let sum = b.add_of(&[main, shortcut]);
            x = b.activation_after(sum, Activation::Relu);
            in_ch = out;
        }
    }
    x = b.global_avg_pool_after(x);
    x = b.flatten_after(x);
    x = b.dense_after(x, in_ch, NUM_CLASSES);
    let _ = b.activation_after(x, Activation::Softmax);
    b.finish().expect("resnext builder produces valid graphs")
}

/// ResNeXt-50 32×4d.
pub fn resnext50() -> ModelGraph {
    resnext_variant(50, 0)
}

/// ResNeXt-101 32×4d.
pub fn resnext101() -> ModelGraph {
    resnext_variant(101, 0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn params_match_published() {
        // torchvision ResNeXt-50 32x4d: 25.0M parameters.
        let p = resnext50().param_count() as f64 / 1e6;
        assert!((p - 25.0).abs() / 25.0 < 0.03, "params {p:.2}M");
    }

    #[test]
    fn grouped_convs_present() {
        let g = resnext50();
        let grouped = g
            .ops()
            .filter(|(_, op)| matches!(op.attrs, optimus_model::OpAttrs::Conv2d { groups: 32, .. }))
            .count();
        assert_eq!(grouped, 16, "one grouped conv per bottleneck");
        assert!(g.validate().is_ok());
    }

    #[test]
    fn resnext_transforms_cheaply_from_resnet() {
        // Same family tag + similar structure: transformation-friendly.
        assert_eq!(resnext50().family(), ModelFamily::ResNet);
        assert!(resnext101().param_count() > resnext50().param_count());
    }
}
