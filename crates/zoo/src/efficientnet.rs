//! EfficientNet-Lite (Tan & Le '19, Lite variants '20): MBConv inverted
//! bottlenecks without squeeze-excitation, ReLU6 activations — the
//! published EfficientNet-Lite0 configuration plus compound-scaled
//! variants.

use optimus_model::{Activation, GraphBuilder, ModelFamily, ModelGraph, OpId};

use crate::{IMAGE_INPUT, NUM_CLASSES};

fn round_ch(c: f64) -> usize {
    let c = (c / 8.0).round() as usize * 8;
    c.max(8)
}

#[allow(clippy::too_many_arguments)]
fn conv_bn_act(
    b: &mut GraphBuilder,
    x: OpId,
    in_ch: usize,
    out_ch: usize,
    kernel: (usize, usize),
    stride: (usize, usize),
    groups: usize,
    act: bool,
) -> OpId {
    let mut x = b.conv2d_after(x, in_ch, out_ch, kernel, stride, groups);
    x = b.batchnorm_after(x, out_ch);
    if act {
        x = b.activation_after(x, Activation::Relu6);
    }
    x
}

/// Build EfficientNet-Lite with width multiplier `width` and depth
/// multiplier `depth_mult` (Lite0 = 1.0/1.0, Lite1 = 1.0/1.1,
/// Lite2 = 1.1/1.2, …).
pub fn efficientnet_lite(width: f64, depth_mult: f64, variant: u64) -> ModelGraph {
    let name = if (width - 1.0).abs() < f64::EPSILON
        && (depth_mult - 1.0).abs() < f64::EPSILON
        && variant == 0
    {
        "efficientnet-lite0".to_string()
    } else {
        format!("efficientnet-lite-w{width:.2}-d{depth_mult:.2}-v{variant}")
    };
    let mut b = GraphBuilder::new(name)
        .family(ModelFamily::MobileNet)
        .weight_variant(variant);
    let ch = |c: usize| round_ch(c as f64 * width);
    let reps = |r: usize| ((r as f64 * depth_mult).ceil() as usize).max(1);
    let x = b.input(IMAGE_INPUT);
    let mut x = conv_bn_act(&mut b, x, 3, 32, (3, 3), (2, 2), 1, true);
    let mut in_ch = 32usize; // Lite keeps the stem/head unscaled.
                             // (expansion, channels, repeats, stride, kernel) per stage — B0 table.
    let stages: [(usize, usize, usize, usize, usize); 7] = [
        (1, 16, 1, 1, 3),
        (6, 24, 2, 2, 3),
        (6, 40, 2, 2, 5),
        (6, 80, 3, 2, 3),
        (6, 112, 3, 1, 5),
        (6, 192, 4, 2, 5),
        (6, 320, 1, 1, 3),
    ];
    for (si, &(t, c, r, s, k)) in stages.iter().enumerate() {
        let out = ch(c);
        // Lite rule: first and last stage keep repeats unscaled.
        let n = if si == 0 || si == stages.len() - 1 {
            r
        } else {
            reps(r)
        };
        for rep in 0..n {
            let stride = if rep == 0 { s } else { 1 };
            let hidden = in_ch * t;
            let shortcut = x;
            let mut y = x;
            if t != 1 {
                y = conv_bn_act(&mut b, y, in_ch, hidden, (1, 1), (1, 1), 1, true);
            }
            y = conv_bn_act(
                &mut b,
                y,
                hidden,
                hidden,
                (k, k),
                (stride, stride),
                hidden,
                true,
            );
            y = conv_bn_act(&mut b, y, hidden, out, (1, 1), (1, 1), 1, false);
            x = if stride == 1 && in_ch == out {
                b.add_of(&[shortcut, y])
            } else {
                y
            };
            in_ch = out;
        }
    }
    x = conv_bn_act(&mut b, x, in_ch, 1280, (1, 1), (1, 1), 1, true);
    x = b.global_avg_pool_after(x);
    x = b.flatten_after(x);
    x = b.dense_after(x, 1280, NUM_CLASSES);
    let _ = b.activation_after(x, Activation::Softmax);
    b.finish()
        .expect("efficientnet builder produces valid graphs")
}

/// EfficientNet-Lite0.
pub fn efficientnet_lite0() -> ModelGraph {
    efficientnet_lite(1.0, 1.0, 0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn params_match_published() {
        // EfficientNet-Lite0: ~4.65M parameters.
        let p = efficientnet_lite0().param_count() as f64 / 1e6;
        assert!((p - 4.65).abs() / 4.65 < 0.06, "params {p:.2}M");
    }

    #[test]
    fn compound_scaling_grows_model() {
        let lite0 = efficientnet_lite0();
        let lite2 = efficientnet_lite(1.1, 1.2, 0);
        assert!(lite2.param_count() > lite0.param_count());
        assert!(lite2.op_count() > lite0.op_count());
        assert!(lite2.validate().is_ok());
    }

    #[test]
    fn mixed_kernel_sizes_present() {
        // EfficientNet uses both 3x3 and 5x5 depthwise kernels.
        let g = efficientnet_lite0();
        let has = |k: usize| {
            g.ops().any(|(_, op)| {
                matches!(op.attrs, optimus_model::OpAttrs::Conv2d { kernel, groups, .. }
                    if kernel == (k, k) && groups > 1)
            })
        };
        assert!(has(3) && has(5));
    }
}
