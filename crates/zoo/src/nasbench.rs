//! NAS-Bench-201 search space (Dong & Yang, ICLR '20).
//!
//! The real 15,625-architecture space the paper samples from (§8.1): each
//! cell is a DAG over 4 nodes whose 6 edges each carry one of 5 candidate
//! operations; the macro skeleton is a 3-stage CIFAR-style network with
//! 5 cells per stage and residual reduction blocks between stages.
//!
//! Architectures are deterministic functions of an index in
//! `0..`[`NASBENCH_SPACE_SIZE`], so experiments can sample the space
//! reproducibly.

use optimus_model::{Activation, GraphBuilder, ModelFamily, ModelGraph, OpId, PoolKind};

/// Number of architectures in the space: 5 ops on 6 edges = 5⁶.
pub const NASBENCH_SPACE_SIZE: u64 = 15_625;

/// Candidate operation on a cell edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum CellOp {
    /// Zeroize: the edge contributes nothing.
    None,
    /// Identity skip connection.
    Skip,
    /// ReLU → 1×1 conv → BN.
    Conv1x1,
    /// ReLU → 3×3 conv → BN.
    Conv3x3,
    /// 3×3 average pooling, stride 1.
    AvgPool3x3,
}

impl CellOp {
    /// Decode from a base-5 digit.
    fn from_digit(d: u64) -> CellOp {
        match d {
            0 => CellOp::None,
            1 => CellOp::Skip,
            2 => CellOp::Conv1x1,
            3 => CellOp::Conv3x3,
            _ => CellOp::AvgPool3x3,
        }
    }
}

/// A cell topology: the operation on each of the 6 edges
/// `(0→1, 0→2, 1→2, 0→3, 1→3, 2→3)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub struct CellSpec {
    /// Edge operations in canonical order.
    pub edges: [CellOp; 6],
}

impl CellSpec {
    /// Decode an architecture index into a cell spec.
    ///
    /// # Panics
    ///
    /// Panics when `index >= NASBENCH_SPACE_SIZE`.
    pub fn from_index(index: u64) -> CellSpec {
        assert!(
            index < NASBENCH_SPACE_SIZE,
            "index {index} out of the {NASBENCH_SPACE_SIZE}-architecture space"
        );
        let mut edges = [CellOp::None; 6];
        let mut rem = index;
        for e in edges.iter_mut() {
            *e = CellOp::from_digit(rem % 5);
            rem /= 5;
        }
        CellSpec { edges }
    }

    /// Canonical edge list: `(src, dst, op)` for the 6 edges.
    pub fn edge_list(&self) -> [(usize, usize, CellOp); 6] {
        [
            (0, 1, self.edges[0]),
            (0, 2, self.edges[1]),
            (1, 2, self.edges[2]),
            (0, 3, self.edges[3]),
            (1, 3, self.edges[4]),
            (2, 3, self.edges[5]),
        ]
    }
}

/// Append one edge operation transforming `src` (with `ch` channels) and
/// return the id feeding the destination node's accumulator, or `None` for
/// zeroize edges.
fn edge_op(b: &mut GraphBuilder, src: OpId, ch: usize, op: CellOp) -> Option<OpId> {
    match op {
        CellOp::None => None,
        CellOp::Skip => Some(src),
        CellOp::Conv1x1 | CellOp::Conv3x3 => {
            let k = if op == CellOp::Conv1x1 { 1 } else { 3 };
            let x = b.activation_after(src, Activation::Relu);
            let x = b.conv2d_after(x, ch, ch, (k, k), (1, 1), 1);
            Some(b.batchnorm_after(x, ch))
        }
        CellOp::AvgPool3x3 => {
            let x = b.after(
                src,
                format!("cellpool_{}", src.0),
                optimus_model::OpAttrs::Pool2d {
                    kind: PoolKind::Avg,
                    size: (3, 3),
                    stride: (1, 1),
                    padding: optimus_model::Padding::Same,
                },
            );
            Some(x)
        }
    }
}

/// Instantiate one cell after `input`; returns the cell's output op.
///
/// Cell nodes that cannot reach the output through non-zeroize edges are
/// pruned (their operations would be dead code in the computational graph);
/// a cell whose output node is unreachable degenerates to the identity.
fn cell(b: &mut GraphBuilder, input: OpId, ch: usize, spec: &CellSpec) -> OpId {
    let edge_list = spec.edge_list();
    // Backward liveness: a node is live when a non-zeroize edge leads from
    // it to a live node (node 3 is live by definition).
    let mut live = [false, false, false, true];
    for _ in 0..3 {
        for &(src, dst, op) in &edge_list {
            if op != CellOp::None && live[dst] {
                live[src] = true;
            }
        }
    }
    let mut nodes: [Option<OpId>; 4] = [Some(input), None, None, None];
    for node in 1..4 {
        if !live[node] {
            continue;
        }
        let mut feeds = Vec::new();
        for &(src, dst, op) in &edge_list {
            if dst != node || op == CellOp::None {
                continue;
            }
            if let Some(src_id) = nodes[src] {
                if let Some(feed) = edge_op(b, src_id, ch, op) {
                    feeds.push(feed);
                }
            }
        }
        // Two skip edges can deliver the same producer twice (e.g. via a
        // dead intermediate node); the sum of x+x is structurally just one
        // feed for our purposes, and duplicate edges are illegal in the IR.
        feeds.sort_unstable();
        feeds.dedup();
        nodes[node] = match feeds.len() {
            0 => None,
            1 => Some(feeds[0]),
            _ => Some(b.add_of(&feeds)),
        };
    }
    nodes[3].unwrap_or(input)
}

/// Residual reduction block between stages (stride-2 basic block, doubling
/// channels), as in the NAS-Bench-201 macro skeleton.
fn reduction(b: &mut GraphBuilder, x: OpId, in_ch: usize) -> (OpId, usize) {
    let out = in_ch * 2;
    let mut y = b.activation_after(x, Activation::Relu);
    y = b.conv2d_after(y, in_ch, out, (3, 3), (2, 2), 1);
    y = b.batchnorm_after(y, out);
    y = b.activation_after(y, Activation::Relu);
    y = b.conv2d_after(y, out, out, (3, 3), (1, 1), 1);
    y = b.batchnorm_after(y, out);
    let mut s = b.pool_after(x, PoolKind::Avg, (2, 2), (2, 2));
    s = b.conv2d_after(s, in_ch, out, (1, 1), (1, 1), 1);
    (b.add_of(&[y, s]), out)
}

/// Build the NAS-Bench-201 architecture at `index` with `cells_per_stage`
/// cells (the benchmark uses 5) and a weight-variant salt.
///
/// # Panics
///
/// Panics when `index >= NASBENCH_SPACE_SIZE`.
pub fn nasbench_model_sized(index: u64, cells_per_stage: usize, variant: u64) -> ModelGraph {
    let spec = CellSpec::from_index(index);
    let name = if variant == 0 {
        format!("nasbench-{index:05}")
    } else {
        format!("nasbench-{index:05}-v{variant}")
    };
    let mut b = GraphBuilder::new(name)
        .family(ModelFamily::NasBench)
        .weight_variant(variant);
    // CIFAR-style 32x32 input, 16-channel stem.
    let x = b.input([1, 3, 32, 32]);
    let mut x = b.conv2d_after(x, 3, 16, (3, 3), (1, 1), 1);
    x = b.batchnorm_after(x, 16);
    let mut ch = 16usize;
    for stage in 0..3 {
        for _ in 0..cells_per_stage {
            x = cell(&mut b, x, ch, &spec);
        }
        if stage < 2 {
            let (nx, nch) = reduction(&mut b, x, ch);
            x = nx;
            ch = nch;
        }
    }
    x = b.batchnorm_after(x, ch);
    x = b.activation_after(x, Activation::Relu);
    x = b.global_avg_pool_after(x);
    x = b.flatten_after(x);
    x = b.dense_after(x, ch, 10);
    let _ = b.activation_after(x, Activation::Softmax);
    b.finish().expect("nasbench builder produces valid graphs")
}

/// Build the NAS-Bench-201 architecture at `index` with the benchmark's
/// standard 5 cells per stage.
///
/// # Panics
///
/// Panics when `index >= NASBENCH_SPACE_SIZE`.
pub fn nasbench_model(index: u64) -> ModelGraph {
    nasbench_model_sized(index, 5, 0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_roundtrip_base5() {
        let spec = CellSpec::from_index(0);
        assert!(spec.edges.iter().all(|e| *e == CellOp::None));
        let spec = CellSpec::from_index(NASBENCH_SPACE_SIZE - 1);
        assert!(spec.edges.iter().all(|e| *e == CellOp::AvgPool3x3));
        let spec = CellSpec::from_index(3); // digit0 = 3
        assert_eq!(spec.edges[0], CellOp::Conv3x3);
        assert_eq!(spec.edges[1], CellOp::None);
    }

    #[test]
    #[should_panic(expected = "out of the")]
    fn out_of_space_panics() {
        let _ = CellSpec::from_index(NASBENCH_SPACE_SIZE);
    }

    #[test]
    fn sampled_architectures_validate() {
        for idx in [0, 1, 777, 5_000, 15_624] {
            let g = nasbench_model(idx);
            assert!(g.validate().is_ok(), "arch {idx} invalid");
            assert_eq!(g.family(), ModelFamily::NasBench);
        }
    }

    #[test]
    fn all_none_cell_degenerates_to_skeleton() {
        // Arch 0 has all-none cells: just stem + reductions + head.
        let g = nasbench_model(0);
        let all_conv = nasbench_model(NASBENCH_SPACE_SIZE / 2);
        assert!(g.op_count() < all_conv.op_count());
    }

    #[test]
    fn deterministic_by_index() {
        let a = nasbench_model(4242);
        let b = nasbench_model(4242);
        assert!(a.structurally_equal(&b));
        let c = nasbench_model(4243);
        assert!(!a.structurally_equal(&c));
    }

    #[test]
    fn models_are_lightweight() {
        // NAS-Bench-201 models are small (≤ ~1.5M params at C=16,N=5).
        let g = nasbench_model(12_345);
        assert!(g.param_count() < 2_000_000, "params {}", g.param_count());
    }

    #[test]
    fn tiny_variant_runs_forward() {
        // A 1-cell-per-stage variant is small enough for the naive engine.
        let g = nasbench_model_sized(7, 1, 0);
        let y = optimus_model::infer::run(&g, optimus_model::tensor::Tensor::zeros([1, 3, 32, 32]))
            .unwrap();
        assert_eq!(y.shape().dims(), &[1, 10]);
        assert!(y.data().iter().all(|v| v.is_finite()));
    }
}
