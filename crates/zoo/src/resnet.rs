//! Residual networks (He et al., CVPR '16).
//!
//! Basic-block ResNet-18/34 and bottleneck ResNet-50/101/152 in their
//! published configurations; parameter counts match the originals
//! (25.6 M / 44.7 M / 60.4 M for the bottleneck trio of the paper's
//! Figure 2c). Additional shallow depths (10, 14, 26) mirror the reduced
//! variants Imgclsmob ships.

use optimus_model::{Activation, GraphBuilder, ModelFamily, ModelGraph, OpId, PoolKind};

use crate::{IMAGE_INPUT, NUM_CLASSES};

/// Stage block counts plus block type for each supported depth.
fn config(depth: usize) -> ([usize; 4], bool) {
    // (blocks per stage, bottleneck?)
    match depth {
        10 => ([1, 1, 1, 1], false),
        14 => ([1, 1, 2, 2], false),
        18 => ([2, 2, 2, 2], false),
        26 => ([2, 3, 4, 3], false),
        34 => ([3, 4, 6, 3], false),
        50 => ([3, 4, 6, 3], true),
        101 => ([3, 4, 23, 3], true),
        152 => ([3, 8, 36, 3], true),
        _ => panic!("unsupported ResNet depth {depth}"),
    }
}

struct ResNetBuilder {
    b: GraphBuilder,
    width: f64,
}

impl ResNetBuilder {
    fn ch(&self, c: usize) -> usize {
        ((c as f64 * self.width).round() as usize).max(1)
    }

    fn conv_bn_relu(
        &mut self,
        x: OpId,
        in_ch: usize,
        out_ch: usize,
        kernel: (usize, usize),
        stride: (usize, usize),
        relu: bool,
    ) -> OpId {
        let mut x = self.b.conv2d_after(x, in_ch, out_ch, kernel, stride, 1);
        x = self.b.batchnorm_after(x, out_ch);
        if relu {
            x = self.b.activation_after(x, Activation::Relu);
        }
        x
    }

    fn basic_block(&mut self, x: OpId, in_ch: usize, out_ch: usize, stride: usize) -> OpId {
        let main = self.conv_bn_relu(x, in_ch, out_ch, (3, 3), (stride, stride), true);
        let main = self.conv_bn_relu(main, out_ch, out_ch, (3, 3), (1, 1), false);
        let shortcut = if stride != 1 || in_ch != out_ch {
            self.conv_bn_relu(x, in_ch, out_ch, (1, 1), (stride, stride), false)
        } else {
            x
        };
        let sum = self.b.add_of(&[main, shortcut]);
        self.b.activation_after(sum, Activation::Relu)
    }

    fn bottleneck_block(&mut self, x: OpId, in_ch: usize, mid_ch: usize, stride: usize) -> OpId {
        let out_ch = mid_ch * 4;
        let main = self.conv_bn_relu(x, in_ch, mid_ch, (1, 1), (1, 1), true);
        let main = self.conv_bn_relu(main, mid_ch, mid_ch, (3, 3), (stride, stride), true);
        let main = self.conv_bn_relu(main, mid_ch, out_ch, (1, 1), (1, 1), false);
        let shortcut = if stride != 1 || in_ch != out_ch {
            self.conv_bn_relu(x, in_ch, out_ch, (1, 1), (stride, stride), false)
        } else {
            x
        };
        let sum = self.b.add_of(&[main, shortcut]);
        self.b.activation_after(sum, Activation::Relu)
    }
}

/// Build a ResNet of the given depth with width multiplier and weight
/// variant.
///
/// # Panics
///
/// Panics on unsupported depths (10, 14, 18, 26, 34, 50, 101, 152).
pub fn resnet_scaled(depth: usize, width: f64, variant: u64) -> ModelGraph {
    let (stages, bottleneck) = config(depth);
    let name = if (width - 1.0).abs() < f64::EPSILON && variant == 0 {
        format!("resnet{depth}")
    } else {
        format!("resnet{depth}-w{width:.2}-v{variant}")
    };
    let builder = GraphBuilder::new(name)
        .family(ModelFamily::ResNet)
        .weight_variant(variant);
    let mut rb = ResNetBuilder { b: builder, width };
    let x = rb.b.input(IMAGE_INPUT);
    let stem_ch = rb.ch(64);
    let mut x = rb.conv_bn_relu(x, 3, stem_ch, (7, 7), (2, 2), true);
    x = rb.b.pool_after(x, PoolKind::Max, (3, 3), (2, 2));
    let mut in_ch = stem_ch;
    let stage_widths = [64usize, 128, 256, 512];
    for (stage, &blocks) in stages.iter().enumerate() {
        let base = rb.ch(stage_widths[stage]);
        for blk in 0..blocks {
            let stride = if stage > 0 && blk == 0 { 2 } else { 1 };
            if bottleneck {
                x = rb.bottleneck_block(x, in_ch, base, stride);
                in_ch = base * 4;
            } else {
                x = rb.basic_block(x, in_ch, base, stride);
                in_ch = base;
            }
        }
    }
    x = rb.b.global_avg_pool_after(x);
    x = rb.b.flatten_after(x);
    x = rb.b.dense_after(x, in_ch, NUM_CLASSES);
    let _ = rb.b.activation_after(x, Activation::Softmax);
    rb.b.finish().expect("resnet builder produces valid graphs")
}

/// ResNet of the given depth at published width.
pub fn resnet(depth: usize) -> ModelGraph {
    resnet_scaled(depth, 1.0, 0)
}

/// ResNet-18 (basic blocks).
pub fn resnet18() -> ModelGraph {
    resnet(18)
}

/// ResNet-34 (basic blocks).
pub fn resnet34() -> ModelGraph {
    resnet(34)
}

/// ResNet-50 (bottleneck blocks).
pub fn resnet50() -> ModelGraph {
    resnet(50)
}

/// ResNet-101 (bottleneck blocks).
pub fn resnet101() -> ModelGraph {
    resnet(101)
}

/// ResNet-152 (bottleneck blocks).
pub fn resnet152() -> ModelGraph {
    resnet(152)
}

#[cfg(test)]
mod tests {
    use super::*;
    use optimus_model::OpKind;

    #[test]
    fn resnet50_has_53_convs() {
        // 1 stem + 3 stages×(3+4+6+3 blocks)×3 convs + 4 downsample convs.
        let g = resnet50();
        let hist = optimus_model::OpHistogram::of(&g);
        assert_eq!(hist.count(OpKind::Conv2d), 1 + 16 * 3 + 4);
        assert_eq!(hist.count(OpKind::Dense), 1);
    }

    #[test]
    fn resnet101_has_roughly_twice_resnet50_layers() {
        // The paper cites this ratio as the reason ResNet101 loads ~2× slower.
        let r50 = resnet50().op_count() as f64;
        let r101 = resnet101().op_count() as f64;
        assert!(r101 / r50 > 1.7 && r101 / r50 < 2.3, "ratio {}", r101 / r50);
    }

    #[test]
    fn paper_weighted_op_observation_roughly_holds() {
        // §4.4: "347 operations in ResNet101, of which only 101 have weights"
        // (TensorFlow counts BN as one op; our IR models BN as one op too).
        let g = resnet101();
        assert!(g.op_count() > 300, "op count {}", g.op_count());
        let frac = g.weighted_op_count() as f64 / g.op_count() as f64;
        assert!(frac < 0.65, "weighted fraction {frac}");
    }

    #[test]
    fn all_depths_validate() {
        for d in [10, 14, 18, 26, 34, 50, 101, 152] {
            assert!(resnet(d).validate().is_ok(), "resnet{d} invalid");
        }
    }

    #[test]
    fn deeper_means_more_ops_and_params() {
        let mut prev_ops = 0;
        for d in [18, 34, 50, 101, 152] {
            let g = resnet(d);
            assert!(g.op_count() > prev_ops, "resnet{d} not deeper");
            prev_ops = g.op_count();
        }
    }

    #[test]
    fn resnet_family_has_far_fewer_params_than_vgg() {
        // Figure 2c: ResNet50 25.6M vs VGG16 138.4M.
        assert!(resnet50().param_count() * 4 < crate::vgg::vgg16().param_count());
    }
}
