//! MobileNet efficient CNNs (Howard et al. '17; Sandler et al., CVPR '18).
//!
//! MobileNetV1 (depthwise-separable stacks) and MobileNetV2 (inverted
//! residual bottlenecks) with the published layer configurations and a
//! width multiplier α, matching the α ∈ {0.25, 0.5, 0.75, 1.0} variants
//! that Imgclsmob ships.

use optimus_model::{Activation, GraphBuilder, ModelFamily, ModelGraph, OpId};

use crate::{IMAGE_INPUT, NUM_CLASSES};

fn round_ch(c: f64) -> usize {
    // MobileNet rounds channels to multiples of 8 (minimum 8).
    let c = (c / 8.0).round() as usize * 8;
    c.max(8)
}

#[allow(clippy::too_many_arguments)]
fn conv_bn(
    b: &mut GraphBuilder,
    x: OpId,
    in_ch: usize,
    out_ch: usize,
    kernel: (usize, usize),
    stride: (usize, usize),
    groups: usize,
    act: Option<Activation>,
) -> OpId {
    let mut x = b.conv2d_after(x, in_ch, out_ch, kernel, stride, groups);
    x = b.batchnorm_after(x, out_ch);
    if let Some(a) = act {
        x = b.activation_after(x, a);
    }
    x
}

/// Build MobileNetV1 with width multiplier `alpha` and weight variant.
pub fn mobilenet_v1(alpha: f64, variant: u64) -> ModelGraph {
    let name = if (alpha - 1.0).abs() < f64::EPSILON && variant == 0 {
        "mobilenet_v1".to_string()
    } else {
        format!("mobilenet_v1-a{alpha:.2}-v{variant}")
    };
    let mut b = GraphBuilder::new(name)
        .family(ModelFamily::MobileNet)
        .weight_variant(variant);
    let ch = |c: usize| round_ch(c as f64 * alpha);
    let x = b.input(IMAGE_INPUT);
    let mut x = conv_bn(
        &mut b,
        x,
        3,
        ch(32),
        (3, 3),
        (2, 2),
        1,
        Some(Activation::Relu6),
    );
    // (out_channels, stride) of each depthwise-separable block.
    let blocks: [(usize, usize); 13] = [
        (64, 1),
        (128, 2),
        (128, 1),
        (256, 2),
        (256, 1),
        (512, 2),
        (512, 1),
        (512, 1),
        (512, 1),
        (512, 1),
        (512, 1),
        (1024, 2),
        (1024, 1),
    ];
    let mut in_ch = ch(32);
    for &(out, stride) in &blocks {
        let out = ch(out);
        // Depthwise 3x3.
        x = conv_bn(
            &mut b,
            x,
            in_ch,
            in_ch,
            (3, 3),
            (stride, stride),
            in_ch,
            Some(Activation::Relu6),
        );
        // Pointwise 1x1.
        x = conv_bn(
            &mut b,
            x,
            in_ch,
            out,
            (1, 1),
            (1, 1),
            1,
            Some(Activation::Relu6),
        );
        in_ch = out;
    }
    x = b.global_avg_pool_after(x);
    x = b.flatten_after(x);
    x = b.dense_after(x, in_ch, NUM_CLASSES);
    let _ = b.activation_after(x, Activation::Softmax);
    b.finish()
        .expect("mobilenet v1 builder produces valid graphs")
}

/// Build MobileNetV2 with width multiplier `alpha` and weight variant.
pub fn mobilenet_v2(alpha: f64, variant: u64) -> ModelGraph {
    let name = if (alpha - 1.0).abs() < f64::EPSILON && variant == 0 {
        "mobilenet_v2".to_string()
    } else {
        format!("mobilenet_v2-a{alpha:.2}-v{variant}")
    };
    let mut b = GraphBuilder::new(name)
        .family(ModelFamily::MobileNet)
        .weight_variant(variant);
    let ch = |c: usize| round_ch(c as f64 * alpha);
    let x = b.input(IMAGE_INPUT);
    let mut x = conv_bn(
        &mut b,
        x,
        3,
        ch(32),
        (3, 3),
        (2, 2),
        1,
        Some(Activation::Relu6),
    );
    let mut in_ch = ch(32);
    // (expansion t, out channels c, repeats n, first stride s) per stage.
    let stages: [(usize, usize, usize, usize); 7] = [
        (1, 16, 1, 1),
        (6, 24, 2, 2),
        (6, 32, 3, 2),
        (6, 64, 4, 2),
        (6, 96, 3, 1),
        (6, 160, 3, 2),
        (6, 320, 1, 1),
    ];
    for &(t, c, n, s) in &stages {
        let out = ch(c);
        for rep in 0..n {
            let stride = if rep == 0 { s } else { 1 };
            let hidden = in_ch * t;
            let shortcut = x;
            let mut y = x;
            if t != 1 {
                y = conv_bn(
                    &mut b,
                    y,
                    in_ch,
                    hidden,
                    (1, 1),
                    (1, 1),
                    1,
                    Some(Activation::Relu6),
                );
            }
            y = conv_bn(
                &mut b,
                y,
                hidden,
                hidden,
                (3, 3),
                (stride, stride),
                hidden,
                Some(Activation::Relu6),
            );
            y = conv_bn(&mut b, y, hidden, out, (1, 1), (1, 1), 1, None);
            x = if stride == 1 && in_ch == out {
                b.add_of(&[shortcut, y])
            } else {
                y
            };
            in_ch = out;
        }
    }
    // The final 1x1 conv keeps 1280 channels unless alpha > 1 widens it.
    let last = if alpha > 1.0 { ch(1280) } else { 1280 };
    let x2 = conv_bn(
        &mut b,
        x,
        in_ch,
        last,
        (1, 1),
        (1, 1),
        1,
        Some(Activation::Relu6),
    );
    let mut x = b.global_avg_pool_after(x2);
    x = b.flatten_after(x);
    x = b.dense_after(x, last, NUM_CLASSES);
    let _ = b.activation_after(x, Activation::Softmax);
    b.finish()
        .expect("mobilenet v2 builder produces valid graphs")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn v1_params_match_published() {
        // MobileNetV1 α=1.0: ~4.23M parameters.
        let p = mobilenet_v1(1.0, 0).param_count() as f64 / 1e6;
        assert!((p - 4.23).abs() / 4.23 < 0.03, "params {p:.2}M");
    }

    #[test]
    fn v2_params_match_published() {
        // MobileNetV2 α=1.0: ~3.5M parameters.
        let p = mobilenet_v2(1.0, 0).param_count() as f64 / 1e6;
        assert!((p - 3.5).abs() / 3.5 < 0.05, "params {p:.2}M");
    }

    #[test]
    fn alpha_scales_params_down() {
        let full = mobilenet_v1(1.0, 0).param_count();
        let half = mobilenet_v1(0.5, 0).param_count();
        let quarter = mobilenet_v1(0.25, 0).param_count();
        assert!(half < full && quarter < half);
    }

    #[test]
    fn v2_has_residual_adds() {
        let g = mobilenet_v2(1.0, 0);
        let hist = optimus_model::OpHistogram::of(&g);
        assert!(hist.count(optimus_model::OpKind::Add) >= 10);
    }

    #[test]
    fn all_variants_validate() {
        for a in [0.25, 0.5, 0.75, 1.0] {
            assert!(mobilenet_v1(a, 0).validate().is_ok());
            assert!(mobilenet_v2(a, 0).validate().is_ok());
        }
    }

    #[test]
    fn depthwise_convs_present() {
        let g = mobilenet_v1(1.0, 0);
        let depthwise = g
            .ops()
            .filter(|(_, op)| {
                matches!(
                    op.attrs,
                    optimus_model::OpAttrs::Conv2d { groups, in_channels, .. }
                    if groups > 1 && groups == in_channels
                )
            })
            .count();
        assert_eq!(depthwise, 13);
    }
}

#[cfg(test)]
mod forward_tests {
    use super::*;

    #[test]
    fn quarter_width_v1_runs_forward_end_to_end() {
        // The real architecture (all 13 depthwise-separable blocks) at
        // quarter width on a small input: Same-padded convolutions are
        // resolution-agnostic, so the published 224x224 model runs at
        // 32x32 for an end-to-end engine check.
        let g = mobilenet_v1(0.25, 0);
        let y = optimus_model::infer::run(&g, optimus_model::tensor::Tensor::zeros([1, 3, 32, 32]))
            .unwrap();
        assert_eq!(y.shape().dims(), &[1, 1000]);
        let sum: f32 = y.data().iter().sum();
        assert!((sum - 1.0).abs() < 1e-3, "softmax sums to {sum}");
        assert!(y.data().iter().all(|v| v.is_finite() && *v >= 0.0));
    }
}
