//! Model catalog: a population of several hundred named CNN variants plus
//! the BERT zoo, standing in for the paper's Imgclsmob workload (§8.1).
//!
//! Imgclsmob ships 389 pretrained classifiers spanning many families; our
//! catalog reproduces the *population structure* the paper exploits —
//! families of structurally similar models at different widths/depths and
//! weight variants of the same structure — with deterministic builders.
//! (DESIGN.md records this substitution.)

use optimus_model::{ModelFamily, ModelGraph};
use serde::{Deserialize, Serialize};

use crate::bert::{bert, BertConfig};
use crate::{
    densenet, efficientnet, inception, mobilenet, nasbench, resnet, resnext, squeezenet, vgg,
    wideresnet, xception,
};

/// A buildable catalog entry: recipe + metadata, graph built on demand.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModelEntry {
    /// Canonical model name (matches the built graph's name).
    pub name: String,
    /// Family tag.
    pub family: ModelFamily,
    /// Build recipe.
    pub spec: ModelSpec,
}

/// Deterministic build recipe for a catalog entry.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ModelSpec {
    /// VGG at `(depth, width multiplier, weight variant)`.
    Vgg(usize, f64, u64),
    /// ResNet at `(depth, width multiplier, weight variant)`.
    ResNet(usize, f64, u64),
    /// DenseNet at `(depth, weight variant)`.
    DenseNet(usize, u64),
    /// MobileNet at `(version, alpha, weight variant)`.
    MobileNet(u8, f64, u64),
    /// Xception at `(weight variant)`.
    Xception(u64),
    /// Inception-v1 at `(weight variant)`.
    Inception(u64),
    /// BERT configuration.
    Bert(BertConfig),
    /// NAS-Bench-201 architecture `(index, weight variant)`.
    NasBench(u64, u64),
    /// SqueezeNet v1.1 at `(weight variant)`.
    SqueezeNet(u64),
    /// ResNeXt 32×4d at `(depth, weight variant)`.
    ResNeXt(usize, u64),
    /// Wide ResNet at `(depth, widening factor, weight variant)`.
    WideResNet(usize, usize, u64),
    /// EfficientNet-Lite at `(width, depth multiplier, weight variant)`.
    EfficientNet(f64, f64, u64),
    /// Text-classification RNN at `(cell, layers, hidden, weight variant)`.
    TextRnn(crate::textrnn::RnnCell, usize, usize, u64),
}

impl ModelEntry {
    fn new(family: ModelFamily, spec: ModelSpec) -> Self {
        // Build once to obtain the canonical name; graph is then dropped.
        // Builders are pure metadata constructions (weights stay lazy), so
        // this costs microseconds per entry.
        let name = spec.build().name().to_string();
        ModelEntry { name, family, spec }
    }

    /// Build the model graph.
    pub fn build(&self) -> ModelGraph {
        self.spec.build()
    }
}

impl ModelSpec {
    /// Build the model graph for this recipe.
    pub fn build(&self) -> ModelGraph {
        match *self {
            ModelSpec::Vgg(d, w, v) => vgg::vgg_scaled(d, w, v),
            ModelSpec::ResNet(d, w, v) => resnet::resnet_scaled(d, w, v),
            ModelSpec::DenseNet(d, v) => densenet::densenet_variant(d, v),
            ModelSpec::MobileNet(1, a, v) => mobilenet::mobilenet_v1(a, v),
            ModelSpec::MobileNet(_, a, v) => mobilenet::mobilenet_v2(a, v),
            ModelSpec::Xception(v) => xception::xception_variant(v),
            ModelSpec::Inception(v) => inception::inception_variant(v),
            ModelSpec::Bert(cfg) => bert(cfg),
            ModelSpec::NasBench(i, v) => nasbench::nasbench_model_sized(i, 5, v),
            ModelSpec::SqueezeNet(v) => squeezenet::squeezenet_variant(v),
            ModelSpec::ResNeXt(d, v) => resnext::resnext_variant(d, v),
            ModelSpec::WideResNet(d, k, v) => wideresnet::wide_resnet_variant(d, k, v),
            ModelSpec::EfficientNet(w, dm, v) => efficientnet::efficientnet_lite(w, dm, v),
            ModelSpec::TextRnn(cell, l, h, v) => crate::textrnn::text_rnn(cell, l, h, v),
        }
    }
}

/// The Imgclsmob-style CNN catalog: width/depth grids over six families
/// plus weight variants of the canonical models (~300 entries).
pub fn imgclsmob_catalog() -> Vec<ModelEntry> {
    let mut entries = Vec::new();
    let widths = [
        0.25, 0.375, 0.5, 0.625, 0.75, 0.875, 1.0, 1.25, 1.5, 1.75, 2.0,
    ];
    for &d in &[11usize, 13, 16, 19] {
        for &w in &widths {
            entries.push(ModelEntry::new(ModelFamily::Vgg, ModelSpec::Vgg(d, w, 0)));
        }
        // Weight variants of the published width ("trained on other data").
        for v in 1..=2 {
            entries.push(ModelEntry::new(ModelFamily::Vgg, ModelSpec::Vgg(d, 1.0, v)));
        }
    }
    for &d in &[10usize, 14, 18, 26, 34, 50, 101, 152] {
        for &w in &widths {
            entries.push(ModelEntry::new(
                ModelFamily::ResNet,
                ModelSpec::ResNet(d, w, 0),
            ));
        }
        for v in 1..=2 {
            entries.push(ModelEntry::new(
                ModelFamily::ResNet,
                ModelSpec::ResNet(d, 1.0, v),
            ));
        }
    }
    for &d in &[121usize, 161, 169, 201] {
        for v in 0..=2 {
            entries.push(ModelEntry::new(
                ModelFamily::DenseNet,
                ModelSpec::DenseNet(d, v),
            ));
        }
    }
    for version in [1u8, 2] {
        for &a in &[0.25, 0.5, 0.75, 1.0] {
            for v in 0..=2 {
                entries.push(ModelEntry::new(
                    ModelFamily::MobileNet,
                    ModelSpec::MobileNet(version, a, v),
                ));
            }
        }
    }
    for v in 0..=4 {
        entries.push(ModelEntry::new(
            ModelFamily::Xception,
            ModelSpec::Xception(v),
        ));
        entries.push(ModelEntry::new(
            ModelFamily::Inception,
            ModelSpec::Inception(v),
        ));
        entries.push(ModelEntry::new(
            ModelFamily::Custom,
            ModelSpec::SqueezeNet(v),
        ));
    }
    for &d in &[50usize, 101] {
        for v in 0..=2 {
            entries.push(ModelEntry::new(
                ModelFamily::ResNet,
                ModelSpec::ResNeXt(d, v),
            ));
        }
    }
    for &(d, k) in &[(16usize, 4usize), (16, 8), (28, 10), (22, 8), (40, 4)] {
        for v in 0..=1 {
            entries.push(ModelEntry::new(
                ModelFamily::ResNet,
                ModelSpec::WideResNet(d, k, v),
            ));
        }
    }
    for &(w, dm) in &[(1.0f64, 1.0f64), (1.0, 1.1), (1.1, 1.2), (1.2, 1.4)] {
        for v in 0..=1 {
            entries.push(ModelEntry::new(
                ModelFamily::MobileNet,
                ModelSpec::EfficientNet(w, dm, v),
            ));
        }
    }
    entries
}

/// The full catalog: Imgclsmob-style CNNs, the ten BERT variants (the
/// same configurations as [`crate::bert::bert_zoo`]), and the text-RNN
/// family.
pub fn catalog() -> Vec<ModelEntry> {
    let mut entries = imgclsmob_catalog();
    for cfg in bert_configs() {
        entries.push(ModelEntry::new(ModelFamily::Bert, ModelSpec::Bert(cfg)));
    }
    for cell in [crate::textrnn::RnnCell::Lstm, crate::textrnn::RnnCell::Gru] {
        for &(l, h) in &[(1usize, 128usize), (1, 256), (2, 256), (2, 512)] {
            entries.push(ModelEntry::new(
                ModelFamily::Custom,
                ModelSpec::TextRnn(cell, l, h, 0),
            ));
        }
    }
    entries
}

/// The ten BERT configurations of [`crate::bert::bert_zoo`], as specs.
pub fn bert_configs() -> Vec<BertConfig> {
    use crate::bert::{BertSize, BertTask, BertVocab};
    vec![
        BertConfig::new(BertSize::Tiny),
        BertConfig::new(BertSize::Mini),
        BertConfig::new(BertSize::Small),
        BertConfig::new(BertSize::Base).vocab(BertVocab::Cased),
        BertConfig::new(BertSize::Base).vocab(BertVocab::Uncased),
        BertConfig::new(BertSize::Base).task(BertTask::SequenceClassification),
        BertConfig::new(BertSize::Base).task(BertTask::TokenClassification),
        BertConfig::new(BertSize::Base).task(BertTask::QuestionAnswering),
        BertConfig::new(BertSize::Base).task(BertTask::NextSentencePrediction),
        BertConfig::new(BertSize::Base).task(BertTask::MultipleChoice),
    ]
}

/// Find a catalog entry by name.
pub fn find(name: &str) -> Option<ModelEntry> {
    catalog().into_iter().find(|e| e.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_is_populous_and_unique() {
        let c = catalog();
        assert!(c.len() >= 200, "catalog has {} entries", c.len());
        let names: std::collections::HashSet<_> = c.iter().map(|e| e.name.clone()).collect();
        assert_eq!(names.len(), c.len(), "duplicate names in catalog");
    }

    #[test]
    fn entry_names_match_built_models() {
        // Sample across the catalog (building all ~300 is slow in debug).
        let c = catalog();
        for e in c.iter().step_by(17) {
            let g = e.build();
            assert_eq!(g.name(), e.name, "name mismatch for {:?}", e.spec);
            assert_eq!(g.family(), e.family);
            assert!(g.validate().is_ok(), "{} invalid", e.name);
        }
    }

    #[test]
    fn find_locates_canonical_models() {
        for name in ["vgg16", "resnet50", "densenet121", "bert-base-uncased"] {
            assert!(find(name).is_some(), "{name} missing from catalog");
        }
        assert!(find("nonexistent-model").is_none());
    }

    #[test]
    fn families_are_all_represented() {
        let c = catalog();
        for fam in [
            ModelFamily::Vgg,
            ModelFamily::ResNet,
            ModelFamily::DenseNet,
            ModelFamily::MobileNet,
            ModelFamily::Xception,
            ModelFamily::Inception,
            ModelFamily::Bert,
        ] {
            assert!(
                c.iter().any(|e| e.family == fam),
                "family {fam} missing from catalog"
            );
        }
    }

    #[test]
    fn specs_serialize() {
        let c = imgclsmob_catalog();
        let json = serde_json::to_string(&c[0]).unwrap();
        let back: ModelEntry = serde_json::from_str(&json).unwrap();
        assert_eq!(back, c[0]);
    }
}
