//! Densely connected convolutional networks (Huang et al., CVPR '17).
//!
//! DenseNet-121/161/169/201 in their published configurations
//! (growth rate 32, or 48 for DenseNet-161; BN-ReLU-1×1 then BN-ReLU-3×3
//! composite layers; 0.5-compression transitions).

use optimus_model::{Activation, GraphBuilder, ModelFamily, ModelGraph, OpId, PoolKind};

use crate::{IMAGE_INPUT, NUM_CLASSES};

/// Per-depth configuration: block sizes, growth rate, stem channels.
fn config(depth: usize) -> ([usize; 4], usize, usize) {
    match depth {
        121 => ([6, 12, 24, 16], 32, 64),
        161 => ([6, 12, 36, 24], 48, 96),
        169 => ([6, 12, 32, 32], 32, 64),
        201 => ([6, 12, 48, 32], 32, 64),
        _ => panic!("unsupported DenseNet depth {depth}"),
    }
}

fn dense_layer(b: &mut GraphBuilder, x: OpId, in_ch: usize, growth: usize) -> OpId {
    // BN - ReLU - 1x1 conv (4*growth) - BN - ReLU - 3x3 conv (growth)
    let mut y = b.batchnorm_after(x, in_ch);
    y = b.activation_after(y, Activation::Relu);
    y = b.conv2d_after(y, in_ch, 4 * growth, (1, 1), (1, 1), 1);
    y = b.batchnorm_after(y, 4 * growth);
    y = b.activation_after(y, Activation::Relu);
    y = b.conv2d_after(y, 4 * growth, growth, (3, 3), (1, 1), 1);
    b.concat_of(&[x, y])
}

/// Build a DenseNet of the given depth with a weight variant.
///
/// # Panics
///
/// Panics on unsupported depths (121, 161, 169, 201).
pub fn densenet_variant(depth: usize, variant: u64) -> ModelGraph {
    let (blocks, growth, stem) = config(depth);
    let name = if variant == 0 {
        format!("densenet{depth}")
    } else {
        format!("densenet{depth}-v{variant}")
    };
    let mut b = GraphBuilder::new(name)
        .family(ModelFamily::DenseNet)
        .weight_variant(variant);
    let x = b.input(IMAGE_INPUT);
    let mut x = b.conv2d_after(x, 3, stem, (7, 7), (2, 2), 1);
    x = b.batchnorm_after(x, stem);
    x = b.activation_after(x, Activation::Relu);
    x = b.pool_after(x, PoolKind::Max, (3, 3), (2, 2));
    let mut ch = stem;
    for (i, &layers) in blocks.iter().enumerate() {
        for _ in 0..layers {
            x = dense_layer(&mut b, x, ch, growth);
            ch += growth;
        }
        if i + 1 < blocks.len() {
            // Transition: BN-ReLU-1x1 conv (0.5 compression) + 2x2 avg pool.
            let out = ch / 2;
            x = b.batchnorm_after(x, ch);
            x = b.activation_after(x, Activation::Relu);
            x = b.conv2d_after(x, ch, out, (1, 1), (1, 1), 1);
            x = b.pool_after(x, PoolKind::Avg, (2, 2), (2, 2));
            ch = out;
        }
    }
    x = b.batchnorm_after(x, ch);
    x = b.activation_after(x, Activation::Relu);
    x = b.global_avg_pool_after(x);
    x = b.flatten_after(x);
    x = b.dense_after(x, ch, NUM_CLASSES);
    let _ = b.activation_after(x, Activation::Softmax);
    b.finish().expect("densenet builder produces valid graphs")
}

/// DenseNet of the given depth.
pub fn densenet(depth: usize) -> ModelGraph {
    densenet_variant(depth, 0)
}

/// DenseNet-121.
pub fn densenet121() -> ModelGraph {
    densenet(121)
}

/// DenseNet-169.
pub fn densenet169() -> ModelGraph {
    densenet(169)
}

/// DenseNet-201.
pub fn densenet201() -> ModelGraph {
    densenet(201)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn densenet121_params_match_published() {
        // torchvision DenseNet-121: 7.98M parameters.
        let p = densenet121().param_count() as f64 / 1e6;
        assert!((p - 7.98).abs() / 7.98 < 0.02, "params {p:.2}M");
    }

    #[test]
    fn all_depths_validate() {
        for d in [121, 161, 169, 201] {
            let g = densenet(d);
            assert!(g.validate().is_ok(), "densenet{d} invalid");
            assert_eq!(g.family(), ModelFamily::DenseNet);
        }
    }

    #[test]
    fn concat_fanin_grows_within_block() {
        let g = densenet121();
        let hist = optimus_model::OpHistogram::of(&g);
        // One concat per dense layer: 6+12+24+16 = 58.
        assert_eq!(hist.count(optimus_model::OpKind::Concat), 58);
    }

    #[test]
    fn deeper_densenets_have_more_params() {
        assert!(densenet169().param_count() > densenet121().param_count());
        assert!(densenet201().param_count() > densenet169().param_count());
    }
}
