//! VGG image classifiers (Simonyan & Zisserman, ICLR '15).
//!
//! Configurations A (VGG11), B (VGG13), D (VGG16) and E (VGG19), with the
//! original three fully connected layers (4096-4096-1000). Parameter counts
//! match the published models: 132.9 M / 133.0 M / 138.4 M / 143.7 M.

use optimus_model::{Activation, GraphBuilder, ModelFamily, ModelGraph, PoolKind};

use crate::{IMAGE_INPUT, NUM_CLASSES};

/// Per-stage convolution counts of each VGG configuration.
fn config(depth: usize) -> [usize; 5] {
    match depth {
        11 => [1, 1, 2, 2, 2],
        13 => [2, 2, 2, 2, 2],
        16 => [2, 2, 3, 3, 3],
        19 => [2, 2, 4, 4, 4],
        _ => panic!("unsupported VGG depth {depth} (use 11, 13, 16 or 19)"),
    }
}

/// Build a VGG model of the given depth with a custom width multiplier and
/// weight variant (for "same structure, different weights" cases).
///
/// `width` scales channel counts (1.0 = the published model); the classifier
/// keeps the standard 4096-unit FC layers.
///
/// # Panics
///
/// Panics on unsupported depths (only 11, 13, 16, 19 exist).
pub fn vgg_scaled(depth: usize, width: f64, variant: u64) -> ModelGraph {
    let stages = config(depth);
    let name = if (width - 1.0).abs() < f64::EPSILON && variant == 0 {
        format!("vgg{depth}")
    } else {
        format!("vgg{depth}-w{width:.2}-v{variant}")
    };
    let mut b = GraphBuilder::new(name)
        .family(ModelFamily::Vgg)
        .weight_variant(variant);
    let ch = |c: usize| ((c as f64 * width).round() as usize).max(1);
    let mut x = b.input(IMAGE_INPUT);
    let mut in_ch = 3usize;
    let mut spatial = IMAGE_INPUT[2];
    let widths = [64, 128, 256, 512, 512];
    for (stage, &convs) in stages.iter().enumerate() {
        let out_ch = ch(widths[stage]);
        for _ in 0..convs {
            x = b.conv2d_after(x, in_ch, out_ch, (3, 3), (1, 1), 1);
            x = b.activation_after(x, Activation::Relu);
            in_ch = out_ch;
        }
        x = b.pool_after(x, PoolKind::Max, (2, 2), (2, 2));
        spatial /= 2;
    }
    x = b.flatten_after(x);
    let flat = in_ch * spatial * spatial;
    x = b.dense_after(x, flat, 4096);
    x = b.activation_after(x, Activation::Relu);
    x = b.dense_after(x, 4096, 4096);
    x = b.activation_after(x, Activation::Relu);
    x = b.dense_after(x, 4096, NUM_CLASSES);
    let _ = b.activation_after(x, Activation::Softmax);
    b.finish().expect("vgg builder produces valid graphs")
}

/// VGG of the given depth at published width.
pub fn vgg(depth: usize) -> ModelGraph {
    vgg_scaled(depth, 1.0, 0)
}

/// VGG11 (configuration A).
pub fn vgg11() -> ModelGraph {
    vgg(11)
}

/// VGG13 (configuration B).
pub fn vgg13() -> ModelGraph {
    vgg(13)
}

/// VGG16 (configuration D).
pub fn vgg16() -> ModelGraph {
    vgg(16)
}

/// VGG19 (configuration E).
pub fn vgg19() -> ModelGraph {
    vgg(19)
}

#[cfg(test)]
mod tests {
    use super::*;
    use optimus_model::OpKind;

    #[test]
    fn vgg16_has_13_convs_and_3_dense() {
        let g = vgg16();
        let hist = optimus_model::OpHistogram::of(&g);
        assert_eq!(hist.count(OpKind::Conv2d), 13);
        assert_eq!(hist.count(OpKind::Dense), 3);
        assert_eq!(hist.count(OpKind::Pool2d), 5);
    }

    #[test]
    fn vgg19_is_deeper_than_vgg16() {
        assert!(vgg19().op_count() > vgg16().op_count());
        assert!(vgg19().param_count() > vgg16().param_count());
    }

    #[test]
    fn all_depths_validate() {
        for d in [11, 13, 16, 19] {
            let g = vgg(d);
            assert!(g.validate().is_ok(), "vgg{d} invalid");
            assert_eq!(g.family(), ModelFamily::Vgg);
        }
    }

    #[test]
    fn width_scaling_shrinks_model() {
        let half = vgg_scaled(16, 0.5, 0);
        assert!(half.param_count() < vgg16().param_count());
        assert_eq!(half.op_count(), vgg16().op_count());
    }

    #[test]
    fn variant_changes_weights_only() {
        let a = vgg_scaled(11, 1.0, 0);
        let c = vgg_scaled(11, 1.0, 1);
        assert_eq!(a.op_count(), c.op_count());
        assert!(!a.structurally_equal(&c), "weights must differ");
    }

    #[test]
    #[should_panic(expected = "unsupported VGG depth")]
    fn bad_depth_panics() {
        let _ = vgg(12);
    }
}
