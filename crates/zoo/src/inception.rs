//! GoogLeNet / Inception-v1 (Szegedy et al., CVPR '15).
//!
//! The published 22-layer configuration with nine inception modules
//! (four parallel branches concatenated: 1×1, 1×1→3×3, 1×1→5×5,
//! maxpool→1×1), without the auxiliary training heads, which do not exist
//! at inference time.

use optimus_model::{Activation, GraphBuilder, ModelFamily, ModelGraph, OpId, PoolKind};

use crate::{IMAGE_INPUT, NUM_CLASSES};

fn conv_relu(
    b: &mut GraphBuilder,
    x: OpId,
    in_ch: usize,
    out_ch: usize,
    kernel: (usize, usize),
    stride: (usize, usize),
) -> OpId {
    let x = b.conv2d_after(x, in_ch, out_ch, kernel, stride, 1);
    b.activation_after(x, Activation::Relu)
}

/// One inception module: `(c1, c3r, c3, c5r, c5, pp)` branch widths.
#[allow(clippy::too_many_arguments)]
fn inception_module(
    b: &mut GraphBuilder,
    x: OpId,
    in_ch: usize,
    c1: usize,
    c3r: usize,
    c3: usize,
    c5r: usize,
    c5: usize,
    pp: usize,
) -> (OpId, usize) {
    let b1 = conv_relu(b, x, in_ch, c1, (1, 1), (1, 1));
    let b3 = conv_relu(b, x, in_ch, c3r, (1, 1), (1, 1));
    let b3 = conv_relu(b, b3, c3r, c3, (3, 3), (1, 1));
    let b5 = conv_relu(b, x, in_ch, c5r, (1, 1), (1, 1));
    let b5 = conv_relu(b, b5, c5r, c5, (5, 5), (1, 1));
    let bp = {
        // Same-padded 3x3 stride-1 max pool keeps spatial dims for concat.
        let p = b.after(
            x,
            format!("incpool_{in_ch}_{pp}"),
            optimus_model::OpAttrs::Pool2d {
                kind: PoolKind::Max,
                size: (3, 3),
                stride: (1, 1),
                padding: optimus_model::Padding::Same,
            },
        );
        conv_relu(b, p, in_ch, pp, (1, 1), (1, 1))
    };
    (b.concat_of(&[b1, b3, b5, bp]), c1 + c3 + c5 + pp)
}

/// Build GoogLeNet/Inception-v1 with a weight variant salt.
pub fn inception_variant(variant: u64) -> ModelGraph {
    let name = if variant == 0 {
        "inception_v1".to_string()
    } else {
        format!("inception_v1-v{variant}")
    };
    let mut b = GraphBuilder::new(name)
        .family(ModelFamily::Inception)
        .weight_variant(variant);
    let x = b.input(IMAGE_INPUT);
    let mut x = conv_relu(&mut b, x, 3, 64, (7, 7), (2, 2));
    x = b.pool_after(x, PoolKind::Max, (3, 3), (2, 2));
    x = conv_relu(&mut b, x, 64, 64, (1, 1), (1, 1));
    x = conv_relu(&mut b, x, 64, 192, (3, 3), (1, 1));
    x = b.pool_after(x, PoolKind::Max, (3, 3), (2, 2));
    // Published module table (3a..5b).
    let table: [(usize, usize, usize, usize, usize, usize); 9] = [
        (64, 96, 128, 16, 32, 32),     // 3a
        (128, 128, 192, 32, 96, 64),   // 3b
        (192, 96, 208, 16, 48, 64),    // 4a
        (160, 112, 224, 24, 64, 64),   // 4b
        (128, 128, 256, 24, 64, 64),   // 4c
        (112, 144, 288, 32, 64, 64),   // 4d
        (256, 160, 320, 32, 128, 128), // 4e
        (256, 160, 320, 32, 128, 128), // 5a
        (384, 192, 384, 48, 128, 128), // 5b
    ];
    let mut in_ch = 192;
    for (i, &(c1, c3r, c3, c5r, c5, pp)) in table.iter().enumerate() {
        let (nx, out) = inception_module(&mut b, x, in_ch, c1, c3r, c3, c5r, c5, pp);
        x = nx;
        in_ch = out;
        // Max-pool after 3b (i == 1) and 4e (i == 6).
        if i == 1 || i == 6 {
            x = b.pool_after(x, PoolKind::Max, (3, 3), (2, 2));
        }
    }
    x = b.global_avg_pool_after(x);
    x = b.flatten_after(x);
    x = b.dense_after(x, in_ch, NUM_CLASSES);
    let _ = b.activation_after(x, Activation::Softmax);
    b.finish().expect("inception builder produces valid graphs")
}

/// GoogLeNet/Inception-v1 at published configuration.
pub fn inception_v1() -> ModelGraph {
    inception_variant(0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn params_match_published() {
        // GoogLeNet is widely quoted at ~7M parameters (Szegedy et al.
        // report "about 6.8M" for the 22-layer network without aux heads).
        let p = inception_v1().param_count() as f64 / 1e6;
        assert!((p - 7.0).abs() / 7.0 < 0.05, "params {p:.2}M");
    }

    #[test]
    fn nine_inception_modules() {
        let g = inception_v1();
        let hist = optimus_model::OpHistogram::of(&g);
        assert_eq!(hist.count(optimus_model::OpKind::Concat), 9);
        assert!(g.validate().is_ok());
    }

    #[test]
    fn branches_have_correct_fanin() {
        let g = inception_v1();
        for (id, op) in g.ops() {
            if op.kind() == optimus_model::OpKind::Concat {
                assert_eq!(g.predecessors(id).len(), 4, "concat {id} fan-in");
            }
        }
    }
}
