//! Per-request records and run-level reports.

use std::collections::BTreeMap;

use optimus_telemetry::{exact_percentile, Histogram};
use serde::{Deserialize, Serialize};

/// How a request's container was obtained (Figure 14's categories).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum StartKind {
    /// Served by a warm container already holding the model.
    Warm,
    /// A brand-new container was created and the model loaded from scratch.
    Cold,
    /// An existing container was transformed/re-purposed for the function
    /// (Pagurus repurpose, Tetris tensor-mapping, Optimus model
    /// transformation).
    Transform,
}

/// Latency breakdown of one served request (all seconds).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RequestRecord {
    /// Function name.
    pub function: String,
    /// Arrival time.
    pub arrival: f64,
    /// Queueing delay before a container was available.
    pub wait: f64,
    /// Sandbox/runtime initialization (0 for warm starts).
    pub init: f64,
    /// Model loading or transformation latency (0 for warm starts).
    pub load: f64,
    /// Inference computation.
    pub compute: f64,
    /// Start category.
    pub kind: StartKind,
}

impl RequestRecord {
    /// End-to-end service latency: wait + init + load + compute (the
    /// paper's §8.3 metric).
    pub fn service_time(&self) -> f64 {
        self.wait + self.init + self.load + self.compute
    }
}

/// p50/p95/p99 of one latency phase, estimated through the shared
/// `optimus-telemetry` histograms (the same quantile estimator the live
/// gateway's `/metrics` endpoint reports).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PhasePercentiles {
    /// Median (s).
    pub p50: f64,
    /// 95th percentile (s).
    pub p95: f64,
    /// 99th percentile (s).
    pub p99: f64,
}

impl PhasePercentiles {
    fn of(histogram: &Histogram) -> PhasePercentiles {
        let (p50, p95, p99) = histogram.percentiles();
        PhasePercentiles { p50, p95, p99 }
    }
}

/// Per-phase percentile breakdown of one function's requests
/// (wait / init / load / compute — the §8.3 composition).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PhaseBreakdown {
    /// Queueing delay percentiles.
    pub wait: PhasePercentiles,
    /// Sandbox init percentiles.
    pub init: PhasePercentiles,
    /// Model load/transform percentiles.
    pub load: PhasePercentiles,
    /// Inference compute percentiles.
    pub compute: PhasePercentiles,
}

/// Per-function aggregate of a simulation run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FunctionSummary {
    /// Function name.
    pub function: String,
    /// Requests served.
    pub requests: usize,
    /// Sum of service times (s); divide by `requests` for the mean.
    pub total_service: f64,
    /// Cold starts.
    pub cold: usize,
    /// Container/model transformations.
    pub transform: usize,
    /// Warm starts.
    pub warm: usize,
    /// Per-phase latency percentiles of this function's requests.
    pub phases: PhaseBreakdown,
}

impl FunctionSummary {
    /// Mean service time of this function's requests.
    pub fn avg_service_time(&self) -> f64 {
        self.total_service / self.requests.max(1) as f64
    }
}

/// Aggregated results of one simulation run.
#[derive(Debug, Clone, PartialEq, Deserialize, Default)]
pub struct SimReport {
    /// System name (policy).
    pub system: String,
    /// All per-request records, in completion order of dispatch.
    pub records: Vec<RequestRecord>,
    /// Proactive transformations executed by the prewarming extension
    /// (0 unless `SimConfig::prewarm` is set).
    pub prewarms: usize,
    /// Fleet-aggregated weight-store statistics (`None` unless
    /// `SimConfig::store` is set): per-tier resident bytes, chunk
    /// hit/miss counts, and the dedup ratio content addressing achieved.
    pub store: Option<optimus_store::StoreStats>,
    /// Fault-injection summary (`None` unless `SimConfig::faults` is
    /// set): counters for every injected fault class and resilience
    /// response, plus the worst per-request margin over the cold-start
    /// equivalent (≤ 0 means the §6.3 safeguard held on every request).
    pub faults: Option<optimus_faults::FaultReport>,
    /// Elastic-fleet summary (`None` unless `SimConfig::fleet` is set):
    /// scale events, nodes added/removed, multicast rounds/bytes, and the
    /// worst time-to-all-warm across scale-out waves.
    pub fleet: Option<optimus_fleet::FleetReport>,
    /// Arrival-prediction summary (`None` unless `SimConfig::predict` is
    /// set): speculation hit/misprediction counters, speculation cost and
    /// saved seconds, and the adaptive keep-alive window statistics.
    pub predict: Option<optimus_predict::PredictReport>,
    /// Token-level LLM serving summary (`None` unless `SimConfig::llm`
    /// is set): decode-loop counts, continuous-batching joins, and the
    /// time-to-first-token distribution that replaces service time as
    /// the latency metric for decode workloads.
    pub llm: Option<optimus_llm::LlmReport>,
}

// Hand-written so the `fleet` and `predict` keys are *omitted* (not
// `null`) when those subsystems are disabled: committed experiment JSON
// from older binaries must stay byte-identical. The derive serializes
// every field.
impl Serialize for SimReport {
    fn to_value(&self) -> serde::Value {
        let mut m = serde::Map::new();
        m.insert("system", self.system.to_value());
        m.insert("records", self.records.to_value());
        m.insert("prewarms", self.prewarms.to_value());
        m.insert("store", self.store.to_value());
        m.insert("faults", self.faults.to_value());
        if let Some(fleet) = &self.fleet {
            m.insert("fleet", fleet.to_value());
        }
        if let Some(predict) = &self.predict {
            m.insert("predict", predict.to_value());
        }
        if let Some(llm) = &self.llm {
            m.insert("llm", llm.to_value());
        }
        serde::Value::Object(m)
    }
}

impl SimReport {
    /// Number of requests served.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether no requests were served.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Mean end-to-end service time (Figure 13's metric).
    pub fn avg_service_time(&self) -> f64 {
        if self.records.is_empty() {
            return 0.0;
        }
        self.records
            .iter()
            .map(RequestRecord::service_time)
            .sum::<f64>()
            / self.records.len() as f64
    }

    /// p-th percentile service time (`p` in `[0, 100]`): the telemetry
    /// crate's nearest-rank percentile over the exact per-request values.
    pub fn percentile_service_time(&self, p: f64) -> f64 {
        let times: Vec<f64> = self
            .records
            .iter()
            .map(RequestRecord::service_time)
            .collect();
        exact_percentile(&times, p)
    }

    /// Fraction of requests per start kind (Figure 14).
    pub fn start_fractions(&self) -> BTreeMap<StartKind, f64> {
        let mut counts: BTreeMap<StartKind, usize> = BTreeMap::new();
        for r in &self.records {
            *counts.entry(r.kind).or_insert(0) += 1;
        }
        let total = self.records.len().max(1) as f64;
        counts
            .into_iter()
            .map(|(k, c)| (k, c as f64 / total))
            .collect()
    }

    /// Fraction of requests served within `threshold` seconds (SLO
    /// attainment).
    pub fn slo_attainment(&self, threshold: f64) -> f64 {
        if self.records.is_empty() {
            return 1.0;
        }
        let ok = self
            .records
            .iter()
            .filter(|r| r.service_time() <= threshold)
            .count();
        ok as f64 / self.records.len() as f64
    }

    /// Per-function aggregation, sorted by descending request count.
    ///
    /// Phase percentiles come from the shared telemetry histograms
    /// (log-spaced buckets, interpolated quantiles) rather than a bespoke
    /// sort per function and phase.
    pub fn per_function(&self) -> Vec<FunctionSummary> {
        let mut map: BTreeMap<&str, (FunctionSummary, [Histogram; 4])> = BTreeMap::new();
        for r in &self.records {
            let (e, phases) = map.entry(r.function.as_str()).or_insert_with(|| {
                let empty = PhasePercentiles {
                    p50: 0.0,
                    p95: 0.0,
                    p99: 0.0,
                };
                (
                    FunctionSummary {
                        function: r.function.clone(),
                        requests: 0,
                        total_service: 0.0,
                        cold: 0,
                        transform: 0,
                        warm: 0,
                        phases: PhaseBreakdown {
                            wait: empty,
                            init: empty,
                            load: empty,
                            compute: empty,
                        },
                    },
                    std::array::from_fn(|_| Histogram::new()),
                )
            });
            e.requests += 1;
            e.total_service += r.service_time();
            match r.kind {
                StartKind::Cold => e.cold += 1,
                StartKind::Transform => e.transform += 1,
                StartKind::Warm => e.warm += 1,
            }
            for (h, v) in phases.iter().zip([r.wait, r.init, r.load, r.compute]) {
                h.observe(v);
            }
        }
        let mut v: Vec<FunctionSummary> = map
            .into_values()
            .map(|(mut summary, phases)| {
                summary.phases = PhaseBreakdown {
                    wait: PhasePercentiles::of(&phases[0]),
                    init: PhasePercentiles::of(&phases[1]),
                    load: PhasePercentiles::of(&phases[2]),
                    compute: PhasePercentiles::of(&phases[3]),
                };
                summary
            })
            .collect();
        v.sort_by(|a, b| {
            b.requests
                .cmp(&a.requests)
                .then_with(|| a.function.cmp(&b.function))
        });
        v
    }

    /// Export all records as CSV (header + one line per request).
    pub fn to_csv(&self) -> String {
        let mut out = String::from("function,arrival,wait,init,load,compute,service_time,kind\n");
        for r in &self.records {
            let kind = match r.kind {
                StartKind::Warm => "warm",
                StartKind::Cold => "cold",
                StartKind::Transform => "transform",
            };
            out.push_str(&format!(
                "{},{},{},{},{},{},{},{}\n",
                r.function,
                r.arrival,
                r.wait,
                r.init,
                r.load,
                r.compute,
                r.service_time(),
                kind
            ));
        }
        out
    }

    /// Mean latency of each breakdown component `(wait, init, load,
    /// compute)`.
    pub fn mean_breakdown(&self) -> (f64, f64, f64, f64) {
        let n = self.records.len().max(1) as f64;
        let sum = self.records.iter().fold((0.0, 0.0, 0.0, 0.0), |acc, r| {
            (
                acc.0 + r.wait,
                acc.1 + r.init,
                acc.2 + r.load,
                acc.3 + r.compute,
            )
        });
        (sum.0 / n, sum.1 / n, sum.2 / n, sum.3 / n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(kind: StartKind, wait: f64, init: f64, load: f64, compute: f64) -> RequestRecord {
        RequestRecord {
            function: "f".into(),
            arrival: 0.0,
            wait,
            init,
            load,
            compute,
            kind,
        }
    }

    #[test]
    fn service_time_sums_components() {
        let r = rec(StartKind::Cold, 1.0, 2.0, 3.0, 4.0);
        assert_eq!(r.service_time(), 10.0);
    }

    #[test]
    fn report_aggregates() {
        let report = SimReport {
            system: "test".into(),
            store: None,
            faults: None,
            fleet: None,
            predict: None,
            llm: None,
            prewarms: 0,
            records: vec![
                rec(StartKind::Warm, 0.0, 0.0, 0.0, 1.0),
                rec(StartKind::Cold, 0.0, 1.0, 2.0, 1.0),
                rec(StartKind::Transform, 0.0, 0.1, 0.4, 1.0),
                rec(StartKind::Warm, 0.0, 0.0, 0.0, 1.0),
            ],
        };
        assert_eq!(report.len(), 4);
        assert!((report.avg_service_time() - (1.0 + 4.0 + 1.5 + 1.0) / 4.0).abs() < 1e-12);
        let frac = report.start_fractions();
        assert_eq!(frac[&StartKind::Warm], 0.5);
        assert_eq!(frac[&StartKind::Cold], 0.25);
        assert_eq!(frac[&StartKind::Transform], 0.25);
        let (w, i, l, c) = report.mean_breakdown();
        assert_eq!(w, 0.0);
        assert!((i - 0.275).abs() < 1e-12);
        assert!((l - 0.6).abs() < 1e-12);
        assert_eq!(c, 1.0);
    }

    #[test]
    fn percentiles_ordered() {
        let report = SimReport {
            system: "t".into(),
            store: None,
            faults: None,
            fleet: None,
            predict: None,
            llm: None,
            prewarms: 0,
            records: (1..=100)
                .map(|i| rec(StartKind::Warm, 0.0, 0.0, 0.0, i as f64))
                .collect(),
        };
        assert!(report.percentile_service_time(50.0) <= report.percentile_service_time(99.0));
        assert_eq!(report.percentile_service_time(100.0), 100.0);
    }

    #[test]
    fn empty_report_is_sane() {
        let r = SimReport::default();
        assert!(r.is_empty());
        assert_eq!(r.avg_service_time(), 0.0);
        assert_eq!(r.percentile_service_time(99.0), 0.0);
    }
}

#[cfg(test)]
mod summary_tests {
    use super::*;

    fn rec(f: &str, kind: StartKind, service: f64) -> RequestRecord {
        RequestRecord {
            function: f.into(),
            arrival: 0.0,
            wait: 0.0,
            init: 0.0,
            load: 0.0,
            compute: service,
            kind,
        }
    }

    #[test]
    fn per_function_aggregates_and_sorts() {
        let report = SimReport {
            system: "t".into(),
            store: None,
            faults: None,
            fleet: None,
            predict: None,
            llm: None,
            prewarms: 0,
            records: vec![
                rec("a", StartKind::Cold, 2.0),
                rec("b", StartKind::Warm, 1.0),
                rec("b", StartKind::Transform, 3.0),
                rec("b", StartKind::Warm, 1.0),
            ],
        };
        let per = report.per_function();
        assert_eq!(per.len(), 2);
        assert_eq!(per[0].function, "b");
        assert_eq!(per[0].requests, 3);
        assert_eq!(per[0].warm, 2);
        assert_eq!(per[0].transform, 1);
        assert!((per[0].avg_service_time() - 5.0 / 3.0).abs() < 1e-12);
        assert_eq!(per[1].cold, 1);
    }

    #[test]
    fn per_function_phase_percentiles_track_constant_phases() {
        // Constant per-phase latencies: the histogram estimator clamps to
        // the observed min/max, so every percentile is exact.
        let records: Vec<RequestRecord> = (0..100)
            .map(|_| RequestRecord {
                function: "f".into(),
                arrival: 0.0,
                wait: 0.5,
                init: 0.25,
                load: 2.0,
                compute: 0.125,
                kind: StartKind::Cold,
            })
            .collect();
        let report = SimReport {
            system: "t".into(),
            store: None,
            faults: None,
            fleet: None,
            predict: None,
            llm: None,
            prewarms: 0,
            records,
        };
        let per = report.per_function();
        let phases = per[0].phases;
        for (got, want) in [
            (phases.wait, 0.5),
            (phases.init, 0.25),
            (phases.load, 2.0),
            (phases.compute, 0.125),
        ] {
            assert_eq!(got.p50, want);
            assert_eq!(got.p95, want);
            assert_eq!(got.p99, want);
        }
    }

    #[test]
    fn csv_has_header_and_rows() {
        let report = SimReport {
            system: "t".into(),
            store: None,
            faults: None,
            fleet: None,
            predict: None,
            llm: None,
            prewarms: 0,
            records: vec![rec("f", StartKind::Cold, 1.5)],
        };
        let csv = report.to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].starts_with("function,arrival"));
        assert!(lines[1].starts_with("f,0,"));
        assert!(lines[1].ends_with(",cold"));
    }
}

#[cfg(test)]
mod slo_tests {
    use super::*;

    #[test]
    fn slo_attainment_counts_threshold() {
        let rec = |s: f64| RequestRecord {
            function: "f".into(),
            arrival: 0.0,
            wait: 0.0,
            init: 0.0,
            load: 0.0,
            compute: s,
            kind: StartKind::Warm,
        };
        let report = SimReport {
            system: "t".into(),
            store: None,
            faults: None,
            fleet: None,
            predict: None,
            llm: None,
            records: vec![rec(0.5), rec(1.5), rec(2.5), rec(0.9)],
            prewarms: 0,
        };
        assert!((report.slo_attainment(1.0) - 0.5).abs() < 1e-12);
        assert_eq!(report.slo_attainment(10.0), 1.0);
        assert_eq!(report.slo_attainment(0.1), 0.0);
        assert_eq!(SimReport::default().slo_attainment(1.0), 1.0);
    }
}
