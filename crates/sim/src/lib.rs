//! # optimus-sim — the serverless ML inference platform simulator
//!
//! A deterministic simulator of the testbed the paper evaluates on (§8.1):
//! worker nodes hosting containers, a gateway routing requests to nodes,
//! per-container keep-alive and idle timers, and the latency composition
//! of Figure 1 — sandbox/runtime initialization, model loading (or
//! transformation), inference computation, plus queueing.
//!
//! Four systems are implemented on the same substrate ([`Policy`]):
//!
//! - **OpenWhisk** — every miss is a full cold start.
//! - **Pagurus** (ATC '22) — inter-function container *sharing*: an idle
//!   container of another function is re-purposed, skipping sandbox and
//!   runtime init, but the model still loads from scratch.
//! - **Tetris** (ATC '22) — tensor sharing: operations identical
//!   (type + shape + weights) to operations resident on the node are
//!   mapped into the new container; everything else loads from scratch.
//! - **Optimus** — inter-function *model transformation*: the §4 pipeline
//!   (cached plans, safeguard, cheapest idle donor) served by
//!   `optimus-core`.
//!
//! Time is virtual (seconds as `f64`); requests are processed in arrival
//! order with full state tracking, which is an exact discrete-event
//! execution for this system because container state only changes at
//! request arrivals and completions, and completions are computable at
//! dispatch time (run-to-completion, no preemption).

mod config;
mod container;
mod metrics;
mod platform;
mod policy;

pub use config::{
    MemoryLimit, PlacementStrategy, PrewarmConfig, SimConfig, DEFAULT_IDLE_THRESHOLD_S,
    DEFAULT_KEEP_ALIVE_S,
};
pub use container::{Container, ContainerState};
pub use metrics::{
    FunctionSummary, PhaseBreakdown, PhasePercentiles, RequestRecord, SimReport, StartKind,
};
pub use platform::Platform;
pub use policy::Policy;

// Re-exported so simulation drivers can configure and read the weight
// store without depending on `optimus-store` directly.
pub use optimus_store::{StoreConfig, StoreStats, TierParams};

// Re-exported so drivers can configure the elastic fleet and read its
// report without depending on `optimus-fleet` directly.
pub use optimus_fleet::{FleetConfig, FleetReport};

// Re-exported so drivers can configure arrival prediction and read its
// report without depending on `optimus-predict` directly.
pub use optimus_predict::{PredictConfig, PredictReport, SpeculationConfig};

// Re-exported so drivers can configure token-level LLM serving and read
// its report without depending on `optimus-llm` directly.
pub use optimus_llm::{LlmConfig, LlmReport};
