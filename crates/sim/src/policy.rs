//! The four compared systems (§8.1).

use serde::{Deserialize, Serialize};

/// Container-management policy of the simulated platform.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Policy {
    /// Full cold start on every miss (the OpenWhisk baseline).
    OpenWhisk,
    /// Inter-function container sharing: re-purpose an idle container
    /// (skip sandbox/runtime init) but load the model from scratch.
    Pagurus,
    /// Tensor sharing: map node-resident identical operations into the new
    /// container; load the remainder from scratch.
    Tetris,
    /// Inter-function model transformation (this paper).
    Optimus,
}

impl Policy {
    /// Display name used in reports.
    pub fn name(self) -> &'static str {
        match self {
            Policy::OpenWhisk => "OpenWhisk",
            Policy::Pagurus => "Pagurus",
            Policy::Tetris => "Tetris",
            Policy::Optimus => "Optimus",
        }
    }

    /// All policies in the paper's presentation order.
    pub const ALL: [Policy; 4] = [
        Policy::OpenWhisk,
        Policy::Pagurus,
        Policy::Tetris,
        Policy::Optimus,
    ];
}

impl std::fmt::Display for Policy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_are_distinct() {
        let names: std::collections::HashSet<_> = Policy::ALL.iter().map(|p| p.name()).collect();
        assert_eq!(names.len(), 4);
        assert_eq!(Policy::Optimus.to_string(), "Optimus");
    }
}
