//! The platform simulator: gateway, nodes, containers, and the four
//! container-management policies.
//!
//! ## Hot-path data layout
//!
//! The per-event loop never touches a `String`: function names are
//! interned once at [`Platform::new`] into dense [`FunctionId`]s (see
//! `optimus_model::Interner`), per-function data lives in a `Vec`
//! indexed by id, containers carry ids, and donor selection runs on
//! `Copy` `(container, id)` pairs through the repository's id-keyed
//! fast paths. Reusable scratch buffers ([`RunState`]) make the steady
//! state of [`Platform::run`] allocation-free.

use std::collections::HashMap;
use std::sync::Arc;

use optimus_core::{scheduler::choose_source_by_id, ModelRepository, PlanChunks};
use optimus_faults::{FaultInjector, FaultKind, FaultReport, FaultStats, RequestFaults};
use optimus_fleet::{
    plan_multicast, remote_only_seconds, Autoscaler, FleetReport, FleetSignals, ScaleDecision,
};
use optimus_llm::{LlmReport, Patch as LlmPatch, TokenEngine};
use optimus_model::signature::OpSignature;
use optimus_model::{FunctionId, InternKey, Interner, ModelGraph, ModelId};
use optimus_predict::{PredictReport, Predictor, SpecCandidate};
use optimus_profile::{CostModel, CostProvider, PlatformProfile};
use optimus_store::{ChunkIndex, ChunkRef, NodeStore, StoreStats};
use optimus_telemetry::{RequestTrace, TelemetrySink};
use optimus_workload::{demand_histogram, Trace};

use crate::config::{MemoryLimit, PlacementStrategy, SimConfig};
use crate::container::{Container, ContainerState};
use crate::metrics::{RequestRecord, SimReport, StartKind};
use crate::policy::Policy;

/// Per-function precomputed data, indexed by [`FunctionId`].
struct FunctionData {
    /// The repository's interned id of this function's model (function
    /// and model ids are separate interner namespaces).
    model_id: ModelId,
    load_cost: f64,
    compute_cost: f64,
    deserialize_cost: f64,
    /// Container memory footprint: model bytes + per-container overhead
    /// (added when a memory limit is configured).
    model_bytes: u64,
    /// `(interned signature, structure+assign cost)` per op — Tetris
    /// sharing input. Signatures are interned to dense `u32`s at build so
    /// the per-event residency check is an array probe, not a hash.
    op_sigs: Vec<(u32, f64)>,
}

/// Precomputed chunkings shared by every node's store (only built when
/// `SimConfig::store` is set).
struct StoreState {
    config: optimus_store::StoreConfig,
    /// Full chunk list per model — what a scratch load admits.
    model_chunks: ChunkIndex<FunctionId>,
    /// `src → dst → plan split` for every cached plan, as a dense
    /// function-count-strided table (`[src * n + dst]`): the payload
    /// chunks a transformation fetches vs. the destination chunks it
    /// reuses or synthesizes in place.
    plan_chunks: Vec<Option<PlanChunks>>,
    /// Union of all cached plans' payload chunks, pinned on every node so
    /// LRU pressure never evicts the bytes cached plans write.
    pinned: Vec<ChunkRef>,
    /// The persisted plan-cache artifact's content-addressed chunks
    /// (`SimConfig::plan_warm`): resident on initial nodes at boot and
    /// shipped to fleet joiners alongside the hot model's weights. Empty
    /// when `plan_warm` is off — every use degenerates to a no-op.
    artifact_chunks: Vec<ChunkRef>,
}

impl StoreState {
    /// Bytes a joiner must additionally receive to warm-load the
    /// persisted plan cache.
    fn artifact_bytes(&self) -> u64 {
        self.artifact_chunks.iter().map(|c| c.bytes).sum()
    }
}

/// Reusable scratch buffers of one [`Platform::run`]: sized once, cleared
/// (or generation-bumped) per event, so the event loop stays
/// allocation-free after warm-up.
struct RunState {
    /// Donor candidates of the current event: `(container index, id)`.
    donors: Vec<(usize, FunctionId)>,
    /// Containers the current event destroyed, as `(function, was a
    /// speculated container)` — for chunk release and misprediction
    /// accounting.
    evicted: Vec<(FunctionId, bool)>,
    /// Tetris residency marks: signature `s` is resident on the current
    /// node iff `sig_mark[s] == sig_gen`. Bumping the generation clears
    /// the whole set in O(1) instead of rebuilding a `HashSet` per event.
    sig_mark: Vec<u64>,
    sig_gen: u64,
    /// Prewarm-schedule keys due at the current arrival.
    due: Vec<(u64, FunctionId)>,
    /// Function indices whose speculative transform is due at the current
    /// arrival.
    spec_due: Vec<usize>,
}

impl RunState {
    fn new(sig_count: usize) -> Self {
        RunState {
            donors: Vec::new(),
            evicted: Vec::new(),
            sig_mark: vec![0; sig_count],
            sig_gen: 0,
            due: Vec::new(),
            spec_due: Vec::new(),
        }
    }
}

/// Per-run fault-injection state (only built when `SimConfig::faults` is
/// set, so the fault-free hot path carries no extra work).
struct FaultCtx {
    injector: FaultInjector,
    stats: FaultStats,
    /// Worst observed `(init + load) − cold_equivalent` over all
    /// Optimus-served requests; `NEG_INFINITY` until the first audit.
    max_over_cold: f64,
    /// Per-node recovery deadline; a node is down while `now <
    /// down_until[node]`.
    down_until: Vec<f64>,
    /// Transform work wasted before a mid-flight failure is detected,
    /// clamped to `cold_init − repurpose_overhead` so an escalated
    /// request can never exceed its cold-start equivalent.
    abort: f64,
}

/// One in-flight scale-out wave: joiners still provisioning/warming and
/// the replica holders that can seed a re-planned transfer tree.
struct Wave {
    /// Hot function whose model the wave distributes.
    f: FunctionId,
    /// `(node, ready time)` of joiners not yet activated.
    pending: Vec<(usize, f64)>,
    /// Nodes holding the chunk set (seeds plus already-activated
    /// joiners) — replan sources if a crash interrupts the tree.
    sources: Vec<usize>,
    /// Virtual time the wave was planned (time-to-all-warm origin).
    started: f64,
}

/// Per-run elastic-fleet state (only built when `SimConfig::fleet` is
/// set, so the static-fleet path carries no extra work and stays
/// byte-identical).
struct FleetRt {
    autoscaler: Autoscaler,
    /// Whether each node slot is claimed by the fleet (serving or
    /// provisioning); unclaimed slots are available to the next
    /// scale-out.
    active: Vec<bool>,
    /// Time each node can serve from: `NEG_INFINITY` for the initial
    /// fleet, the provisioning+warming deadline for joiners, `INFINITY`
    /// for unclaimed slots.
    ready_at: Vec<f64>,
    /// Completion time of the last request each node served (the
    /// scale-in idle-window input).
    last_busy: Vec<f64>,
    waves: Vec<Wave>,
    report: FleetReport,
    /// Store statistics of scaled-in nodes, merged into the run total so
    /// draining a node never loses its hit/miss history.
    drained: StoreStats,
}

/// Per-run arrival-prediction state (only built when `SimConfig::predict`
/// is set, so the reactive path carries no extra work and stays
/// byte-identical).
struct PredictRt {
    predictor: Predictor,
    /// Per-function keep-alive windows. Initialized to (and, under an
    /// inert config or before any history, bit-exactly equal to)
    /// `config.keep_alive`; refreshed after each arrival from the
    /// predictor's tail cutoff.
    windows: Vec<f64>,
    report: PredictReport,
}

/// Token-level serving state (present when `SimConfig::llm` is set):
/// the continuous-batching engine plus the accounting the final
/// [`LlmReport`] summarizes. Patches produced by a join (revised finish
/// and first-token times for sequences already recorded) are drained
/// into `records` after each arrival — record indices are the engine's
/// request keys.
struct LlmRt {
    engine: TokenEngine,
    /// Re-projections pending application to already-pushed records.
    pending: Vec<LlmPatch>,
    /// Final time-to-first-token per record index (patched in place).
    ttfts: Vec<f64>,
    requests: u64,
    joins: u64,
    tokens: u64,
    peak_batch: u64,
}

impl LlmRt {
    fn note(&mut self, adm: &optimus_llm::Admission, arrival: f64, tokens: usize, joined: bool) {
        self.ttfts.push(adm.first_token - arrival);
        self.requests += 1;
        self.tokens += tokens as u64;
        self.joins += u64::from(joined);
        self.peak_batch = self.peak_batch.max(adm.batch_size as u64);
    }
}

/// Count containers destroyed while still flagged speculated: each one is
/// a speculation that never served a request — a misprediction.
fn note_evicted_speculations(evicted: &[(FunctionId, bool)], predict: &mut Option<&mut PredictRt>) {
    if let Some(pr) = predict.as_deref_mut() {
        pr.report.spec_mispredictions += evicted.iter().filter(|&&(_, spec)| spec).count() as u64;
    }
}

/// A donor container is being retargeted to another function before any
/// request used it: if it was speculated, that speculation missed.
fn note_retarget(c: &mut Container, predict: &mut Option<&mut PredictRt>) {
    if c.speculated {
        c.speculated = false;
        if let Some(pr) = predict.as_deref_mut() {
            pr.report.spec_mispredictions += 1;
        }
    }
}

/// Internal request record carrying the interned function id; converted
/// to the public string-keyed [`RequestRecord`] once at the end of a run.
struct RawRecord {
    function: FunctionId,
    arrival: f64,
    wait: f64,
    init: f64,
    load: f64,
    compute: f64,
    kind: StartKind,
}

impl RawRecord {
    fn service_time(&self) -> f64 {
        self.wait + self.init + self.load + self.compute
    }
}

/// The simulated serverless ML inference platform.
pub struct Platform {
    config: SimConfig,
    policy: Policy,
    repo: Arc<ModelRepository>,
    profile: PlatformProfile,
    /// Function-name symbol table; [`FunctionId`]s index `functions`.
    interner: Interner<FunctionId>,
    functions: Vec<FunctionData>,
    /// Number of distinct interned op signatures (sizes the Tetris
    /// residency-mark buffer).
    sig_count: usize,
    /// Optional telemetry sink: every simulated request is exported as a
    /// [`RequestTrace`], the same schema and metric names the live
    /// gateway produces, so simulator runs and live serving are directly
    /// comparable.
    sink: Option<Arc<dyn TelemetrySink>>,
    /// Content-addressed store chunkings (when `SimConfig::store` is set).
    store: Option<StoreState>,
}

impl Platform {
    /// Build a platform running `policy` over the models registered in
    /// `repo`.
    ///
    /// Every function that later appears in a trace must already be
    /// registered in the repository (its model defines load and compute
    /// costs).
    pub fn new(config: SimConfig, policy: Policy, repo: Arc<ModelRepository>) -> Self {
        assert!(config.nodes > 0, "need at least one node");
        assert!(config.capacity_per_node > 0, "need container capacity");
        let cost = CostModel::new(config.env);
        let profile = PlatformProfile::new(config.env);
        // `model_names` is sorted, so id assignment is deterministic.
        let names = repo.model_names();
        let mut interner: Interner<FunctionId> = Interner::new();
        let mut functions = Vec::with_capacity(names.len());
        let mut sig_ids: HashMap<OpSignature, u32> = HashMap::new();
        for name in &names {
            let model = repo.model(name).expect("listed model exists");
            let op_sigs = model
                .ops()
                .map(|(_, op)| {
                    let sig = OpSignature::of(op);
                    let next = sig_ids.len() as u32;
                    let sid = *sig_ids.entry(sig).or_insert(next);
                    (
                        sid,
                        cost.structure_cost(&op.attrs) + cost.assign_cost(&op.attrs),
                    )
                })
                .collect();
            let fid = interner.resolve(name);
            debug_assert_eq!(fid.index(), functions.len(), "dense id assignment");
            functions.push(FunctionData {
                model_id: repo.model_id(name).expect("registered model has an id"),
                load_cost: cost.model_load_cost(&model),
                compute_cost: profile.compute_cost(&model),
                deserialize_cost: cost.deserialize_cost(&model),
                model_bytes: model.byte_size() as u64,
                op_sigs,
            });
        }
        let sig_count = sig_ids.len();
        let store = config.store.map(|sc| {
            sc.validate().expect("store config must be valid");
            let n = functions.len();
            let mut model_chunks = ChunkIndex::new();
            let mut plan_chunks: Vec<Option<PlanChunks>> = Vec::new();
            plan_chunks.resize_with(n * n, || None);
            for src in 0..n {
                let sfid = FunctionId::from_index(src);
                let model = repo
                    .model(interner.name(sfid))
                    .expect("listed model exists");
                model_chunks.insert(sfid, optimus_store::model_chunks(&model, sc.chunk_bytes));
                for dst in 0..n {
                    plan_chunks[src * n + dst] = repo.plan_chunks_by_id(
                        functions[src].model_id,
                        functions[dst].model_id,
                        sc.chunk_bytes,
                    );
                }
            }
            let artifact_chunks = if config.plan_warm {
                repo.export_plan_artifact().chunks(sc.chunk_bytes)
            } else {
                Vec::new()
            };
            StoreState {
                config: sc,
                model_chunks,
                plan_chunks,
                pinned: repo.plan_referenced_chunks(sc.chunk_bytes),
                artifact_chunks,
            }
        });
        Platform {
            config,
            policy,
            repo,
            profile,
            interner,
            functions,
            sig_count,
            sink: None,
            store,
        }
    }

    /// Build a platform directly from a model catalog: constructs a
    /// repository with the linear-time group planner, bulk-registers the
    /// catalog (parallel offline planning via
    /// [`ModelRepository::register_all`]), and wraps it in a platform.
    pub fn with_catalog(config: SimConfig, policy: Policy, models: Vec<ModelGraph>) -> Self {
        let repo = ModelRepository::new(Box::new(optimus_core::GroupPlanner));
        let cost = CostModel::new(config.env);
        repo.register_all(models, &cost);
        Platform::new(config, policy, Arc::new(repo))
    }

    /// Export every simulated request through `sink` (e.g. an
    /// [`optimus_telemetry::MetricsSink`], so a run fills the same
    /// counter/histogram families as the live gateway, or a
    /// [`optimus_telemetry::JsonlSink`] for per-request traces).
    pub fn with_sink(mut self, sink: Arc<dyn TelemetrySink>) -> Self {
        self.sink = Some(sink);
        self
    }

    /// The policy this platform runs.
    pub fn policy(&self) -> Policy {
        self.policy
    }

    /// Compute the function→node placement for a trace.
    pub fn placement(&self, trace: &Trace) -> HashMap<String, usize> {
        let names = trace.functions();
        let points: Vec<optimus_balance::FunctionPoint> = names
            .iter()
            .map(|n| optimus_balance::FunctionPoint {
                name: n.clone(),
                demand: demand_histogram(trace, n, self.config.demand_slot),
            })
            .collect();
        let assignment = match self.config.placement {
            PlacementStrategy::SharingAware { gamma_d, gamma_k } => {
                let balancer = optimus_balance::SharingAwareBalancer { gamma_d, gamma_k };
                let repo = self.repo.clone();
                let edit =
                    move |a: &str, b: &str| repo.transform_latency(a, b).unwrap_or(f64::MAX / 4.0);
                balancer.place(&points, &edit, self.config.nodes)
            }
            PlacementStrategy::Hash => optimus_balance::hash_placement(&points, self.config.nodes),
            PlacementStrategy::LeastLoaded => {
                optimus_balance::least_loaded_placement(&points, self.config.nodes)
            }
        };
        names.into_iter().zip(assignment).collect()
    }

    /// Run a trace to completion and report per-request latencies.
    ///
    /// # Panics
    ///
    /// Panics when the trace invokes a function not registered in the
    /// repository.
    pub fn run(&self, trace: &Trace) -> SimReport {
        // Resolve every invocation to an interned id once; the event loop
        // below is string-free.
        let fids = trace
            .lookup_function_ids(&self.interner)
            .unwrap_or_else(|name| panic!("function '{name}' not registered in the repository"));
        // Function → node placement as a dense table indexed by id.
        let mut placement = vec![usize::MAX; self.functions.len()];
        for (name, node) in self.placement(trace) {
            let fid = self
                .interner
                .get(&name)
                .expect("placed function is registered");
            placement[fid.index()] = node;
        }
        // With an elastic fleet the node table is sized to the scaling
        // ceiling up front; slots past the initial fleet hold no store
        // until a scale-out provisions them. `total_nodes == config.nodes`
        // when the fleet is off, so the static path is untouched.
        let total_nodes = self
            .config
            .fleet
            .as_ref()
            .map_or(self.config.nodes, |fc| fc.max_nodes.max(self.config.nodes));
        let mut nodes: Vec<NodeState> = (0..total_nodes)
            .map(|i| {
                let mut node = NodeState::default();
                if i < self.config.nodes {
                    if let Some(ss) = &self.store {
                        let mut store = NodeStore::new(ss.config);
                        store.pin(&ss.pinned);
                        // Boot-time warm load of the persisted plan cache
                        // (empty unless `plan_warm`): the artifact is
                        // already on node disk/memory, not re-planned.
                        store.warm(&ss.artifact_chunks);
                        node.store = Some(store);
                    }
                }
                node
            })
            .collect();
        let mut fleet = self.config.fleet.as_ref().map(|fc| {
            let mut active = vec![false; total_nodes];
            let mut ready_at = vec![f64::INFINITY; total_nodes];
            for n in 0..self.config.nodes {
                active[n] = true;
                ready_at[n] = f64::NEG_INFINITY;
            }
            FleetRt {
                autoscaler: Autoscaler::new(*fc),
                active,
                ready_at,
                last_busy: vec![f64::NEG_INFINITY; total_nodes],
                waves: Vec::new(),
                report: FleetReport {
                    peak_nodes: self.config.nodes,
                    ..FleetReport::default()
                },
                drained: StoreStats::default(),
            }
        });
        let mut next_id: u64 = 0;
        let mut records: Vec<RequestRecord> = Vec::with_capacity(trace.len());
        let mut state = RunState::new(self.sig_count);
        let mut faults = self.config.faults.as_ref().map(|plan| {
            plan.validate().expect("fault plan must be valid");
            FaultCtx {
                injector: FaultInjector::new(plan),
                stats: FaultStats::default(),
                max_over_cold: f64::NEG_INFINITY,
                down_until: vec![f64::NEG_INFINITY; total_nodes],
                abort: plan
                    .spec
                    .transform_abort_seconds
                    .min((self.profile.cold_init() - self.profile.repurpose_overhead).max(0.0)),
            }
        });
        let mut predict = self.config.predict.map(|pc| {
            pc.validate().expect("predict config must be valid");
            PredictRt {
                predictor: Predictor::new(pc, self.functions.len()),
                windows: vec![self.config.keep_alive; self.functions.len()],
                report: PredictReport::default(),
            }
        });
        let mut llm = self.config.llm.map(|lc| {
            lc.validate().expect("llm config must be valid");
            LlmRt {
                engine: TokenEngine::new(lc),
                pending: Vec::new(),
                ttfts: Vec::with_capacity(trace.len()),
                requests: 0,
                joins: 0,
                tokens: 0,
                peak_batch: 0,
            }
        });
        // Prewarming state: per-function arrival history and the pending
        // proactive-transform schedule, kept time-ordered. NaN marks "no
        // gap observed yet".
        let mut history: Vec<(usize, f64)> = vec![(0, 0.0); self.functions.len()];
        let mut mean_gap: Vec<f64> = vec![f64::NAN; self.functions.len()];
        let mut schedule: std::collections::BTreeMap<(u64, FunctionId), f64> =
            std::collections::BTreeMap::new();
        let mut prewarms = 0usize;
        let mut seq: u64 = 0;
        for (req_index, (inv, &f)) in trace.invocations.iter().zip(&fids).enumerate() {
            // Execute due proactive transforms before this arrival.
            if self.config.prewarm.is_some() {
                state.due.clear();
                state.due.extend(
                    schedule
                        .iter()
                        .filter(|(_, &t)| t <= inv.time)
                        .map(|(&k, _)| k),
                );
                for i in 0..state.due.len() {
                    let key = state.due[i];
                    let at = schedule.remove(&key).expect("key present");
                    let node_idx = placement[key.1.index()];
                    // A down node cannot run a proactive transform.
                    if faults
                        .as_ref()
                        .is_some_and(|fc| fc.down_until[node_idx] > at)
                    {
                        continue;
                    }
                    let mut p = predict.as_mut();
                    if self.prewarm(&mut nodes[node_idx], &mut state, at, key.1, &mut p) {
                        prewarms += 1;
                    }
                }
            }
            // Execute due speculative transforms before this arrival. The
            // arriving function itself is left to the reactive path (its
            // band stays armed), so speculation only ever runs *ahead* of
            // a predicted arrival.
            if let Some(pr) = predict.as_mut() {
                if pr.predictor.config().speculation.is_some() {
                    state.spec_due.clear();
                    pr.predictor.due_speculations(
                        inv.time,
                        |c| c != f.index(),
                        &mut state.spec_due,
                    );
                    for i in 0..state.spec_due.len() {
                        let tf = FunctionId::from_index(state.spec_due[i]);
                        let node_idx = placement[tf.index()];
                        // A down node cannot run a speculative transform.
                        if faults
                            .as_ref()
                            .is_some_and(|fc| fc.down_until[node_idx] > inv.time)
                        {
                            pr.report.spec_skipped += 1;
                            continue;
                        }
                        self.speculate(&mut nodes[node_idx], &mut state, pr, inv.time, tf);
                    }
                }
            }
            let home = placement[f.index()];
            let mut node_idx = home;
            let mut start_at = inv.time;
            let mut fx = RequestFaults::none();
            if let Some(fc) = faults.as_mut() {
                // Apply scheduled node-level events that have become due.
                // `due` borrows the injector, so copy the (rare) events out
                // before mutating node state through `fc` below.
                let due: Vec<_> = fc.injector.due(inv.time).to_vec();
                for ev in due {
                    if ev.node >= nodes.len() {
                        continue;
                    }
                    match ev.kind {
                        FaultKind::NodeCrash => {
                            let mut p = predict.as_mut();
                            Self::crash_node(&mut nodes[ev.node], fc, ev.node, ev.at, &mut p);
                            if let Some(fl) = fleet.as_mut() {
                                self.fleet_on_crash(fl, &nodes, &fc.down_until, ev.node, ev.at);
                            }
                        }
                        FaultKind::ContainerKill => {
                            if let Some(victim) = lru_any(&nodes[ev.node]) {
                                let mut p = predict.as_mut();
                                self.kill_container(&mut nodes[ev.node], fc, victim, &mut p);
                            }
                        }
                    }
                }
                fx = fc.injector.for_request(req_index as u64);
                if fx.node_crash {
                    let mut p = predict.as_mut();
                    Self::crash_node(&mut nodes[home], fc, home, inv.time, &mut p);
                    if let Some(fl) = fleet.as_mut() {
                        self.fleet_on_crash(fl, &nodes, &fc.down_until, home, inv.time);
                    }
                }
                if fleet.is_none() {
                    // Degraded-mode routing: skip down nodes; when the
                    // whole fleet is down, queue on the first node to
                    // recover.
                    let routed = optimus_balance::failover_node(
                        home,
                        self.config.nodes,
                        |n| fc.down_until[n] <= inv.time,
                        |n| nodes[n].containers.len() as f64,
                    );
                    match routed {
                        Some(n) => node_idx = n,
                        None => {
                            let n = (0..self.config.nodes)
                                .min_by(|&a, &b| {
                                    fc.down_until[a]
                                        .partial_cmp(&fc.down_until[b])
                                        .expect("finite deadline")
                                        .then(a.cmp(&b))
                                })
                                .expect("nodes > 0");
                            node_idx = n;
                            start_at = fc.down_until[n];
                        }
                    }
                    if node_idx != home {
                        fc.stats.reroutes += 1;
                    }
                }
            }
            if let Some(fl) = fleet.as_mut() {
                let mut p = predict.as_mut();
                self.fleet_step(
                    fl,
                    &mut nodes,
                    &mut state,
                    faults.as_ref(),
                    inv.time,
                    f,
                    home,
                    &mut p,
                );
                // Elastic routing: a saturated (or down) home spills onto
                // the least-loaded warm node of the active fleet.
                let home_down = faults
                    .as_ref()
                    .is_some_and(|fc| fc.down_until[home] > inv.time);
                let routed = optimus_balance::spill_node(
                    home,
                    nodes.len(),
                    |n| {
                        fl.active[n]
                            && fl.ready_at[n] <= inv.time
                            && !faults
                                .as_ref()
                                .is_some_and(|fc| fc.down_until[n] > inv.time)
                    },
                    |n| {
                        nodes[n].containers.len() >= self.config.capacity_per_node
                            && !nodes[n].containers.iter().any(|c| c.busy_until <= inv.time)
                    },
                    |n| nodes[n].containers.len() as f64,
                );
                match routed {
                    Some(n) => node_idx = n,
                    None => {
                        // Every usable node is down: queue on the first
                        // active node to recover (mirrors the static path).
                        let fc = faults
                            .as_ref()
                            .expect("only faults can down the whole fleet");
                        let n = (0..nodes.len())
                            .filter(|&n| fl.active[n] && fl.ready_at[n] <= inv.time)
                            .min_by(|&a, &b| {
                                fc.down_until[a]
                                    .partial_cmp(&fc.down_until[b])
                                    .expect("finite deadline")
                                    .then(a.cmp(&b))
                            })
                            .expect("the initial fleet is always active");
                        node_idx = n;
                        start_at = fc.down_until[n];
                    }
                }
                if node_idx != home && home_down {
                    if let Some(fc) = faults.as_mut() {
                        fc.stats.reroutes += 1;
                    }
                }
            }
            let raw = self.serve(
                &mut nodes[node_idx],
                &mut state,
                &mut next_id,
                inv.time,
                start_at,
                f,
                &fx,
                faults.as_mut(),
                predict.as_mut(),
                llm.as_mut(),
                req_index as u64,
            );
            if let Some(fl) = fleet.as_mut() {
                let done = raw.arrival + raw.service_time();
                if done > fl.last_busy[node_idx] {
                    fl.last_busy[node_idx] = done;
                }
            }
            if let Some(sink) = &self.sink {
                sink.record(&trace_of(&raw, self.interner.name(f), node_idx));
            }
            // The one unavoidable allocation per request: the public
            // record schema carries the function name as a `String`.
            records.push(RequestRecord {
                function: self.interner.name(raw.function).to_string(),
                arrival: raw.arrival,
                wait: raw.wait,
                init: raw.init,
                load: raw.load,
                compute: raw.compute,
                kind: raw.kind,
            });
            // Apply continuous-batching re-projections: a join slows the
            // iterations of sequences quoted under the smaller batch, so
            // their recorded decode time (and, if still prefilling, their
            // first token) moves. The decode loop starts once init + load
            // finish — `arrival + wait + init + load` is already in the
            // record (init and load are zero for warm starts and joins),
            // so the patch needs no side table.
            if let Some(lr) = llm.as_mut() {
                for p in lr.pending.drain(..) {
                    let idx = p.req as usize;
                    let r = &mut records[idx];
                    r.compute = p.finish - (r.arrival + r.wait + r.init + r.load);
                    lr.ttfts[idx] = p.first_token - r.arrival;
                }
            }
            // Feed the arrival predictor and refresh the function's
            // adaptive keep-alive window.
            if let Some(pr) = predict.as_mut() {
                pr.predictor.observe(f.index(), inv.time);
                pr.report.observed_arrivals += 1;
                let w = pr.predictor.keep_alive(f.index(), self.config.keep_alive);
                pr.windows[f.index()] = w;
                pr.report.window_seconds_sum += w;
                pr.report.window_samples += 1;
            }
            // Update the prewarm predictor and schedule the next prewarm.
            if let Some(cfg) = self.config.prewarm {
                let (count, last) = history[f.index()];
                if count > 0 {
                    let gap = inv.time - last;
                    let m = &mut mean_gap[f.index()];
                    *m = if m.is_nan() {
                        gap
                    } else {
                        0.7 * *m + 0.3 * gap
                    };
                }
                history[f.index()] = (count + 1, inv.time);
                if count + 1 >= cfg.min_history {
                    let m = mean_gap[f.index()];
                    if !m.is_nan() {
                        let at = (inv.time + m - cfg.lead).max(inv.time);
                        seq += 1;
                        schedule.insert((seq, f), at);
                    }
                }
            }
        }
        if let Some(sink) = &self.sink {
            sink.flush();
        }
        let store = self.store.as_ref().map(|_| {
            let mut agg = StoreStats::default();
            if let Some(fl) = &fleet {
                agg.merge(&fl.drained);
            }
            for node in &nodes {
                if let Some(store) = &node.store {
                    agg.merge(&store.stats());
                }
            }
            agg
        });
        let faults = faults.map(|fc| FaultReport {
            stats: fc.stats,
            max_over_cold: if fc.max_over_cold.is_finite() {
                fc.max_over_cold
            } else {
                0.0
            },
        });
        SimReport {
            system: self.policy.name().to_string(),
            records,
            prewarms,
            store,
            faults,
            fleet: fleet.map(|fl| fl.report),
            predict: predict.map(|pr| pr.report),
            llm: llm.map(|lr| {
                LlmReport::summarize(lr.requests, lr.joins, lr.tokens, lr.peak_batch, &lr.ttfts)
            }),
        }
    }

    /// Crash a node at time `at`: every container is lost, the store's
    /// volatile tiers are wiped, and the node stays down until
    /// `at + recovery_seconds`. Idempotent while the node is already down.
    fn crash_node(
        node: &mut NodeState,
        fc: &mut FaultCtx,
        node_idx: usize,
        at: f64,
        predict: &mut Option<&mut PredictRt>,
    ) {
        if fc.down_until[node_idx] > at {
            return;
        }
        fc.down_until[node_idx] = at + fc.injector.spec().recovery_seconds;
        fc.stats.node_crashes += 1;
        fc.stats.crash_container_evictions += node.containers.len() as u64;
        if let Some(pr) = predict.as_deref_mut() {
            pr.report.spec_mispredictions +=
                node.containers.iter().filter(|c| c.speculated).count() as u64;
        }
        node.containers.clear();
        if let Some(store) = node.store.as_mut() {
            store.crash();
        }
    }

    /// One elastic-fleet control step, run before routing each arrival:
    /// activate joiners whose provisioning finished, drain idle extras,
    /// and feed the autoscaler the current slot-pressure signals (scaling
    /// out when it fires). Every decision is a pure function of observed
    /// virtual-time state — no wall clock, no randomness — so runs stay
    /// byte-identical under any thread count.
    #[allow(clippy::too_many_arguments)]
    fn fleet_step(
        &self,
        fl: &mut FleetRt,
        nodes: &mut [NodeState],
        state: &mut RunState,
        faults: Option<&FaultCtx>,
        now: f64,
        f: FunctionId,
        home: usize,
        predict: &mut Option<&mut PredictRt>,
    ) {
        // 1. Activate joiners whose provisioning + warm transfer is done:
        //    provision the node store and place the wave's chunk set at
        //    node memory (the bytes were priced by the transfer plan).
        for w in 0..fl.waves.len() {
            let mut i = 0;
            while i < fl.waves[w].pending.len() {
                let (n, ready) = fl.waves[w].pending[i];
                if ready > now {
                    i += 1;
                    continue;
                }
                fl.waves[w].pending.swap_remove(i);
                if let Some(ss) = &self.store {
                    let mut store = NodeStore::new(ss.config);
                    store.pin(&ss.pinned);
                    if let Some(chunks) = ss.model_chunks.get(fl.waves[w].f) {
                        store.warm(chunks);
                    }
                    // The plan-cache artifact rode the same transfer
                    // (empty unless `plan_warm`).
                    store.warm(&ss.artifact_chunks);
                    nodes[n].store = Some(store);
                }
                fl.waves[w].sources.push(n);
                fl.last_busy[n] = ready;
                fl.report.nodes_added += 1;
            }
        }
        fl.waves.retain(|w| !w.pending.is_empty());
        // 2. Scale-in: an extra node whose idle window elapsed and whose
        //    containers all aged out of keep-alive drains back out of the
        //    fleet (its store statistics are preserved in `drained`).
        for n in self.config.nodes..nodes.len() {
            if !fl.active[n] || fl.ready_at[n] > now {
                continue;
            }
            self.evict_expired(&mut nodes[n], state, now, predict);
            if nodes[n].containers.is_empty() && fl.autoscaler.scale_in_ready(now, fl.last_busy[n])
            {
                fl.active[n] = false;
                fl.ready_at[n] = f64::INFINITY;
                if let Some(store) = nodes[n].store.take() {
                    fl.drained.merge(&store.stats());
                }
                fl.report.scale_ins += 1;
                fl.report.nodes_removed += 1;
            }
        }
        // 3. Autoscaler signals: busy slots over the ready fleet's
        //    capacity, queue depth proxied by home-node saturation.
        let mut ready_nodes = 0usize;
        let mut busy = 0usize;
        for (n, node) in nodes.iter().enumerate() {
            if fl.active[n] && fl.ready_at[n] <= now {
                ready_nodes += 1;
                busy += node
                    .containers
                    .iter()
                    .filter(|c| c.busy_until > now)
                    .count();
            }
        }
        let home_full = nodes[home].containers.len() >= self.config.capacity_per_node
            && !nodes[home].containers.iter().any(|c| c.busy_until <= now);
        // Predictive scale-out signal: arrivals the predictor forecasts
        // within the provisioning horizon count as demand, so the fleet
        // can grow *before* the queue builds. 0 with prediction off —
        // the reactive pressure bit-for-bit.
        let predicted = predict.as_deref().map_or(0, |pr| {
            pr.predictor
                .predicted_arrivals(now, fl.autoscaler.config().provision_s)
        });
        let signals = FleetSignals {
            active_nodes: fl.active.iter().filter(|&&a| a).count(),
            busy_slots: busy,
            total_slots: ready_nodes * self.config.capacity_per_node,
            queued: usize::from(home_full),
            predicted,
        };
        if signals.active_nodes > fl.report.peak_nodes {
            fl.report.peak_nodes = signals.active_nodes;
        }
        let ScaleDecision::ScaleOut(k) = fl.autoscaler.observe(now, &signals) else {
            return;
        };
        // 4. Claim the lowest-index free slots and plan their warm-up;
        //    the triggering function's model is the hot set to distribute.
        let joiners: Vec<usize> = (self.config.nodes..nodes.len())
            .filter(|&n| !fl.active[n] && !faults.is_some_and(|fc| fc.down_until[n] > now))
            .take(k)
            .collect();
        if joiners.is_empty() {
            return;
        }
        for &n in &joiners {
            fl.active[n] = true;
        }
        fl.report.scale_outs += 1;
        let base = now + fl.autoscaler.config().provision_s;
        // Joiners receive the persisted plan cache alongside the hot
        // model's weights (0 extra bytes unless `plan_warm`).
        let bytes = self.functions[f.index()].model_bytes
            + self.store.as_ref().map_or(0, |ss| ss.artifact_bytes());
        let mut pending: Vec<(usize, f64)> = Vec::with_capacity(joiners.len());
        let mut sources: Vec<usize> = Vec::new();
        let mut all_warm = fl.autoscaler.config().provision_s;
        match &self.store {
            Some(ss) if fl.autoscaler.config().multicast => {
                // P2P multicast: seed from every ready node holding the
                // full chunk set locally; joiners warm in O(log N) rounds
                // over the interconnect.
                let chunks = ss.model_chunks.get(f);
                let seeds: Vec<usize> = nodes
                    .iter()
                    .enumerate()
                    .filter(|&(n, node)| {
                        fl.active[n]
                            && fl.ready_at[n] <= now
                            && !faults.is_some_and(|fc| fc.down_until[n] > now)
                            && node
                                .store
                                .as_ref()
                                .zip(chunks)
                                .is_some_and(|(s, c)| s.estimate(c).remote_bytes == 0)
                    })
                    .map(|(n, _)| n)
                    .collect();
                let plan = plan_multicast(
                    &seeds,
                    &joiners,
                    bytes,
                    ss.config.interconnect,
                    ss.config.remote,
                );
                for &(n, off) in &plan.warm_at {
                    pending.push((n, base + off));
                    fl.ready_at[n] = base + off;
                }
                fl.report.multicast_waves += 1;
                fl.report.multicast_rounds += plan.rounds() as u64;
                fl.report.multicast_bytes += plan.peer_bytes;
                fl.report.remote_warm_bytes += plan.remote_bytes;
                all_warm += plan.total_seconds;
                sources = seeds;
            }
            Some(ss) => {
                // Remote-only baseline: every joiner fetches the model
                // from the origin over its shared egress link (linear).
                for (i, &n) in joiners.iter().enumerate() {
                    let ready = base + remote_only_seconds(i + 1, bytes, ss.config.remote);
                    pending.push((n, ready));
                    fl.ready_at[n] = ready;
                }
                fl.report.remote_warm_bytes += bytes * joiners.len() as u64;
                all_warm += remote_only_seconds(joiners.len(), bytes, ss.config.remote);
            }
            None => {
                // No store: joiners are ready after bare provisioning.
                for &n in &joiners {
                    pending.push((n, base));
                    fl.ready_at[n] = base;
                }
            }
        }
        if all_warm > fl.report.time_to_all_warm {
            fl.report.time_to_all_warm = all_warm;
        }
        fl.waves.push(Wave {
            f,
            pending,
            sources,
            started: now,
        });
    }

    /// A node crashed: un-claim it from any in-flight wave and, when it
    /// was seeding a multicast, re-root the transfer tree from the
    /// surviving replica holders — requests keep flowing, only the plan
    /// is redone (the planner being a pure function keeps this
    /// deterministic).
    fn fleet_on_crash(
        &self,
        fl: &mut FleetRt,
        nodes: &[NodeState],
        down_until: &[f64],
        crashed: usize,
        at: f64,
    ) {
        for w in 0..fl.waves.len() {
            let was_pending = fl.waves[w].pending.iter().any(|&(n, _)| n == crashed);
            if was_pending {
                // The joiner died mid-provision: it never activates and
                // its slot becomes claimable again once it recovers.
                fl.waves[w].pending.retain(|&(n, _)| n != crashed);
                fl.active[crashed] = false;
                fl.ready_at[crashed] = f64::INFINITY;
            }
            let was_source = fl.waves[w].sources.contains(&crashed);
            fl.waves[w].sources.retain(|&n| n != crashed);
            if !was_source || fl.waves[w].pending.is_empty() {
                continue;
            }
            let Some(ss) = &self.store else { continue };
            if !fl.autoscaler.config().multicast {
                continue;
            }
            // Re-root: replan the outstanding transfers from replicas
            // that survived (falling back to one origin injection when
            // the crash wiped every replica).
            let bytes = self.functions[fl.waves[w].f.index()].model_bytes + ss.artifact_bytes();
            let chunks = ss.model_chunks.get(fl.waves[w].f);
            let seeds: Vec<usize> = fl.waves[w]
                .sources
                .iter()
                .copied()
                .filter(|&n| {
                    down_until[n] <= at
                        && nodes[n]
                            .store
                            .as_ref()
                            .zip(chunks)
                            .is_some_and(|(s, c)| s.estimate(c).remote_bytes == 0)
                })
                .collect();
            let joiners: Vec<usize> = fl.waves[w].pending.iter().map(|&(n, _)| n).collect();
            let plan = plan_multicast(
                &seeds,
                &joiners,
                bytes,
                ss.config.interconnect,
                ss.config.remote,
            );
            for &(n, off) in &plan.warm_at {
                for p in fl.waves[w].pending.iter_mut() {
                    if p.0 == n {
                        p.1 = at + off;
                    }
                }
                fl.ready_at[n] = at + off;
            }
            fl.report.reroots += 1;
            fl.report.multicast_rounds += plan.rounds() as u64;
            fl.report.multicast_bytes += plan.peer_bytes;
            fl.report.remote_warm_bytes += plan.remote_bytes;
            let all_warm = at + plan.total_seconds - fl.waves[w].started;
            if all_warm > fl.report.time_to_all_warm {
                fl.report.time_to_all_warm = all_warm;
            }
        }
        fl.waves.retain(|w| !w.pending.is_empty());
    }

    /// Kill one container (OOM-killer stand-in), releasing its model's
    /// chunk references back into the store.
    fn kill_container(
        &self,
        node: &mut NodeState,
        fc: &mut FaultCtx,
        victim: usize,
        predict: &mut Option<&mut PredictRt>,
    ) {
        let f = node.containers[victim].function;
        if node.containers[victim].speculated {
            if let Some(pr) = predict.as_deref_mut() {
                pr.report.spec_mispredictions += 1;
            }
        }
        node.containers.swap_remove(victim);
        if let (Some(ss), Some(store)) = (&self.store, node.store.as_mut()) {
            if let Some(chunks) = ss.model_chunks.get(f) {
                store.release(chunks);
            }
        }
        fc.stats.container_kills += 1;
    }

    /// Transport seconds of the dst-model bytes missing on the node right
    /// now — the cold-start equivalent the safeguard audit compares
    /// against (0 without a store).
    fn store_estimate(&self, node: &NodeState, f: FunctionId) -> f64 {
        let (Some(ss), Some(store)) = (&self.store, node.store.as_ref()) else {
            return 0.0;
        };
        ss.model_chunks
            .get(f)
            .map_or(0.0, |chunks| store.estimate(chunks).seconds)
    }

    /// Release the chunk references of containers that stopped holding the
    /// given functions' models (keep-alive expiry or slot eviction).
    fn store_release(&self, node: &mut NodeState, evicted: &[(FunctionId, bool)]) {
        let (Some(ss), Some(store)) = (&self.store, node.store.as_mut()) else {
            return;
        };
        for &(f, _) in evicted {
            if let Some(chunks) = ss.model_chunks.get(f) {
                store.release(chunks);
            }
        }
    }

    /// Evict keep-alive-expired containers, releasing their chunks. With
    /// prediction on, each container is judged against its function's
    /// adaptive window (bit-identical to the global constant until the
    /// predictor has history) and destroyed speculated containers count
    /// as mispredictions.
    fn evict_expired(
        &self,
        node: &mut NodeState,
        state: &mut RunState,
        now: f64,
        predict: &mut Option<&mut PredictRt>,
    ) {
        state.evicted.clear();
        match predict.as_deref() {
            Some(pr) => node.evict_expired_windows(now, &pr.windows, &mut state.evicted),
            None => node.evict_expired(now, self.config.keep_alive, &mut state.evicted),
        }
        note_evicted_speculations(&state.evicted, predict);
        self.store_release(node, &state.evicted);
    }

    /// [`NodeState::free_slot`] plus chunk release for every container it
    /// destroyed (even when it ultimately fails for lack of a free victim).
    fn free_slot(
        &self,
        node: &mut NodeState,
        state: &mut RunState,
        needed: u64,
        now: f64,
        predict: &mut Option<&mut PredictRt>,
    ) -> Option<()> {
        state.evicted.clear();
        let ok = node.free_slot(
            self.config.capacity_per_node,
            self.config.memory,
            needed,
            now,
            &mut state.evicted,
        );
        note_evicted_speculations(&state.evicted, predict);
        self.store_release(node, &state.evicted);
        ok.then_some(())
    }

    /// A container starts holding `f` via a scratch load: admit the
    /// model's full chunk list and return the transport seconds for the
    /// bytes missing at each tier (0 without a store).
    fn store_admit(&self, node: &mut NodeState, f: FunctionId) -> f64 {
        let (Some(ss), Some(store)) = (&self.store, node.store.as_mut()) else {
            return 0.0;
        };
        ss.model_chunks
            .get(f)
            .map_or(0.0, |chunks| store.admit(chunks).seconds)
    }

    /// A donor holding `src` is repurposed into `dst`. With a cached plan
    /// (`transform == true`) only the plan's payload chunks are admitted
    /// (priced) while the reused remainder is synthesized in place from
    /// source content; a scratch repurpose admits the full model. The
    /// destination is admitted *before* the source is released, so chunks
    /// the two models share stay at container tier and cost nothing.
    fn store_repurpose(
        &self,
        node: &mut NodeState,
        src: FunctionId,
        dst: FunctionId,
        transform: bool,
    ) -> f64 {
        let (Some(ss), Some(store)) = (&self.store, node.store.as_mut()) else {
            return 0.0;
        };
        let n = self.functions.len();
        let split = transform
            .then(|| ss.plan_chunks[src.index() * n + dst.index()].as_ref())
            .flatten();
        let seconds = match split {
            Some(pc) => {
                let cost = store.admit(&pc.fetched);
                store.produce(&pc.reused);
                cost.seconds
            }
            None => ss
                .model_chunks
                .get(dst)
                .map_or(0.0, |chunks| store.admit(chunks).seconds),
        };
        if let Some(chunks) = ss.model_chunks.get(src) {
            store.release(chunks);
        }
        seconds
    }

    /// Read-only preview of [`Platform::store_repurpose`] with a cached
    /// plan: the transport seconds the payload fetch would pay right now
    /// (0 without a store). The speculation cost gate prices a candidate
    /// with this before any store state is mutated; because nothing moves
    /// between the estimate and the admit, the executed cost equals it.
    fn store_repurpose_estimate(&self, node: &NodeState, src: FunctionId, dst: FunctionId) -> f64 {
        let (Some(ss), Some(store)) = (&self.store, node.store.as_ref()) else {
            return 0.0;
        };
        let n = self.functions.len();
        match ss.plan_chunks[src.index() * n + dst.index()].as_ref() {
            Some(pc) => store.estimate(&pc.fetched).seconds,
            None => ss
                .model_chunks
                .get(dst)
                .map_or(0.0, |chunks| store.estimate(chunks).seconds),
        }
    }

    /// Proactively transform an idle donor into `f` at time `at` so the
    /// predicted next request warm-starts. Returns whether a transformation
    /// was performed. Only donors past the idle threshold are used, and the
    /// safeguard still applies — prewarming never loads from scratch
    /// speculatively.
    fn prewarm(
        &self,
        node: &mut NodeState,
        state: &mut RunState,
        at: f64,
        f: FunctionId,
        predict: &mut Option<&mut PredictRt>,
    ) -> bool {
        self.evict_expired(node, state, at, predict);
        if node.warm_free(f, at).is_some() {
            return false; // already warm
        }
        let need = self.footprint(f);
        state.donors.clear();
        for (i, c) in node.containers.iter().enumerate() {
            if c.function != f && c.state(at, self.config.idle_threshold) == ContainerState::Idle {
                state.donors.push((i, c.function));
            }
        }
        state
            .donors
            .retain(|&(ci, _)| node.repurpose_fits(ci, need, self.config.memory));
        let choice = choose_source_by_id(
            &self.repo,
            state
                .donors
                .iter()
                .map(|&(ci, src)| (ci, self.functions[src.index()].model_id)),
            self.functions[f.index()].model_id,
        );
        if let Some(choice) = choice {
            let ci = choice.container;
            let src = node.containers[ci].function;
            let transport = self.store_repurpose(node, src, f, true);
            let c = &mut node.containers[ci];
            note_retarget(c, predict);
            c.function = f;
            c.mem_bytes = need;
            // The container is busy while the proactive transform runs;
            // last_routed stays untouched so the container still reads as
            // idle-donatable if the prediction was wrong.
            c.busy_until = at + self.profile.repurpose_overhead + choice.latency + transport;
            true
        } else {
            false
        }
    }

    /// Execute one speculative transformation for predicted-hot `f` at
    /// time `at`: convert the cheapest idle donor toward it, but only
    /// when the cost-model gate admits the candidate — the speculation
    /// must be cheaper than the cold start it would replace (the hard
    /// budget bounding any misprediction), and its confidence-weighted
    /// expected saving must beat the expected misprediction waste.
    fn speculate(
        &self,
        node: &mut NodeState,
        state: &mut RunState,
        pr: &mut PredictRt,
        at: f64,
        f: FunctionId,
    ) {
        let cfg = *pr.predictor.config();
        let Some(spec) = cfg.speculation else { return };
        let Some(forecast) = pr.predictor.forecast(f.index()) else {
            pr.report.spec_skipped += 1;
            return;
        };
        {
            let mut p = Some(&mut *pr);
            self.evict_expired(node, state, at, &mut p);
        }
        if node.warm_free(f, at).is_some() {
            pr.report.spec_skipped += 1; // already warm: nothing to gain
            return;
        }
        let need = self.footprint(f);
        state.donors.clear();
        for (i, c) in node.containers.iter().enumerate() {
            if c.function != f && c.state(at, self.config.idle_threshold) == ContainerState::Idle {
                state.donors.push((i, c.function));
            }
        }
        state
            .donors
            .retain(|&(ci, _)| node.repurpose_fits(ci, need, self.config.memory));
        let data = &self.functions[f.index()];
        let choice = choose_source_by_id(
            &self.repo,
            state
                .donors
                .iter()
                .map(|&(ci, src)| (ci, self.functions[src.index()].model_id)),
            data.model_id,
        );
        let Some(choice) = choice else {
            pr.report.spec_skipped += 1; // no idle donor with a plan
            return;
        };
        let ci = choice.container;
        let src = node.containers[ci].function;
        let candidate = SpecCandidate {
            spec_cost: self.profile.repurpose_overhead
                + choice.latency
                + self.store_repurpose_estimate(node, src, f),
            cold_cost: self.profile.cold_init() + data.load_cost + self.store_estimate(node, f),
            confidence: forecast.confidence,
        };
        if !candidate.admit(spec.aggressiveness) {
            pr.report.spec_skipped += 1;
            return;
        }
        let transport = self.store_repurpose(node, src, f, true);
        let c = &mut node.containers[ci];
        if c.speculated {
            // The donor was itself an unused speculation for another
            // function: that earlier guess missed.
            pr.report.spec_mispredictions += 1;
        }
        c.function = f;
        c.mem_bytes = need;
        // Busy while the speculative transform runs; last_routed stays
        // untouched so a wrong guess leaves the container donatable.
        let cost = self.profile.repurpose_overhead + choice.latency + transport;
        c.busy_until = at + cost;
        c.speculated = true;
        pr.report.speculations += 1;
        pr.report.spec_cost_seconds += cost;
        // Executed cost vs. the cold start replaced: the gate guarantees
        // this stays negative, and the first sample seeds the maximum so
        // the default 0.0 never masks a (negative) true worst case.
        let over = cost - candidate.cold_cost;
        if pr.report.speculations == 1 || over > pr.report.max_spec_over_budget {
            pr.report.max_spec_over_budget = over;
        }
    }

    /// Container footprint of a function under the configured memory limit.
    fn footprint(&self, f: FunctionId) -> u64 {
        let model = self.functions[f.index()].model_bytes;
        match &self.config.memory {
            Some(m) => model + m.container_overhead,
            None => 0,
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn serve(
        &self,
        node: &mut NodeState,
        state: &mut RunState,
        next_id: &mut u64,
        arrival: f64,
        start_at: f64,
        f: FunctionId,
        fx: &RequestFaults,
        mut faults: Option<&mut FaultCtx>,
        mut predict: Option<&mut PredictRt>,
        mut llm: Option<&mut LlmRt>,
        req: u64,
    ) -> RawRecord {
        let mut now = start_at.max(arrival);
        self.evict_expired(node, state, now, &mut predict);
        // Injected container kill on the routed node: one warm container
        // dies (chunks released) just before the request is served.
        if fx.container_kill && !node.containers.is_empty() {
            if let Some(fc) = faults.as_deref_mut() {
                let victim = fx.victim_index(node.containers.len());
                self.kill_container(node, fc, victim, &mut predict);
            }
        }
        let compute = self.functions[f.index()].compute_cost;
        loop {
            // 1. Warm start: a free container already holds the model.
            if let Some(ci) = node.warm_free(f, now) {
                let c = &mut node.containers[ci];
                if c.speculated {
                    // A speculative transform paid off: this request warm-
                    // starts instead of paying init + load.
                    c.speculated = false;
                    if let Some(pr) = predict.as_deref_mut() {
                        let data = &self.functions[f.index()];
                        pr.report.spec_hits += 1;
                        pr.report.spec_saved_seconds += self.profile.cold_init() + data.load_cost;
                    }
                }
                if let Some(lr) = llm.as_deref_mut() {
                    // Token-level serving: the warm container starts a
                    // fresh decode loop immediately (no init, no load).
                    let id = c.id;
                    let n = lr.engine.config().decode_tokens(req);
                    let bytes = self.functions[f.index()].model_bytes;
                    let adm = lr.engine.begin(id, bytes, now, req, n);
                    lr.note(&adm, arrival, n, false);
                    let c = &mut node.containers[ci];
                    c.route(now, adm.batch_busy_until);
                    return RawRecord {
                        function: f,
                        arrival,
                        wait: now - arrival,
                        init: 0.0,
                        load: 0.0,
                        compute: adm.finish - adm.admitted_at,
                        kind: StartKind::Warm,
                    };
                }
                c.route(now, now + compute);
                return RawRecord {
                    function: f,
                    arrival,
                    wait: now - arrival,
                    init: 0.0,
                    load: 0.0,
                    compute,
                    kind: StartKind::Warm,
                };
            }
            // 1b. Continuous batching: no free container, but a *busy*
            // container decoding this same model admits new sequences at
            // its next iteration boundary (Orca-style iteration-level
            // scheduling) — the request shares the per-iteration weight
            // sweep instead of waiting for the loop to drain or paying a
            // cold start. Deterministic pick: the smallest live batch,
            // ties to the lowest container index.
            if let Some(lr) = llm.as_deref_mut() {
                let mut best: Option<(usize, usize)> = None;
                for ci in 0..node.containers.len() {
                    let c = node.containers[ci];
                    if c.function == f {
                        if let Some(b) = lr.engine.joinable(c.id, now) {
                            if best.is_none_or(|(bb, _)| b < bb) {
                                best = Some((b, ci));
                            }
                        }
                    }
                }
                if let Some((_, ci)) = best {
                    let id = node.containers[ci].id;
                    let n = lr.engine.config().decode_tokens(req);
                    let (adm, patches) = lr.engine.join(id, now, req, n);
                    lr.pending.extend(patches);
                    lr.note(&adm, arrival, n, true);
                    let c = &mut node.containers[ci];
                    c.route(now, adm.batch_busy_until);
                    return RawRecord {
                        function: f,
                        arrival,
                        wait: adm.admitted_at - arrival,
                        init: 0.0,
                        load: 0.0,
                        compute: adm.finish - adm.admitted_at,
                        kind: StartKind::Warm,
                    };
                }
            }
            // Snapshot the cold-start transport equivalent *before* the
            // policy mutates store state, so the safeguard audit below
            // compares against the same store the request actually saw.
            let cold_est = if faults.is_some() && matches!(self.policy, Policy::Optimus) {
                self.store_estimate(node, f)
            } else {
                0.0
            };
            // 2. Obtain a container by the policy.
            if let Some((ci, init, load, kind)) =
                self.try_start(node, state, next_id, now, f, fx, &mut faults, &mut predict)
            {
                // Safeguard-under-failure audit (§6.3): the startup this
                // request actually paid must never exceed what a cold
                // start of the same request would have paid under the
                // same injected faults.
                if let Some(fc) = faults.as_deref_mut() {
                    if matches!(self.policy, Policy::Optimus) {
                        let data = &self.functions[f.index()];
                        let cold_equiv = self.profile.cold_init()
                            + data.load_cost * fx.load_multiplier()
                            + fx.transport_seconds(cold_est);
                        fc.max_over_cold = fc.max_over_cold.max(init + load - cold_equiv);
                    }
                }
                if let Some(lr) = llm.as_deref_mut() {
                    // The decode loop starts once init + load finish. A
                    // later arrival may still join its first iteration —
                    // `begin` registers the batch at the future start, so
                    // joiners during the load share the prefill sweep.
                    let exec_start = now + init + load;
                    let id = node.containers[ci].id;
                    let n = lr.engine.config().decode_tokens(req);
                    let bytes = self.functions[f.index()].model_bytes;
                    let adm = lr.engine.begin(id, bytes, exec_start, req, n);
                    lr.note(&adm, arrival, n, false);
                    node.containers[ci].busy_until = adm.batch_busy_until;
                    return RawRecord {
                        function: f,
                        arrival,
                        wait: now - arrival,
                        init,
                        load,
                        compute: adm.finish - exec_start,
                        kind,
                    };
                }
                let total = init + load + compute;
                // try_start created/re-purposed the container at index
                // `ci`; set its busy window.
                node.containers[ci].busy_until = now + total;
                return RawRecord {
                    function: f,
                    arrival,
                    wait: now - arrival,
                    init,
                    load,
                    compute,
                    kind,
                };
            }
            // 3. Everything is busy: advance to the next completion.
            let tmin = node
                .containers
                .iter()
                .map(|c| c.busy_until)
                .fold(f64::INFINITY, f64::min);
            debug_assert!(tmin.is_finite(), "full node must have busy containers");
            now = tmin.max(now + 1e-9);
        }
    }

    /// Try to obtain a container for `f` at `now`. On success the
    /// container exists in `node` with `function == f` and
    /// `last_routed == now`; returns `(container index, init, load, kind)`.
    ///
    /// Fault math is applied unconditionally through `fx`: with no faults
    /// `fx` is the identity element ([`RequestFaults::none`]), whose
    /// `×1.0`/`+0.0` arithmetic is bit-exact, so fault-free runs stay
    /// byte-identical to a build without the fault layer.
    #[allow(clippy::too_many_arguments)]
    fn try_start(
        &self,
        node: &mut NodeState,
        state: &mut RunState,
        next_id: &mut u64,
        now: f64,
        f: FunctionId,
        fx: &RequestFaults,
        faults: &mut Option<&mut FaultCtx>,
        predict: &mut Option<&mut PredictRt>,
    ) -> Option<(usize, f64, f64, StartKind)> {
        let data = &self.functions[f.index()];
        let idle_thr = self.config.idle_threshold;
        match self.policy {
            Policy::OpenWhisk => {
                let need = self.footprint(f);
                self.free_slot(node, state, need, now, predict)?;
                let ci = node.spawn(next_id, f, now, need);
                let transport = faulted_transport(self.store_admit(node, f), fx, faults);
                note_load_faults(fx, faults);
                Some((
                    ci,
                    self.profile.cold_init(),
                    data.load_cost * fx.load_multiplier() + transport,
                    StartKind::Cold,
                ))
            }
            Policy::Pagurus => {
                // Prefer an idle donor of another function: skip sandbox
                // and runtime init, reload the model from scratch. "Help
                // rather than recycle": when the node is full, the
                // container a cold start would evict is re-purposed
                // directly instead of being destroyed.
                let need = self.footprint(f);
                let donor = node
                    .idle_donor(f, now, idle_thr)
                    .or_else(|| {
                        node.eviction_victim(
                            self.config.capacity_per_node,
                            self.config.memory,
                            need,
                            now,
                        )
                    })
                    .filter(|&ci| node.repurpose_fits(ci, need, self.config.memory));
                if let Some(ci) = donor {
                    let src = node.containers[ci].function;
                    let transport =
                        faulted_transport(self.store_repurpose(node, src, f, false), fx, faults);
                    note_load_faults(fx, faults);
                    let c = &mut node.containers[ci];
                    note_retarget(c, predict);
                    c.function = f;
                    c.mem_bytes = need;
                    c.route(now, now); // busy window set by caller
                    return Some((
                        ci,
                        self.profile.repurpose_overhead,
                        data.load_cost * fx.load_multiplier() + transport,
                        StartKind::Transform,
                    ));
                }
                self.free_slot(node, state, need, now, predict)?;
                let ci = node.spawn(next_id, f, now, need);
                let transport = faulted_transport(self.store_admit(node, f), fx, faults);
                note_load_faults(fx, faults);
                Some((
                    ci,
                    self.profile.cold_init(),
                    data.load_cost * fx.load_multiplier() + transport,
                    StartKind::Cold,
                ))
            }
            Policy::Tetris => {
                // Tensor sharing: resident ops on the node are mapped, the
                // rest load from scratch; the runtime address space maps
                // from any existing container. Residency is marked before
                // eviction, matching "maps from any existing container".
                let need = self.footprint(f);
                let had_containers = !node.containers.is_empty();
                state.sig_gen += 1;
                let gen = state.sig_gen;
                for c in &node.containers {
                    for &(sig, _) in &self.functions[c.function.index()].op_sigs {
                        state.sig_mark[sig as usize] = gen;
                    }
                }
                self.free_slot(node, state, need, now, predict)?;
                let mut load = data.deserialize_cost;
                let mut shared = 0usize;
                for &(sig, cost) in &data.op_sigs {
                    if state.sig_mark[sig as usize] == gen {
                        load += self.config.tetris_map_per_op;
                        shared += 1;
                    } else {
                        load += cost;
                    }
                }
                let (init, kind) = if had_containers {
                    (
                        self.config.tetris_init,
                        if shared > 0 {
                            StartKind::Transform
                        } else {
                            StartKind::Cold
                        },
                    )
                } else {
                    (self.profile.cold_init(), StartKind::Cold)
                };
                let ci = node.spawn(next_id, f, now, need);
                let transport = faulted_transport(self.store_admit(node, f), fx, faults);
                note_load_faults(fx, faults);
                Some((ci, init, load * fx.load_multiplier() + transport, kind))
            }
            Policy::Optimus => {
                // Cheapest idle donor via the cached plans + safeguard.
                // When the node is full, the container a cold start would
                // evict is also a donor candidate ("help rather than
                // recycle"): transforming it strictly dominates destroying
                // it and paying init + scratch load.
                state.donors.clear();
                for (i, c) in node.containers.iter().enumerate() {
                    if c.function != f && c.state(now, idle_thr) == ContainerState::Idle {
                        state.donors.push((i, c.function));
                    }
                }
                let need = self.footprint(f);
                if state.donors.is_empty() {
                    if let Some(ci) = node.eviction_victim(
                        self.config.capacity_per_node,
                        self.config.memory,
                        need,
                        now,
                    ) {
                        state.donors.push((ci, node.containers[ci].function));
                    }
                }
                state
                    .donors
                    .retain(|&(ci, _)| node.repurpose_fits(ci, need, self.config.memory));
                let choice = choose_source_by_id(
                    &self.repo,
                    state
                        .donors
                        .iter()
                        .map(|&(ci, src)| (ci, self.functions[src.index()].model_id)),
                    data.model_id,
                );
                if let Some(choice) = choice {
                    let ci = choice.container;
                    let src = node.containers[ci].function;
                    // Injected mid-flight transform failure: the safeguard
                    // escalates to a from-scratch load into the same
                    // donor, paying the (clamped) aborted-work cost on top
                    // — never more than a cold start would have.
                    if fx.transform_failure {
                        let abort = faults.as_deref().map_or(0.0, |fc| fc.abort);
                        if let Some(fc) = faults.as_deref_mut() {
                            fc.stats.transform_failures += 1;
                            fc.stats.safeguard_escalations += 1;
                        }
                        let transport = faulted_transport(
                            self.store_repurpose(node, src, f, false),
                            fx,
                            faults,
                        );
                        note_load_faults(fx, faults);
                        let c = &mut node.containers[ci];
                        note_retarget(c, predict);
                        c.function = f;
                        c.mem_bytes = need;
                        c.route(now, now);
                        return Some((
                            ci,
                            self.profile.repurpose_overhead,
                            abort + data.load_cost * fx.load_multiplier() + transport,
                            StartKind::Transform,
                        ));
                    }
                    let transport =
                        faulted_transport(self.store_repurpose(node, src, f, true), fx, faults);
                    let c = &mut node.containers[ci];
                    note_retarget(c, predict);
                    c.function = f;
                    c.mem_bytes = need;
                    c.route(now, now);
                    return Some((
                        ci,
                        self.profile.repurpose_overhead,
                        choice.latency + transport,
                        StartKind::Transform,
                    ));
                }
                // Safeguard path: an idle donor exists but no plan beats a
                // scratch load — re-purpose Pagurus-style.
                if let Some(&(ci, src)) = state.donors.first() {
                    let transport =
                        faulted_transport(self.store_repurpose(node, src, f, false), fx, faults);
                    note_load_faults(fx, faults);
                    let c = &mut node.containers[ci];
                    note_retarget(c, predict);
                    c.function = f;
                    c.mem_bytes = need;
                    c.route(now, now);
                    return Some((
                        ci,
                        self.profile.repurpose_overhead,
                        data.load_cost * fx.load_multiplier() + transport,
                        StartKind::Transform,
                    ));
                }
                self.free_slot(node, state, need, now, predict)?;
                let ci = node.spawn(next_id, f, now, need);
                let transport = faulted_transport(self.store_admit(node, f), fx, faults);
                note_load_faults(fx, faults);
                Some((
                    ci,
                    self.profile.cold_init(),
                    data.load_cost * fx.load_multiplier() + transport,
                    StartKind::Cold,
                ))
            }
        }
    }
}

/// Apply the request's fetch faults to a transport latency and count what
/// was injected. With `fx == RequestFaults::none()` this is the bit-exact
/// identity on `base`, so the fault-free path is unperturbed.
fn faulted_transport(base: f64, fx: &RequestFaults, faults: &mut Option<&mut FaultCtx>) -> f64 {
    if base > 0.0 {
        if let Some(fc) = faults.as_deref_mut() {
            if fx.is_straggler() {
                fc.stats.fetch_stragglers += 1;
            }
            fc.stats.fetch_retries += u64::from(fx.fetch_retries());
        }
    }
    fx.transport_seconds(base)
}

/// Count the corrupt-checkpoint reloads a scratch load performed (the
/// caller applies [`RequestFaults::load_multiplier`] to the load cost).
fn note_load_faults(fx: &RequestFaults, faults: &mut Option<&mut FaultCtx>) {
    if fx.load_reloads > 0 {
        if let Some(fc) = faults.as_deref_mut() {
            fc.stats.load_corruptions += u64::from(fx.load_reloads);
        }
    }
}

/// Least-recently-routed container of a node, busy or not — the
/// deterministic victim of a scheduled container kill.
fn lru_any(node: &NodeState) -> Option<usize> {
    node.containers
        .iter()
        .enumerate()
        .min_by(|(_, a), (_, b)| {
            a.last_routed
                .partial_cmp(&b.last_routed)
                .expect("finite")
                .then(a.id.cmp(&b.id))
        })
        .map(|(i, _)| i)
}

/// A simulated request as the shared telemetry schema.
///
/// Simulated durations stand in for measured ones; `total` equals the
/// service time because simulated requests have no unattributed
/// wall-clock. Plan-cache outcomes are counted inside
/// `ModelRepository::decide`, which the simulator shares with the live
/// path, so they are not duplicated per trace here.
fn trace_of(record: &RawRecord, function: &str, node: usize) -> RequestTrace {
    RequestTrace {
        function: function.to_string(),
        node,
        kind: match record.kind {
            StartKind::Warm => optimus_telemetry::StartKind::Warm,
            StartKind::Cold => optimus_telemetry::StartKind::Cold,
            StartKind::Transform => optimus_telemetry::StartKind::Transform,
        },
        wait: record.wait,
        init: record.init,
        load: record.load,
        compute: record.compute,
        total: record.service_time(),
        transform_steps: 0,
        plan_cache_hit: None,
    }
}

/// Containers of one node.
#[derive(Default)]
struct NodeState {
    containers: Vec<Container>,
    /// Content-addressed chunk residency of this node (when the sim runs
    /// with a store).
    store: Option<NodeStore>,
}

impl NodeState {
    /// Drop keep-alive-expired containers; pushes `(function, speculated)`
    /// of each destroyed container into `evicted` so the caller can
    /// release chunks and account mispredictions.
    fn evict_expired(&mut self, now: f64, keep_alive: f64, evicted: &mut Vec<(FunctionId, bool)>) {
        self.containers.retain(|c| {
            if c.expired(now, keep_alive) {
                evicted.push((c.function, c.speculated));
                false
            } else {
                true
            }
        });
    }

    /// Like [`NodeState::evict_expired`] but with a per-function
    /// keep-alive window table (the arrival predictor's adaptive
    /// windows).
    fn evict_expired_windows(
        &mut self,
        now: f64,
        windows: &[f64],
        evicted: &mut Vec<(FunctionId, bool)>,
    ) {
        self.containers.retain(|c| {
            if c.expired(now, windows[c.function.index()]) {
                evicted.push((c.function, c.speculated));
                false
            } else {
                true
            }
        });
    }

    /// Index of a free container already holding `f`, preferring the most
    /// recently used (deterministic tie-break by id).
    fn warm_free(&self, f: FunctionId, now: f64) -> Option<usize> {
        self.containers
            .iter()
            .enumerate()
            .filter(|(_, c)| c.function == f && c.busy_until <= now)
            .max_by(|(_, a), (_, b)| {
                a.last_routed
                    .partial_cmp(&b.last_routed)
                    .expect("finite")
                    .then(a.id.cmp(&b.id))
            })
            .map(|(i, _)| i)
    }

    /// Longest-idle donor container of another function.
    fn idle_donor(&self, f: FunctionId, now: f64, idle_threshold: f64) -> Option<usize> {
        self.containers
            .iter()
            .enumerate()
            .filter(|(_, c)| {
                c.function != f && c.state(now, idle_threshold) == ContainerState::Idle
            })
            .max_by(|(_, a), (_, b)| {
                (now - a.last_routed)
                    .partial_cmp(&(now - b.last_routed))
                    .expect("finite")
                    .then(b.id.cmp(&a.id))
            })
            .map(|(i, _)| i)
    }

    /// Total container memory currently resident on this node.
    fn mem_used(&self) -> u64 {
        self.containers.iter().map(|c| c.mem_bytes).sum()
    }

    /// Whether a new container of `needed` bytes fits within both the slot
    /// count and the optional memory budget.
    fn fits(&self, capacity: usize, memory: Option<MemoryLimit>, needed: u64) -> bool {
        if self.containers.len() >= capacity {
            return false;
        }
        match memory {
            Some(m) => self.mem_used() + needed <= m.node_bytes,
            None => true,
        }
    }

    /// Whether re-purposing container `ci` for a model of `needed` bytes
    /// stays within the memory budget (§6: "container resources may be
    /// insufficient" — a small container cannot always host a large model).
    fn repurpose_fits(&self, ci: usize, needed: u64, memory: Option<MemoryLimit>) -> bool {
        match memory {
            Some(m) => self.mem_used() - self.containers[ci].mem_bytes + needed <= m.node_bytes,
            None => true,
        }
    }

    fn lru_free(&self, now: f64) -> Option<usize> {
        self.containers
            .iter()
            .enumerate()
            .filter(|(_, c)| c.busy_until <= now)
            .min_by(|(_, a), (_, b)| {
                a.last_routed
                    .partial_cmp(&b.last_routed)
                    .expect("finite")
                    .then(a.id.cmp(&b.id))
            })
            .map(|(i, _)| i)
    }

    /// The container a cold start would evict: the least-recently-routed
    /// non-busy container, but only when the node cannot fit a new
    /// container. Donor candidate for the "help rather than recycle" path.
    fn eviction_victim(
        &self,
        capacity: usize,
        memory: Option<MemoryLimit>,
        needed: u64,
        now: f64,
    ) -> Option<usize> {
        if self.fits(capacity, memory, needed) {
            return None;
        }
        self.lru_free(now)
    }

    /// Ensure a new container of `needed` bytes fits: free capacity, or
    /// evict least-recently-routed non-busy containers until it does.
    /// Returns whether it now fits (false when the remaining containers
    /// are all busy), and pushes the function of every container destroyed
    /// into `evicted` — even on failure, so the caller can release their
    /// chunks.
    fn free_slot(
        &mut self,
        capacity: usize,
        memory: Option<MemoryLimit>,
        needed: u64,
        now: f64,
        evicted: &mut Vec<(FunctionId, bool)>,
    ) -> bool {
        while !self.fits(capacity, memory, needed) {
            let Some(victim) = self.lru_free(now) else {
                return false;
            };
            let c = &self.containers[victim];
            evicted.push((c.function, c.speculated));
            self.containers.swap_remove(victim);
        }
        true
    }

    /// Create a new container for `f` with the given memory footprint;
    /// returns its index. `busy_until` is patched by the caller once
    /// init+load+compute are known.
    fn spawn(&mut self, next_id: &mut u64, f: FunctionId, now: f64, mem_bytes: u64) -> usize {
        let id = *next_id;
        *next_id += 1;
        let mut c = Container::new(id, f, now, now);
        c.mem_bytes = mem_bytes;
        self.containers.push(c);
        self.containers.len() - 1
    }
}
