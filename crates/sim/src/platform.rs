//! The platform simulator: gateway, nodes, containers, and the four
//! container-management policies.

use std::collections::HashMap;
use std::sync::Arc;

use optimus_core::{scheduler::choose_source, ModelRepository, PlanChunks};
use optimus_model::signature::OpSignature;
use optimus_model::ModelGraph;
use optimus_profile::{CostModel, CostProvider, PlatformProfile};
use optimus_store::{ChunkRef, NodeStore, StoreStats};
use optimus_telemetry::{RequestTrace, TelemetrySink};
use optimus_workload::{demand_histogram, Trace};

use crate::config::{MemoryLimit, PlacementStrategy, SimConfig};
use crate::container::{Container, ContainerState};
use crate::metrics::{RequestRecord, SimReport, StartKind};
use crate::policy::Policy;

/// Per-function precomputed data.
struct FunctionData {
    load_cost: f64,
    compute_cost: f64,
    deserialize_cost: f64,
    /// Container memory footprint: model bytes + per-container overhead
    /// (added when a memory limit is configured).
    model_bytes: u64,
    /// `(signature, structure+assign cost)` per op — Tetris sharing input.
    op_costs: Vec<(OpSignature, f64)>,
}

/// Precomputed chunkings shared by every node's store (only built when
/// `SimConfig::store` is set).
struct StoreState {
    config: optimus_store::StoreConfig,
    /// Full chunk list per model — what a scratch load admits.
    model_chunks: HashMap<String, Vec<ChunkRef>>,
    /// `src → dst → plan split` for every cached plan: the payload chunks
    /// a transformation fetches vs. the destination chunks it reuses or
    /// synthesizes in place.
    plan_chunks: HashMap<String, HashMap<String, PlanChunks>>,
    /// Union of all cached plans' payload chunks, pinned on every node so
    /// LRU pressure never evicts the bytes cached plans write.
    pinned: Vec<ChunkRef>,
}

/// The simulated serverless ML inference platform.
pub struct Platform {
    config: SimConfig,
    policy: Policy,
    repo: Arc<ModelRepository>,
    profile: PlatformProfile,
    functions: HashMap<String, FunctionData>,
    /// Optional telemetry sink: every simulated request is exported as a
    /// [`RequestTrace`], the same schema and metric names the live
    /// gateway produces, so simulator runs and live serving are directly
    /// comparable.
    sink: Option<Arc<dyn TelemetrySink>>,
    /// Content-addressed store chunkings (when `SimConfig::store` is set).
    store: Option<StoreState>,
}

impl Platform {
    /// Build a platform running `policy` over the models registered in
    /// `repo`.
    ///
    /// Every function that later appears in a trace must already be
    /// registered in the repository (its model defines load and compute
    /// costs).
    pub fn new(config: SimConfig, policy: Policy, repo: Arc<ModelRepository>) -> Self {
        assert!(config.nodes > 0, "need at least one node");
        assert!(config.capacity_per_node > 0, "need container capacity");
        let cost = CostModel::new(config.env);
        let profile = PlatformProfile::new(config.env);
        let mut functions = HashMap::new();
        for name in repo.model_names() {
            let model = repo.model(&name).expect("listed model exists");
            let op_costs = model
                .ops()
                .map(|(_, op)| {
                    (
                        OpSignature::of(op),
                        cost.structure_cost(&op.attrs) + cost.assign_cost(&op.attrs),
                    )
                })
                .collect();
            functions.insert(
                name.clone(),
                FunctionData {
                    load_cost: cost.model_load_cost(&model),
                    compute_cost: profile.compute_cost(&model),
                    deserialize_cost: cost.deserialize_cost(&model),
                    model_bytes: model.byte_size() as u64,
                    op_costs,
                },
            );
        }
        let store = config.store.map(|sc| {
            sc.validate().expect("store config must be valid");
            let mut model_chunks = HashMap::new();
            let mut plan_chunks: HashMap<String, HashMap<String, PlanChunks>> = HashMap::new();
            let names = repo.model_names();
            for src in &names {
                let model = repo.model(src).expect("listed model exists");
                model_chunks.insert(
                    src.clone(),
                    optimus_store::model_chunks(&model, sc.chunk_bytes),
                );
                for dst in &names {
                    if let Some(pc) = repo.plan_chunks(src, dst, sc.chunk_bytes) {
                        plan_chunks
                            .entry(src.clone())
                            .or_default()
                            .insert(dst.clone(), pc);
                    }
                }
            }
            StoreState {
                config: sc,
                model_chunks,
                plan_chunks,
                pinned: repo.plan_referenced_chunks(sc.chunk_bytes),
            }
        });
        Platform {
            config,
            policy,
            repo,
            profile,
            functions,
            sink: None,
            store,
        }
    }

    /// Build a platform directly from a model catalog: constructs a
    /// repository with the linear-time group planner, bulk-registers the
    /// catalog (parallel offline planning via
    /// [`ModelRepository::register_all`]), and wraps it in a platform.
    pub fn with_catalog(config: SimConfig, policy: Policy, models: Vec<ModelGraph>) -> Self {
        let repo = ModelRepository::new(Box::new(optimus_core::GroupPlanner));
        let cost = CostModel::new(config.env);
        repo.register_all(models, &cost);
        Platform::new(config, policy, Arc::new(repo))
    }

    /// Export every simulated request through `sink` (e.g. an
    /// [`optimus_telemetry::MetricsSink`], so a run fills the same
    /// counter/histogram families as the live gateway, or a
    /// [`optimus_telemetry::JsonlSink`] for per-request traces).
    pub fn with_sink(mut self, sink: Arc<dyn TelemetrySink>) -> Self {
        self.sink = Some(sink);
        self
    }

    /// The policy this platform runs.
    pub fn policy(&self) -> Policy {
        self.policy
    }

    /// Compute the function→node placement for a trace.
    pub fn placement(&self, trace: &Trace) -> HashMap<String, usize> {
        let names = trace.functions();
        let points: Vec<optimus_balance::FunctionPoint> = names
            .iter()
            .map(|n| optimus_balance::FunctionPoint {
                name: n.clone(),
                demand: demand_histogram(trace, n, self.config.demand_slot),
            })
            .collect();
        let assignment = match self.config.placement {
            PlacementStrategy::SharingAware { gamma_d, gamma_k } => {
                let balancer = optimus_balance::SharingAwareBalancer { gamma_d, gamma_k };
                let repo = self.repo.clone();
                let edit =
                    move |a: &str, b: &str| repo.transform_latency(a, b).unwrap_or(f64::MAX / 4.0);
                balancer.place(&points, &edit, self.config.nodes)
            }
            PlacementStrategy::Hash => optimus_balance::hash_placement(&points, self.config.nodes),
            PlacementStrategy::LeastLoaded => {
                optimus_balance::least_loaded_placement(&points, self.config.nodes)
            }
        };
        names.into_iter().zip(assignment).collect()
    }

    /// Run a trace to completion and report per-request latencies.
    ///
    /// # Panics
    ///
    /// Panics when the trace invokes a function not registered in the
    /// repository.
    pub fn run(&self, trace: &Trace) -> SimReport {
        let placement = self.placement(trace);
        let mut nodes: Vec<NodeState> = (0..self.config.nodes)
            .map(|_| {
                let mut node = NodeState::default();
                if let Some(ss) = &self.store {
                    let mut store = NodeStore::new(ss.config);
                    store.pin(&ss.pinned);
                    node.store = Some(store);
                }
                node
            })
            .collect();
        let mut next_id: u64 = 0;
        let mut records = Vec::with_capacity(trace.len());
        // Prewarming state: per-function arrival history and the pending
        // proactive-transform schedule, kept time-ordered.
        let mut history: HashMap<String, (usize, f64)> = HashMap::new(); // (count, last arrival)
        let mut mean_gap: HashMap<String, f64> = HashMap::new();
        let mut schedule: std::collections::BTreeMap<(u64, String), f64> =
            std::collections::BTreeMap::new();
        let mut prewarms = 0usize;
        let mut seq: u64 = 0;
        for inv in &trace.invocations {
            // Execute due proactive transforms before this arrival.
            if self.config.prewarm.is_some() {
                let due: Vec<(u64, String)> = schedule
                    .iter()
                    .filter(|(_, &t)| t <= inv.time)
                    .map(|(k, _)| k.clone())
                    .collect();
                for key in due {
                    let at = schedule.remove(&key).expect("key present");
                    let f = &key.1;
                    let node_idx = *placement.get(f).expect("placed function");
                    if self.prewarm(&mut nodes[node_idx], at, f) {
                        prewarms += 1;
                    }
                }
            }
            let node_idx = *placement.get(&inv.function).expect("placed function");
            let record = self.serve(&mut nodes[node_idx], &mut next_id, inv.time, &inv.function);
            if let Some(sink) = &self.sink {
                sink.record(&trace_of(&record, node_idx));
            }
            records.push(record);
            // Update the predictor and schedule the next prewarm.
            if let Some(cfg) = self.config.prewarm {
                let (count, last) = history.get(&inv.function).copied().unwrap_or((0, inv.time));
                if count > 0 {
                    let gap = inv.time - last;
                    let m = mean_gap.entry(inv.function.clone()).or_insert(gap);
                    *m = 0.7 * *m + 0.3 * gap;
                }
                history.insert(inv.function.clone(), (count + 1, inv.time));
                if count + 1 >= cfg.min_history {
                    if let Some(&m) = mean_gap.get(&inv.function) {
                        let at = (inv.time + m - cfg.lead).max(inv.time);
                        seq += 1;
                        schedule.insert((seq, inv.function.clone()), at);
                    }
                }
            }
        }
        if let Some(sink) = &self.sink {
            sink.flush();
        }
        let store = self.store.as_ref().map(|_| {
            let mut agg = StoreStats::default();
            for node in &nodes {
                if let Some(store) = &node.store {
                    agg.merge(&store.stats());
                }
            }
            agg
        });
        SimReport {
            system: self.policy.name().to_string(),
            records,
            prewarms,
            store,
        }
    }

    /// Release the chunk references of containers that stopped holding the
    /// named functions' models (keep-alive expiry or slot eviction).
    fn store_release(&self, node: &mut NodeState, evicted: &[String]) {
        let (Some(ss), Some(store)) = (&self.store, node.store.as_mut()) else {
            return;
        };
        for f in evicted {
            if let Some(chunks) = ss.model_chunks.get(f) {
                store.release(chunks);
            }
        }
    }

    /// Evict keep-alive-expired containers, releasing their chunks.
    fn evict_expired(&self, node: &mut NodeState, now: f64) {
        let evicted = node.evict_expired(now, self.config.keep_alive);
        self.store_release(node, &evicted);
    }

    /// [`NodeState::free_slot`] plus chunk release for every container it
    /// destroyed (even when it ultimately fails for lack of a free victim).
    fn free_slot(&self, node: &mut NodeState, needed: u64, now: f64) -> Option<()> {
        let (ok, evicted) = node.free_slot(
            self.config.capacity_per_node,
            self.config.memory,
            needed,
            now,
        );
        self.store_release(node, &evicted);
        ok.then_some(())
    }

    /// A container starts holding `f` via a scratch load: admit the
    /// model's full chunk list and return the transport seconds for the
    /// bytes missing at each tier (0 without a store).
    fn store_admit(&self, node: &mut NodeState, f: &str) -> f64 {
        let (Some(ss), Some(store)) = (&self.store, node.store.as_mut()) else {
            return 0.0;
        };
        ss.model_chunks
            .get(f)
            .map_or(0.0, |chunks| store.admit(chunks).seconds)
    }

    /// A donor holding `src` is repurposed into `dst`. With a cached plan
    /// (`transform == true`) only the plan's payload chunks are admitted
    /// (priced) while the reused remainder is synthesized in place from
    /// source content; a scratch repurpose admits the full model. The
    /// destination is admitted *before* the source is released, so chunks
    /// the two models share stay at container tier and cost nothing.
    fn store_repurpose(&self, node: &mut NodeState, src: &str, dst: &str, transform: bool) -> f64 {
        let (Some(ss), Some(store)) = (&self.store, node.store.as_mut()) else {
            return 0.0;
        };
        let split = transform
            .then(|| ss.plan_chunks.get(src).and_then(|per| per.get(dst)))
            .flatten();
        let seconds = match split {
            Some(pc) => {
                let cost = store.admit(&pc.fetched);
                store.produce(&pc.reused);
                cost.seconds
            }
            None => ss
                .model_chunks
                .get(dst)
                .map_or(0.0, |chunks| store.admit(chunks).seconds),
        };
        if let Some(chunks) = ss.model_chunks.get(src) {
            store.release(chunks);
        }
        seconds
    }

    /// Proactively transform an idle donor into `f` at time `at` so the
    /// predicted next request warm-starts. Returns whether a transformation
    /// was performed. Only donors past the idle threshold are used, and the
    /// safeguard still applies — prewarming never loads from scratch
    /// speculatively.
    fn prewarm(&self, node: &mut NodeState, at: f64, f: &str) -> bool {
        self.evict_expired(node, at);
        if node.warm_free(f, at).is_some() {
            return false; // already warm
        }
        let donors: Vec<(usize, String)> = node
            .containers
            .iter()
            .enumerate()
            .filter(|(_, c)| {
                c.function != f && c.state(at, self.config.idle_threshold) == ContainerState::Idle
            })
            .map(|(i, c)| (i, c.function.clone()))
            .collect();
        let need = self.footprint(f);
        let donors: Vec<(usize, String)> = donors
            .into_iter()
            .filter(|&(ci, _)| node.repurpose_fits(ci, need, self.config.memory))
            .collect();
        if let Some(choice) = choose_source(&self.repo, donors, f) {
            let ci = choice.container;
            let src = node.containers[ci].function.clone();
            let transport = self.store_repurpose(node, &src, f, true);
            let c = &mut node.containers[ci];
            c.function = f.into();
            c.mem_bytes = need;
            // The container is busy while the proactive transform runs;
            // last_routed stays untouched so the container still reads as
            // idle-donatable if the prediction was wrong.
            c.busy_until = at + self.profile.repurpose_overhead + choice.latency + transport;
            true
        } else {
            false
        }
    }

    /// Container footprint of a function under the configured memory limit.
    fn footprint(&self, f: &str) -> u64 {
        let model = self.fdata(f).model_bytes;
        match &self.config.memory {
            Some(m) => model + m.container_overhead,
            None => 0,
        }
    }

    fn fdata(&self, f: &str) -> &FunctionData {
        self.functions
            .get(f)
            .unwrap_or_else(|| panic!("function '{f}' not registered in the repository"))
    }

    fn serve(
        &self,
        node: &mut NodeState,
        next_id: &mut u64,
        arrival: f64,
        f: &str,
    ) -> RequestRecord {
        self.evict_expired(node, arrival);
        let compute = self.fdata(f).compute_cost;
        let mut now = arrival;
        loop {
            // 1. Warm start: a free container already holds the model.
            if let Some(ci) = node.warm_free(f, now) {
                let c = &mut node.containers[ci];
                c.route(now, now + compute);
                return RequestRecord {
                    function: f.into(),
                    arrival,
                    wait: now - arrival,
                    init: 0.0,
                    load: 0.0,
                    compute,
                    kind: StartKind::Warm,
                };
            }
            // 2. Obtain a container by the policy.
            if let Some((ci, init, load, kind)) = self.try_start(node, next_id, now, f) {
                let total = init + load + compute;
                // try_start created/re-purposed the container at index
                // `ci`; set its busy window.
                node.containers[ci].busy_until = now + total;
                return RequestRecord {
                    function: f.into(),
                    arrival,
                    wait: now - arrival,
                    init,
                    load,
                    compute,
                    kind,
                };
            }
            // 3. Everything is busy: advance to the next completion.
            let tmin = node
                .containers
                .iter()
                .map(|c| c.busy_until)
                .fold(f64::INFINITY, f64::min);
            debug_assert!(tmin.is_finite(), "full node must have busy containers");
            now = tmin.max(now + 1e-9);
        }
    }

    /// Try to obtain a container for `f` at `now`. On success the
    /// container exists in `node` with `function == f` and
    /// `last_routed == now`; returns `(container index, init, load, kind)`.
    fn try_start(
        &self,
        node: &mut NodeState,
        next_id: &mut u64,
        now: f64,
        f: &str,
    ) -> Option<(usize, f64, f64, StartKind)> {
        let data = self.fdata(f);
        let idle_thr = self.config.idle_threshold;
        match self.policy {
            Policy::OpenWhisk => {
                let need = self.footprint(f);
                self.free_slot(node, need, now)?;
                let ci = node.spawn(next_id, f, now, need);
                let transport = self.store_admit(node, f);
                Some((
                    ci,
                    self.profile.cold_init(),
                    data.load_cost + transport,
                    StartKind::Cold,
                ))
            }
            Policy::Pagurus => {
                // Prefer an idle donor of another function: skip sandbox
                // and runtime init, reload the model from scratch. "Help
                // rather than recycle": when the node is full, the
                // container a cold start would evict is re-purposed
                // directly instead of being destroyed.
                let need = self.footprint(f);
                let donor = node
                    .idle_donor(f, now, idle_thr)
                    .or_else(|| {
                        node.eviction_victim(
                            self.config.capacity_per_node,
                            self.config.memory,
                            need,
                            now,
                        )
                    })
                    .filter(|&ci| node.repurpose_fits(ci, need, self.config.memory));
                if let Some(ci) = donor {
                    let src = node.containers[ci].function.clone();
                    let transport = self.store_repurpose(node, &src, f, false);
                    let c = &mut node.containers[ci];
                    c.function = f.into();
                    c.mem_bytes = need;
                    c.route(now, now); // busy window set by caller
                    return Some((
                        ci,
                        self.profile.repurpose_overhead,
                        data.load_cost + transport,
                        StartKind::Transform,
                    ));
                }
                self.free_slot(node, need, now)?;
                let ci = node.spawn(next_id, f, now, need);
                let transport = self.store_admit(node, f);
                Some((
                    ci,
                    self.profile.cold_init(),
                    data.load_cost + transport,
                    StartKind::Cold,
                ))
            }
            Policy::Tetris => {
                // Tensor sharing: resident ops on the node are mapped, the
                // rest load from scratch; the runtime address space maps
                // from any existing container.
                let need = self.footprint(f);
                let had_containers = !node.containers.is_empty();
                let resident = node.resident_signatures(&self.functions);
                self.free_slot(node, need, now)?;
                let mut load = data.deserialize_cost;
                let mut shared = 0usize;
                for (sig, cost) in &data.op_costs {
                    if resident.contains(sig) {
                        load += self.config.tetris_map_per_op;
                        shared += 1;
                    } else {
                        load += cost;
                    }
                }
                let (init, kind) = if had_containers {
                    (
                        self.config.tetris_init,
                        if shared > 0 {
                            StartKind::Transform
                        } else {
                            StartKind::Cold
                        },
                    )
                } else {
                    (self.profile.cold_init(), StartKind::Cold)
                };
                let ci = node.spawn(next_id, f, now, need);
                let transport = self.store_admit(node, f);
                Some((ci, init, load + transport, kind))
            }
            Policy::Optimus => {
                // Cheapest idle donor via the cached plans + safeguard.
                // When the node is full, the container a cold start would
                // evict is also a donor candidate ("help rather than
                // recycle"): transforming it strictly dominates destroying
                // it and paying init + scratch load.
                let mut donors: Vec<(usize, String)> = node
                    .containers
                    .iter()
                    .enumerate()
                    .filter(|(_, c)| {
                        c.function != f && c.state(now, idle_thr) == ContainerState::Idle
                    })
                    .map(|(i, c)| (i, c.function.clone()))
                    .collect();
                let need = self.footprint(f);
                if donors.is_empty() {
                    if let Some(ci) = node.eviction_victim(
                        self.config.capacity_per_node,
                        self.config.memory,
                        need,
                        now,
                    ) {
                        donors.push((ci, node.containers[ci].function.clone()));
                    }
                }
                donors.retain(|&(ci, _)| node.repurpose_fits(ci, need, self.config.memory));
                if let Some(choice) = choose_source(&self.repo, donors.clone(), f) {
                    let ci = choice.container;
                    let src = node.containers[ci].function.clone();
                    let transport = self.store_repurpose(node, &src, f, true);
                    let c = &mut node.containers[ci];
                    c.function = f.into();
                    c.mem_bytes = need;
                    c.route(now, now);
                    return Some((
                        ci,
                        self.profile.repurpose_overhead,
                        choice.latency + transport,
                        StartKind::Transform,
                    ));
                }
                // Safeguard path: an idle donor exists but no plan beats a
                // scratch load — re-purpose Pagurus-style.
                if let Some((ci, _)) = donors.first().cloned() {
                    let src = node.containers[ci].function.clone();
                    let transport = self.store_repurpose(node, &src, f, false);
                    let c = &mut node.containers[ci];
                    c.function = f.into();
                    c.mem_bytes = need;
                    c.route(now, now);
                    return Some((
                        ci,
                        self.profile.repurpose_overhead,
                        data.load_cost + transport,
                        StartKind::Transform,
                    ));
                }
                self.free_slot(node, need, now)?;
                let ci = node.spawn(next_id, f, now, need);
                let transport = self.store_admit(node, f);
                Some((
                    ci,
                    self.profile.cold_init(),
                    data.load_cost + transport,
                    StartKind::Cold,
                ))
            }
        }
    }
}

/// A simulated [`RequestRecord`] as the shared telemetry schema.
///
/// Simulated durations stand in for measured ones; `total` equals the
/// service time because simulated requests have no unattributed
/// wall-clock. Plan-cache outcomes are counted inside
/// `ModelRepository::decide`, which the simulator shares with the live
/// path, so they are not duplicated per trace here.
fn trace_of(record: &RequestRecord, node: usize) -> RequestTrace {
    RequestTrace {
        function: record.function.clone(),
        node,
        kind: match record.kind {
            StartKind::Warm => optimus_telemetry::StartKind::Warm,
            StartKind::Cold => optimus_telemetry::StartKind::Cold,
            StartKind::Transform => optimus_telemetry::StartKind::Transform,
        },
        wait: record.wait,
        init: record.init,
        load: record.load,
        compute: record.compute,
        total: record.service_time(),
        transform_steps: 0,
        plan_cache_hit: None,
    }
}

/// Containers of one node.
#[derive(Default)]
struct NodeState {
    containers: Vec<Container>,
    /// Content-addressed chunk residency of this node (when the sim runs
    /// with a store).
    store: Option<NodeStore>,
}

impl NodeState {
    /// Drop keep-alive-expired containers; returns the functions whose
    /// models they held so the caller can release their chunks.
    fn evict_expired(&mut self, now: f64, keep_alive: f64) -> Vec<String> {
        let mut evicted = Vec::new();
        self.containers.retain(|c| {
            if c.expired(now, keep_alive) {
                evicted.push(c.function.clone());
                false
            } else {
                true
            }
        });
        evicted
    }

    /// Index of a free container already holding `f`, preferring the most
    /// recently used (deterministic tie-break by id).
    fn warm_free(&self, f: &str, now: f64) -> Option<usize> {
        self.containers
            .iter()
            .enumerate()
            .filter(|(_, c)| c.function == f && c.busy_until <= now)
            .max_by(|(_, a), (_, b)| {
                a.last_routed
                    .partial_cmp(&b.last_routed)
                    .expect("finite")
                    .then(a.id.cmp(&b.id))
            })
            .map(|(i, _)| i)
    }

    /// Longest-idle donor container of another function.
    fn idle_donor(&self, f: &str, now: f64, idle_threshold: f64) -> Option<usize> {
        self.containers
            .iter()
            .enumerate()
            .filter(|(_, c)| {
                c.function != f && c.state(now, idle_threshold) == ContainerState::Idle
            })
            .max_by(|(_, a), (_, b)| {
                (now - a.last_routed)
                    .partial_cmp(&(now - b.last_routed))
                    .expect("finite")
                    .then(b.id.cmp(&a.id))
            })
            .map(|(i, _)| i)
    }

    /// Total container memory currently resident on this node.
    fn mem_used(&self) -> u64 {
        self.containers.iter().map(|c| c.mem_bytes).sum()
    }

    /// Whether a new container of `needed` bytes fits within both the slot
    /// count and the optional memory budget.
    fn fits(&self, capacity: usize, memory: Option<MemoryLimit>, needed: u64) -> bool {
        if self.containers.len() >= capacity {
            return false;
        }
        match memory {
            Some(m) => self.mem_used() + needed <= m.node_bytes,
            None => true,
        }
    }

    /// Whether re-purposing container `ci` for a model of `needed` bytes
    /// stays within the memory budget (§6: "container resources may be
    /// insufficient" — a small container cannot always host a large model).
    fn repurpose_fits(&self, ci: usize, needed: u64, memory: Option<MemoryLimit>) -> bool {
        match memory {
            Some(m) => self.mem_used() - self.containers[ci].mem_bytes + needed <= m.node_bytes,
            None => true,
        }
    }

    fn lru_free(&self, now: f64) -> Option<usize> {
        self.containers
            .iter()
            .enumerate()
            .filter(|(_, c)| c.busy_until <= now)
            .min_by(|(_, a), (_, b)| {
                a.last_routed
                    .partial_cmp(&b.last_routed)
                    .expect("finite")
                    .then(a.id.cmp(&b.id))
            })
            .map(|(i, _)| i)
    }

    /// The container a cold start would evict: the least-recently-routed
    /// non-busy container, but only when the node cannot fit a new
    /// container. Donor candidate for the "help rather than recycle" path.
    fn eviction_victim(
        &self,
        capacity: usize,
        memory: Option<MemoryLimit>,
        needed: u64,
        now: f64,
    ) -> Option<usize> {
        if self.fits(capacity, memory, needed) {
            return None;
        }
        self.lru_free(now)
    }

    /// Ensure a new container of `needed` bytes fits: free capacity, or
    /// evict least-recently-routed non-busy containers until it does.
    /// Returns whether it now fits (false when the remaining containers
    /// are all busy), plus the functions of every container destroyed —
    /// even on failure, so the caller can release their chunks.
    fn free_slot(
        &mut self,
        capacity: usize,
        memory: Option<MemoryLimit>,
        needed: u64,
        now: f64,
    ) -> (bool, Vec<String>) {
        let mut evicted = Vec::new();
        while !self.fits(capacity, memory, needed) {
            let Some(victim) = self.lru_free(now) else {
                return (false, evicted);
            };
            evicted.push(self.containers[victim].function.clone());
            self.containers.swap_remove(victim);
        }
        (true, evicted)
    }

    /// Create a new container for `f` with the given memory footprint;
    /// returns its index. `busy_until` is patched by the caller once
    /// init+load+compute are known.
    fn spawn(&mut self, next_id: &mut u64, f: &str, now: f64, mem_bytes: u64) -> usize {
        let id = *next_id;
        *next_id += 1;
        let mut c = Container::new(id, f, now, now);
        c.mem_bytes = mem_bytes;
        self.containers.push(c);
        self.containers.len() - 1
    }

    /// All op signatures resident in this node's containers (Tetris).
    fn resident_signatures(
        &self,
        functions: &HashMap<String, FunctionData>,
    ) -> std::collections::HashSet<OpSignature> {
        let mut set = std::collections::HashSet::new();
        for c in &self.containers {
            if let Some(data) = functions.get(&c.function) {
                for (sig, _) in &data.op_costs {
                    set.insert(sig.clone());
                }
            }
        }
        set
    }
}
