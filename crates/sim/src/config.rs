//! Simulation configuration.

use optimus_faults::FaultPlan;
use optimus_fleet::FleetConfig;
use optimus_llm::LlmConfig;
use optimus_predict::PredictConfig;
use optimus_profile::Environment;
use optimus_store::StoreConfig;
use serde::{Deserialize, Serialize};

/// The paper's global keep-alive window (§8.1 fixes 10 minutes for all
/// systems). [`SimConfig::keep_alive`] defaults to this; the arrival
/// predictor's adaptive windows override it per function.
pub const DEFAULT_KEEP_ALIVE_S: f64 = 600.0;

/// The idle threshold after which a container becomes a transformation
/// donor (§4.2; 60 s like Pagurus). [`SimConfig::idle_threshold`]
/// defaults to this.
pub const DEFAULT_IDLE_THRESHOLD_S: f64 = 60.0;

/// How the gateway assigns functions to nodes.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum PlacementStrategy {
    /// The §5.1 model-sharing-aware K-medoids balancer.
    SharingAware {
        /// Weight of the model editing distance.
        gamma_d: f64,
        /// Weight of the demand correlation.
        gamma_k: f64,
    },
    /// Hash of the function name (existing systems' default).
    Hash,
    /// Greedy least-total-demand placement.
    LeastLoaded,
}

impl Default for PlacementStrategy {
    fn default() -> Self {
        PlacementStrategy::SharingAware {
            gamma_d: 0.7,
            gamma_k: 0.3,
        }
    }
}

/// Memory-aware capacity limit (§6 "Fine-grained Resource Allocation").
///
/// When set, a node additionally enforces a byte budget: each container
/// occupies its model's parameter bytes plus a fixed runtime overhead, so
/// small models pack more containers per node than the homogeneous slot
/// count alone would allow (and very large models fewer).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MemoryLimit {
    /// Total container memory per node, in bytes.
    pub node_bytes: u64,
    /// Fixed per-container runtime overhead, in bytes.
    pub container_overhead: u64,
}

impl MemoryLimit {
    /// A limit of `gib` GiB per node with a 384 MiB per-container runtime
    /// overhead (a typical ML runtime resident set).
    pub fn gib(gib: u64) -> Self {
        MemoryLimit {
            node_bytes: gib * 1024 * 1024 * 1024,
            container_overhead: 384 * 1024 * 1024,
        }
    }
}

/// Predictive prewarming (§2.2's first class of cold-start mitigation,
/// which the paper notes Optimus is *complementary* to).
///
/// After each request of a function, the platform predicts the next
/// arrival from the observed mean inter-arrival gap and schedules a
/// proactive transformation `lead` seconds before it: if at that moment
/// the function has no warm container but an idle donor exists, the donor
/// is transformed ahead of time, so the predicted request warm-starts.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PrewarmConfig {
    /// Seconds of lead before the predicted arrival.
    pub lead: f64,
    /// Minimum observed arrivals before predictions are trusted.
    pub min_history: usize,
}

impl Default for PrewarmConfig {
    fn default() -> Self {
        PrewarmConfig {
            lead: 5.0,
            min_history: 3,
        }
    }
}

/// Platform-level simulation parameters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimConfig {
    /// Number of worker nodes.
    pub nodes: usize,
    /// Maximum containers per node.
    pub capacity_per_node: usize,
    /// Keep-alive: a non-busy container is evicted after this many seconds
    /// without use (defaults to [`DEFAULT_KEEP_ALIVE_S`], the paper's
    /// global 10-minute window).
    pub keep_alive: f64,
    /// Idle threshold: a container is a transformation donor after this
    /// many seconds without a routed request (defaults to
    /// [`DEFAULT_IDLE_THRESHOLD_S`]).
    pub idle_threshold: f64,
    /// Hardware environment of every node.
    pub env: Environment,
    /// Function-to-node placement.
    pub placement: PlacementStrategy,
    /// Demand-histogram slot length for the balancer (s).
    pub demand_slot: f64,
    /// Tetris-specific: latency of creating a container by mapping the
    /// shared runtime address space (replaces full sandbox+runtime init).
    pub tetris_init: f64,
    /// Tetris-specific: per-shared-operation address-mapping latency (s).
    pub tetris_map_per_op: f64,
    /// Optional memory-aware capacity limit (in addition to the slot
    /// count); `None` reproduces the paper's homogeneous allocation.
    pub memory: Option<MemoryLimit>,
    /// Optional predictive prewarming layered on top of the policy
    /// (meaningful for Optimus/Pagurus which can transform donors).
    pub prewarm: Option<PrewarmConfig>,
    /// Optional content-addressed weight store (`optimus-store`): each node
    /// tracks chunk residency across Remote/NodeDisk/NodeMemory/Container
    /// tiers and every non-warm start pays transport for the bytes missing
    /// at each tier. `None` (the default) reproduces the byte-agnostic
    /// load model exactly.
    pub store: Option<StoreConfig>,
    /// Optional deterministic fault injection (`optimus-faults`): seeded
    /// per-request crash/kill/transform-failure/straggler draws plus an
    /// explicit node-event schedule, with the resilience machinery
    /// (safeguard escalation, retries, degraded re-routing) they force.
    /// `None` (the default) disables the fault layer entirely; a quiet
    /// plan (`fault rates = 0`) reproduces fault-free reports
    /// byte-identically.
    pub faults: Option<FaultPlan>,
    /// Optional elastic fleet (`optimus-fleet`): `nodes` becomes the
    /// initial fleet, the autoscaler grows it up to
    /// [`FleetConfig::max_nodes`] under sustained slot pressure, and
    /// joining nodes are warmed by peer-to-peer chunk multicast (when the
    /// store is enabled). `None` (the default) reproduces the static node
    /// set byte-identically.
    pub fleet: Option<FleetConfig>,
    /// Model the persisted plan cache (`optimus-core`'s `PlanArtifact`)
    /// as store transport: initial nodes boot with the artifact's
    /// content-addressed chunks resident (the gateway warm-loads the
    /// artifact at startup), and elastically joining nodes receive the
    /// artifact bytes alongside the hot model's chunks during warm-up —
    /// multicast or remote, priced like any other transfer. Requires
    /// `store`; `false` (the default) reproduces the weights-only
    /// transfer model byte-identically.
    pub plan_warm: bool,
    /// Optional online arrival prediction (`optimus-predict`):
    /// per-function inter-arrival histograms drive adaptive keep-alive
    /// windows (replacing the global `keep_alive` constant per function)
    /// and cost-gated speculative transformations of idle donors toward
    /// predicted-hot models. `None` (the default) reproduces the reactive
    /// path byte-identically, as does [`PredictConfig::inert`].
    pub predict: Option<PredictConfig>,
    /// Optional token-level LLM serving (`optimus-llm`): every request
    /// becomes a decode loop (one prefill iteration plus a seeded number
    /// of decode iterations) scheduled with iteration-level continuous
    /// batching — arrivals join a running batch at the next iteration
    /// boundary instead of waiting for the loop to drain. `None` (the
    /// default) reproduces the single-forward-pass serving model
    /// byte-identically.
    pub llm: Option<LlmConfig>,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            nodes: 2,
            capacity_per_node: 12,
            keep_alive: DEFAULT_KEEP_ALIVE_S,
            idle_threshold: DEFAULT_IDLE_THRESHOLD_S,
            env: Environment::Cpu,
            placement: PlacementStrategy::default(),
            demand_slot: 300.0,
            tetris_init: 0.30,
            tetris_map_per_op: 0.0002,
            memory: None,
            prewarm: None,
            store: None,
            faults: None,
            fleet: None,
            plan_warm: false,
            predict: None,
            llm: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper_setup() {
        let c = SimConfig::default();
        assert_eq!(c.nodes, 2, "paper uses two servers");
        assert_eq!(c.keep_alive, 600.0, "10-minute keep-alive for all systems");
        assert_eq!(c.idle_threshold, 60.0, "60 s idle threshold like Pagurus");
        assert_eq!(c.keep_alive, DEFAULT_KEEP_ALIVE_S);
        assert_eq!(c.idle_threshold, DEFAULT_IDLE_THRESHOLD_S);
        assert_eq!(c.env, Environment::Cpu);
        assert!(c.store.is_none(), "store off by default: legacy load model");
        assert!(c.predict.is_none(), "prediction off by default: reactive");
    }

    #[test]
    fn config_serializes() {
        let c = SimConfig::default();
        let json = serde_json::to_string(&c).unwrap();
        let back: SimConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(back, c);
    }
}
