//! Container lifecycle state.

use optimus_model::FunctionId;
use serde::{Deserialize, Serialize};

/// Observable container state at a point in virtual time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ContainerState {
    /// Currently serving a request (or still starting up).
    Busy,
    /// Warm and recently used: a warm-start target for its own function.
    Warm,
    /// Warm and idle past the idle threshold: a transformation donor.
    Idle,
}

/// One container on a node.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Container {
    /// Unique id within the simulation.
    pub id: u64,
    /// Interned id of the function (model name) currently served; resolve
    /// back to a name through the platform's
    /// [`Interner`](optimus_model::Interner).
    pub function: FunctionId,
    /// Virtual time until which the container is busy.
    pub busy_until: f64,
    /// Last time a request was routed to this container (idle-timer reset,
    /// §4.2).
    pub last_routed: f64,
    /// Resident memory footprint in bytes (model + runtime overhead).
    ///
    /// Used by the memory-aware capacity mode (§6 "Fine-grained Resource
    /// Allocation"): heterogeneous container sizes instead of homogeneous
    /// slots.
    pub mem_bytes: u64,
    /// Whether this container was produced by a *speculative*
    /// transformation that no request has used yet. Cleared on the first
    /// warm hit (counted as a prediction hit); still set when the
    /// container is evicted, repurposed, or killed (counted as a
    /// misprediction). Always `false` when prediction is off.
    pub speculated: bool,
}

impl Container {
    /// New container created at `now` for `function`, busy until
    /// `busy_until` (its first request's completion).
    pub fn new(id: u64, function: FunctionId, now: f64, busy_until: f64) -> Self {
        Container {
            id,
            function,
            busy_until,
            last_routed: now,
            mem_bytes: 0,
            speculated: false,
        }
    }

    /// State at time `now` under the given idle threshold.
    pub fn state(&self, now: f64, idle_threshold: f64) -> ContainerState {
        if self.busy_until > now {
            ContainerState::Busy
        } else if now - self.last_routed >= idle_threshold {
            ContainerState::Idle
        } else {
            ContainerState::Warm
        }
    }

    /// Time the container last finished work (for keep-alive eviction).
    pub fn free_since(&self) -> f64 {
        self.busy_until
    }

    /// Whether keep-alive expired at `now`.
    pub fn expired(&self, now: f64, keep_alive: f64) -> bool {
        self.busy_until <= now && now - self.busy_until.max(self.last_routed) > keep_alive
    }

    /// Route a request: mark busy until `until` and reset the idle timer.
    pub fn route(&mut self, now: f64, until: f64) {
        self.last_routed = now;
        self.busy_until = until;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const F: FunctionId = FunctionId(0);

    #[test]
    fn state_transitions_over_time() {
        let c = Container::new(1, F, 0.0, 2.0);
        assert_eq!(c.state(1.0, 60.0), ContainerState::Busy);
        assert_eq!(c.state(2.0, 60.0), ContainerState::Warm);
        assert_eq!(c.state(59.9, 60.0), ContainerState::Warm);
        assert_eq!(c.state(60.0, 60.0), ContainerState::Idle);
    }

    #[test]
    fn routing_resets_idle_timer() {
        let mut c = Container::new(1, F, 0.0, 1.0);
        c.route(100.0, 101.0);
        assert_eq!(c.state(120.0, 60.0), ContainerState::Warm);
        assert_eq!(c.state(160.0, 60.0), ContainerState::Idle);
    }

    #[test]
    fn keep_alive_expiry() {
        let c = Container::new(1, F, 0.0, 2.0);
        assert!(!c.expired(600.0, 600.0));
        assert!(c.expired(603.0, 600.0));
        // Busy containers never expire.
        let busy = Container::new(2, F, 0.0, 1e9);
        assert!(!busy.expired(1e6, 600.0));
    }
}
