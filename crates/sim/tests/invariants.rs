//! Randomized invariant tests of the platform simulator: for any policy,
//! workload and configuration, the simulation must uphold the latency
//! accounting and container-lifecycle rules.

use std::sync::Arc;

use optimus_core::{GroupPlanner, ModelRepository};
use optimus_profile::CostModel;
use optimus_sim::{PlacementStrategy, Platform, Policy, SimConfig, StartKind};
use optimus_workload::PoissonGenerator;
use proptest::prelude::*;

fn shared_repo() -> Arc<ModelRepository> {
    // Built once: registration computes the pairwise plan cache.
    static REPO: std::sync::OnceLock<Arc<ModelRepository>> = std::sync::OnceLock::new();
    REPO.get_or_init(|| {
        let repo = ModelRepository::new(Box::new(GroupPlanner));
        let cost = CostModel::default();
        for m in [
            optimus_zoo::vgg::vgg11(),
            optimus_zoo::vgg::vgg16(),
            optimus_zoo::resnet::resnet18(),
            optimus_zoo::resnet::resnet50(),
            optimus_zoo::mobilenet::mobilenet_v1(1.0, 0),
        ] {
            repo.register(m, &cost);
        }
        Arc::new(repo)
    })
    .clone()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn simulation_invariants_hold(
        policy_idx in 0usize..4,
        lambda in 0.001f64..0.02,
        capacity in 1usize..6,
        nodes in 1usize..3,
        seed in any::<u64>(),
    ) {
        let policy = Policy::ALL[policy_idx];
        let repo = shared_repo();
        let functions = repo.model_names();
        let trace = PoissonGenerator::new(lambda, 20_000.0, seed).generate(&functions);
        let config = SimConfig {
            nodes,
            capacity_per_node: capacity,
            placement: PlacementStrategy::Hash,
            ..SimConfig::default()
        };
        let report = Platform::new(config, policy, repo.clone()).run(&trace);

        // 1. Conservation: every request is served exactly once, in order.
        prop_assert_eq!(report.len(), trace.len());
        for (r, inv) in report.records.iter().zip(&trace.invocations) {
            prop_assert_eq!(&r.function, &inv.function);
            prop_assert_eq!(r.arrival, inv.time);
        }

        for r in &report.records {
            // 2. All components non-negative and finite.
            prop_assert!(r.wait >= 0.0 && r.wait.is_finite());
            prop_assert!(r.init >= 0.0 && r.load >= 0.0 && r.compute > 0.0);

            // 3. Warm starts pay neither init nor load.
            if r.kind == StartKind::Warm {
                prop_assert_eq!(r.init, 0.0);
                prop_assert_eq!(r.load, 0.0);
            }

            // 4. Cold starts pay the full init and the full scratch load.
            if r.kind == StartKind::Cold {
                prop_assert!(r.init > 0.0, "{policy}: cold start without init");
                let scratch = repo.load_cost(&r.function).unwrap();
                prop_assert!(
                    r.load <= scratch + 1e-9,
                    "{policy}: cold load {} exceeds scratch {}",
                    r.load,
                    scratch
                );
            }

            // 5. Transform loads never exceed the scratch load by more than
            //    rounding (the safeguard guarantee), for every policy.
            if r.kind == StartKind::Transform {
                let scratch = repo.load_cost(&r.function).unwrap();
                prop_assert!(
                    r.load <= scratch + 1e-9,
                    "{policy}: transform load {} exceeds scratch {}",
                    r.load,
                    scratch
                );
            }
        }

        // 6. OpenWhisk never transforms.
        if policy == Policy::OpenWhisk {
            prop_assert!(report
                .records
                .iter()
                .all(|r| r.kind != StartKind::Transform));
        }

        // 7. Determinism.
        let config2 = SimConfig {
            nodes,
            capacity_per_node: capacity,
            placement: PlacementStrategy::Hash,
            ..SimConfig::default()
        };
        let report2 = Platform::new(config2, policy, repo).run(&trace);
        prop_assert_eq!(report, report2);
    }
}
