//! Fault-injection tests: the §6.3 safeguard must hold under any seeded
//! fault plan, and a quiet plan must be byte-identical to no plan at all.

use std::sync::Arc;

use optimus_core::{GroupPlanner, ModelRepository};
use optimus_faults::{FaultKind, FaultPlan, FaultSpec, ScheduledFault};
use optimus_profile::CostModel;
use optimus_sim::{PlacementStrategy, Platform, Policy, SimConfig};
use optimus_store::StoreConfig;
use optimus_workload::PoissonGenerator;
use proptest::prelude::*;

fn shared_repo() -> Arc<ModelRepository> {
    static REPO: std::sync::OnceLock<Arc<ModelRepository>> = std::sync::OnceLock::new();
    REPO.get_or_init(|| {
        let repo = ModelRepository::new(Box::new(GroupPlanner));
        let cost = CostModel::default();
        repo.register_all(
            vec![
                optimus_zoo::vgg::vgg11(),
                optimus_zoo::vgg::vgg16(),
                optimus_zoo::resnet::resnet18(),
                optimus_zoo::resnet::resnet50(),
                optimus_zoo::bert::bert(optimus_zoo::BertConfig::new(optimus_zoo::BertSize::Mini)),
            ],
            &cost,
        );
        Arc::new(repo)
    })
    .clone()
}

fn base_config(nodes: usize) -> SimConfig {
    SimConfig {
        nodes,
        capacity_per_node: 4,
        placement: PlacementStrategy::Hash,
        store: Some(StoreConfig::default()),
        ..SimConfig::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The tentpole invariant: for ANY seeded fault plan, the startup
    /// latency an Optimus-served request pays (with the safeguard) never
    /// exceeds the cold-start latency of the same request under the same
    /// injected faults.
    #[test]
    fn safeguard_never_exceeds_cold_start_under_faults(
        seed in any::<u64>(),
        rate_pct in 0u32..=40,
        lambda in 0.002f64..0.02,
    ) {
        let repo = shared_repo();
        let trace = PoissonGenerator::new(lambda, 4_000.0, seed ^ 0xABCD)
            .generate(&repo.model_names());
        let spec = FaultSpec::uniform(seed, f64::from(rate_pct) / 100.0);
        let config = SimConfig {
            faults: Some(FaultPlan::from_spec(spec)),
            ..base_config(2)
        };
        let report = Platform::new(config, Policy::Optimus, repo.clone()).run(&trace);
        prop_assert_eq!(report.len(), trace.len());
        let faults = report.faults.expect("fault layer enabled");
        prop_assert!(
            faults.max_over_cold <= 1e-6,
            "safeguard violated: worst margin over cold start = {} (stats: {:?})",
            faults.max_over_cold,
            faults.stats
        );
    }
}

/// A quiet fault plan (all rates zero, empty schedule) must reproduce the
/// fault-free run byte-for-byte, for every policy — the identity-math
/// contract that lets the fault layer live on the hot path.
#[test]
fn zero_rate_plan_is_byte_identical_to_no_plan() {
    let repo = shared_repo();
    let trace = PoissonGenerator::new(0.01, 6_000.0, 7).generate(&repo.model_names());
    for policy in Policy::ALL {
        let baseline = Platform::new(base_config(2), policy, repo.clone()).run(&trace);
        let quiet = SimConfig {
            faults: Some(FaultPlan::from_spec(FaultSpec::off(123))),
            ..base_config(2)
        };
        let faulted = Platform::new(quiet, policy, repo.clone()).run(&trace);
        assert_eq!(
            serde_json::to_string(&baseline.records).unwrap(),
            serde_json::to_string(&faulted.records).unwrap(),
            "{policy:?}: quiet fault plan must not perturb records"
        );
        assert_eq!(baseline.store, faulted.store, "{policy:?}: store stats");
        let report = faulted.faults.expect("fault layer enabled");
        assert_eq!(
            report.stats,
            Default::default(),
            "{policy:?}: no injections"
        );
        // The audit subtracts two different summation orders of the same
        // terms, so the quiet margin is float-association noise, not 0.0.
        assert!(
            report.max_over_cold <= 1e-9,
            "{policy:?}: nothing audited over, got {}",
            report.max_over_cold
        );
    }
}

/// Same plan + same trace ⇒ byte-identical reports (the determinism the
/// exp_chaos sweep asserts at scale).
#[test]
fn same_fault_plan_is_deterministic() {
    let repo = shared_repo();
    let trace = PoissonGenerator::new(0.01, 6_000.0, 11).generate(&repo.model_names());
    let config = SimConfig {
        faults: Some(FaultPlan::from_spec(FaultSpec::uniform(99, 0.2))),
        ..base_config(2)
    };
    let a = Platform::new(config.clone(), Policy::Optimus, repo.clone()).run(&trace);
    let b = Platform::new(config, Policy::Optimus, repo.clone()).run(&trace);
    assert_eq!(
        serde_json::to_string(&a).unwrap(),
        serde_json::to_string(&b).unwrap()
    );
    let stats = a.faults.expect("enabled").stats;
    assert!(
        stats.transform_failures > 0 || stats.fetch_stragglers > 0 || stats.container_kills > 0,
        "a 20% fault rate over thousands of requests must inject something: {stats:?}"
    );
}

/// A scheduled node crash forces re-routing to the healthy node and the
/// run still serves every request.
#[test]
fn scheduled_crash_reroutes_and_recovers() {
    let repo = shared_repo();
    let trace = PoissonGenerator::new(0.02, 4_000.0, 3).generate(&repo.model_names());
    let plan = FaultPlan {
        spec: FaultSpec::off(1),
        schedule: vec![
            ScheduledFault {
                at: 500.0,
                node: 0,
                kind: FaultKind::NodeCrash,
            },
            ScheduledFault {
                at: 900.0,
                node: 1,
                kind: FaultKind::ContainerKill,
            },
        ],
    };
    let config = SimConfig {
        faults: Some(plan),
        ..base_config(2)
    };
    let report = Platform::new(config, Policy::Optimus, repo.clone()).run(&trace);
    assert_eq!(report.len(), trace.len(), "every request is served");
    let stats = report.faults.expect("enabled").stats;
    assert_eq!(stats.node_crashes, 1);
    assert_eq!(stats.container_kills, 1);
    assert!(
        stats.reroutes >= 1,
        "arrivals during the outage must re-route: {stats:?}"
    );
    for r in &report.records {
        assert!(r.wait >= 0.0 && r.wait.is_finite());
    }
}

/// With a single node there is nowhere to fail over: requests arriving
/// during the outage queue until the node recovers, and their wait time
/// shows it.
#[test]
fn single_node_crash_queues_until_recovery() {
    let repo = shared_repo();
    let trace = PoissonGenerator::new(0.02, 2_000.0, 5).generate(&repo.model_names());
    let mut spec = FaultSpec::off(1);
    spec.recovery_seconds = 50.0;
    let plan = FaultPlan {
        spec,
        schedule: vec![ScheduledFault {
            at: 100.0,
            node: 0,
            kind: FaultKind::NodeCrash,
        }],
    };
    let config = SimConfig {
        faults: Some(plan),
        ..base_config(1)
    };
    let report = Platform::new(config, Policy::Optimus, repo.clone()).run(&trace);
    assert_eq!(report.len(), trace.len(), "every request is served");
    let stats = report.faults.expect("enabled").stats;
    assert_eq!(stats.node_crashes, 1);
    assert_eq!(stats.reroutes, 0, "nowhere to re-route with one node");
    // A request arriving inside the outage window waits out the recovery.
    let queued = report
        .records
        .iter()
        .any(|r| r.arrival > 100.0 && r.arrival < 150.0 && r.wait >= 150.0 - r.arrival - 1e-9);
    let arrived_in_window = report
        .records
        .iter()
        .any(|r| r.arrival > 100.0 && r.arrival < 150.0);
    assert!(
        queued || !arrived_in_window,
        "requests during the outage must wait for recovery"
    );
}
