//! End-to-end simulator tests: lifecycle correctness and the paper's
//! qualitative system ordering.

use std::sync::Arc;

use optimus_core::{GroupPlanner, ModelRepository};
use optimus_profile::CostModel;
use optimus_sim::{PlacementStrategy, Platform, Policy, SimConfig, StartKind};
use optimus_workload::{Invocation, Trace};

fn repo_with(models: Vec<optimus_model::ModelGraph>) -> Arc<ModelRepository> {
    let repo = ModelRepository::new(Box::new(GroupPlanner));
    let cost = CostModel::default();
    for m in models {
        repo.register(m, &cost);
    }
    Arc::new(repo)
}

fn trace_of(duration: f64, arrivals: &[(f64, &str)]) -> Trace {
    Trace::new(
        duration,
        arrivals
            .iter()
            .map(|(t, f)| Invocation {
                time: *t,
                function: (*f).to_string(),
            })
            .collect(),
    )
}

fn single_node_config() -> SimConfig {
    SimConfig {
        nodes: 1,
        capacity_per_node: 8,
        placement: PlacementStrategy::Hash,
        ..SimConfig::default()
    }
}

#[test]
fn first_request_cold_second_warm() {
    let repo = repo_with(vec![optimus_zoo::resnet::resnet18()]);
    let platform = Platform::new(single_node_config(), Policy::OpenWhisk, repo);
    let trace = trace_of(100.0, &[(0.0, "resnet18"), (30.0, "resnet18")]);
    let report = platform.run(&trace);
    assert_eq!(report.records[0].kind, StartKind::Cold);
    assert_eq!(report.records[1].kind, StartKind::Warm);
    assert!(report.records[1].service_time() < report.records[0].service_time() / 3.0);
    assert_eq!(report.records[1].load, 0.0);
    assert_eq!(report.records[1].init, 0.0);
}

#[test]
fn keep_alive_expiry_forces_cold_start() {
    let repo = repo_with(vec![optimus_zoo::resnet::resnet18()]);
    let platform = Platform::new(single_node_config(), Policy::OpenWhisk, repo);
    // Second request 11 minutes later: keep-alive (10 min) expired.
    let trace = trace_of(2_000.0, &[(0.0, "resnet18"), (660.0, "resnet18")]);
    let report = platform.run(&trace);
    assert_eq!(report.records[1].kind, StartKind::Cold);
}

#[test]
fn within_keep_alive_stays_warm() {
    let repo = repo_with(vec![optimus_zoo::resnet::resnet18()]);
    let platform = Platform::new(single_node_config(), Policy::OpenWhisk, repo);
    let trace = trace_of(2_000.0, &[(0.0, "resnet18"), (500.0, "resnet18")]);
    let report = platform.run(&trace);
    assert_eq!(report.records[1].kind, StartKind::Warm);
}

#[test]
fn optimus_transforms_idle_container() {
    let repo = repo_with(vec![optimus_zoo::vgg::vgg16(), optimus_zoo::vgg::vgg19()]);
    let platform = Platform::new(single_node_config(), Policy::Optimus, repo.clone());
    // vgg16 runs once, goes idle (>60 s), then vgg19 arrives: its container
    // should be transformed rather than cold-started.
    let trace = trace_of(500.0, &[(0.0, "vgg16"), (200.0, "vgg19")]);
    let report = platform.run(&trace);
    assert_eq!(report.records[0].kind, StartKind::Cold);
    assert_eq!(report.records[1].kind, StartKind::Transform);
    // Transformation latency equals the cached plan cost.
    let plan_cost = repo.plan("vgg16", "vgg19").unwrap().cost.total();
    assert!((report.records[1].load - plan_cost).abs() < 1e-9);
    assert!(report.records[1].service_time() < report.records[0].service_time());
}

#[test]
fn optimus_does_not_steal_busy_or_warm_containers() {
    let repo = repo_with(vec![optimus_zoo::vgg::vgg16(), optimus_zoo::vgg::vgg19()]);
    let platform = Platform::new(single_node_config(), Policy::Optimus, repo);
    // vgg16 used at t=180 (still within the 60 s idle threshold at t=200),
    // so vgg19 must cold-start instead of stealing the warm container.
    let trace = trace_of(500.0, &[(0.0, "vgg16"), (180.0, "vgg16"), (200.0, "vgg19")]);
    let report = platform.run(&trace);
    assert_eq!(report.records[2].kind, StartKind::Cold);
}

#[test]
fn pagurus_repurposes_but_reloads_model() {
    let repo = repo_with(vec![optimus_zoo::vgg::vgg16(), optimus_zoo::vgg::vgg19()]);
    let platform = Platform::new(single_node_config(), Policy::Pagurus, repo.clone());
    let trace = trace_of(500.0, &[(0.0, "vgg16"), (200.0, "vgg19")]);
    let report = platform.run(&trace);
    assert_eq!(report.records[1].kind, StartKind::Transform);
    // Pagurus still pays the full model load.
    let load = repo.load_cost("vgg19").unwrap();
    assert!((report.records[1].load - load).abs() < 1e-9);
    // But skips sandbox/runtime init.
    assert!(report.records[1].init < report.records[0].init / 3.0);
}

#[test]
fn tetris_shares_identical_operations() {
    // Two weight variants share nothing; same model twice shares all ops.
    let a = optimus_zoo::vgg::vgg_scaled(16, 1.0, 0);
    let repo = repo_with(vec![a, optimus_zoo::vgg::vgg19()]);
    let platform = Platform::new(single_node_config(), Policy::Tetris, repo.clone());
    // vgg16 cold, then vgg19 while vgg16 container is alive: weight-free
    // ops (activations, pools) are identical across VGGs and get mapped.
    let trace = trace_of(500.0, &[(0.0, "vgg16"), (200.0, "vgg19")]);
    let report = platform.run(&trace);
    let full_load = repo.load_cost("vgg19").unwrap();
    assert!(
        report.records[1].load < full_load,
        "tetris load {} !< full {}",
        report.records[1].load,
        full_load
    );
    // But weighted ops differ, so most of the load remains (Tetris's
    // strict-identity limitation, §2.1).
    assert!(report.records[1].load > 0.5 * full_load);
}

#[test]
fn systems_order_matches_figure13() {
    // The paper's regime: far more functions than container slots ("the
    // system cannot provide enough warm containers for every model type",
    // §4.1), so most arrivals miss. OpenWhisk pays full cold starts,
    // Pagurus saves init by re-purposing idle containers, Optimus saves
    // init + most of the load via model transformation.
    let mut models = Vec::new();
    for w in [0.5, 0.75, 1.0] {
        models.push(optimus_zoo::vgg::vgg_scaled(16, w, 0));
        models.push(optimus_zoo::vgg::vgg_scaled(19, w, 0));
        models.push(optimus_zoo::resnet::resnet_scaled(50, w, 0));
        models.push(optimus_zoo::resnet::resnet_scaled(101, w, 0));
    }
    let names: Vec<String> = models.iter().map(|m| m.name().to_string()).collect();
    let repo = repo_with(models);
    // Round-robin over 12 functions every 30 s on a 4-slot node: every
    // function recurs after 360 s but at most 4 containers survive, so
    // warm hits are rare for every system.
    let arrivals: Vec<(f64, &str)> = (0..120)
        .map(|i| (30.0 * i as f64, names[i % names.len()].as_str()))
        .collect();
    let trace = trace_of(4_000.0, &arrivals);
    let config = SimConfig {
        nodes: 1,
        capacity_per_node: 4,
        placement: PlacementStrategy::Hash,
        ..SimConfig::default()
    };
    let mut avg = std::collections::HashMap::new();
    for policy in Policy::ALL {
        let platform = Platform::new(config.clone(), policy, repo.clone());
        let report = platform.run(&trace);
        avg.insert(policy, report.avg_service_time());
    }
    assert!(
        avg[&Policy::Optimus] < avg[&Policy::Pagurus],
        "optimus {:.3} !< pagurus {:.3}",
        avg[&Policy::Optimus],
        avg[&Policy::Pagurus]
    );
    assert!(
        avg[&Policy::Pagurus] < avg[&Policy::OpenWhisk],
        "pagurus {:.3} !< openwhisk {:.3}",
        avg[&Policy::Pagurus],
        avg[&Policy::OpenWhisk]
    );
    assert!(
        avg[&Policy::Optimus] < avg[&Policy::Tetris],
        "optimus {:.3} !< tetris {:.3}",
        avg[&Policy::Optimus],
        avg[&Policy::Tetris]
    );
    // Headline claim: 24.00%–47.56% latency reduction vs the best baseline.
    let best_baseline = avg[&Policy::Pagurus]
        .min(avg[&Policy::OpenWhisk])
        .min(avg[&Policy::Tetris]);
    let reduction = 1.0 - avg[&Policy::Optimus] / best_baseline;
    assert!(
        reduction > 0.10,
        "optimus reduction vs best baseline only {:.1}%",
        100.0 * reduction
    );
}

#[test]
fn deterministic_runs() {
    let repo = repo_with(vec![optimus_zoo::vgg::vgg16(), optimus_zoo::vgg::vgg19()]);
    let trace = trace_of(
        2_000.0,
        &[
            (0.0, "vgg16"),
            (100.0, "vgg19"),
            (500.0, "vgg16"),
            (900.0, "vgg19"),
        ],
    );
    let r1 = Platform::new(single_node_config(), Policy::Optimus, repo.clone()).run(&trace);
    let r2 = Platform::new(single_node_config(), Policy::Optimus, repo).run(&trace);
    assert_eq!(r1, r2);
}

#[test]
fn capacity_pressure_queues_requests() {
    let repo = repo_with(vec![optimus_zoo::resnet::resnet18()]);
    let config = SimConfig {
        nodes: 1,
        capacity_per_node: 1,
        placement: PlacementStrategy::Hash,
        ..SimConfig::default()
    };
    let platform = Platform::new(config, Policy::OpenWhisk, repo);
    // Three simultaneous requests on one slot: the later ones must queue.
    let trace = trace_of(
        100.0,
        &[(0.0, "resnet18"), (0.0, "resnet18"), (0.0, "resnet18")],
    );
    let report = platform.run(&trace);
    assert_eq!(report.len(), 3);
    assert_eq!(report.records[0].wait, 0.0);
    assert!(report.records[1].wait > 0.0);
    assert!(report.records[2].wait > report.records[1].wait);
    // Queued requests become warm starts once the container frees.
    assert_eq!(report.records[1].kind, StartKind::Warm);
}

#[test]
fn full_node_evicts_lru_for_new_function() {
    let repo = repo_with(vec![
        optimus_zoo::resnet::resnet18(),
        optimus_zoo::vgg::vgg11(),
        optimus_zoo::mobilenet::mobilenet_v1(1.0, 0),
    ]);
    let config = SimConfig {
        nodes: 1,
        capacity_per_node: 2,
        placement: PlacementStrategy::Hash,
        ..SimConfig::default()
    };
    let platform = Platform::new(config, Policy::OpenWhisk, repo);
    // Fill both slots, then a third function arrives while both are free:
    // the LRU container is evicted and a cold start happens.
    let trace = trace_of(
        300.0,
        &[(0.0, "resnet18"), (20.0, "vgg11"), (100.0, "mobilenet_v1")],
    );
    let report = platform.run(&trace);
    assert_eq!(report.records[2].kind, StartKind::Cold);
    assert_eq!(report.records[2].wait, 0.0);
}

#[test]
fn gpu_environment_increases_cold_latency() {
    let repo = repo_with(vec![optimus_zoo::resnet::resnet50()]);
    let trace = trace_of(100.0, &[(0.0, "resnet50")]);
    let cpu = Platform::new(single_node_config(), Policy::OpenWhisk, repo.clone()).run(&trace);
    let gpu_config = SimConfig {
        env: optimus_profile::Environment::Gpu,
        ..single_node_config()
    };
    // Note: repo cost model is CPU-profiled; the platform re-profiles load
    // costs with its own environment at construction.
    let gpu = Platform::new(gpu_config, Policy::OpenWhisk, repo).run(&trace);
    assert!(
        gpu.records[0].service_time() > cpu.records[0].service_time(),
        "gpu {:.2}s !> cpu {:.2}s",
        gpu.records[0].service_time(),
        cpu.records[0].service_time()
    );
    assert!(gpu.records[0].compute < cpu.records[0].compute);
}

#[test]
fn sharing_aware_placement_colocates_families() {
    let repo = repo_with(vec![
        optimus_zoo::vgg::vgg16(),
        optimus_zoo::vgg::vgg19(),
        optimus_zoo::bert::bert(optimus_zoo::BertConfig::new(optimus_zoo::BertSize::Tiny)),
        optimus_zoo::bert::bert(optimus_zoo::BertConfig::new(optimus_zoo::BertSize::Mini)),
    ]);
    let config = SimConfig {
        nodes: 2,
        ..SimConfig::default()
    };
    let platform = Platform::new(config, Policy::Optimus, repo);
    let arrivals: Vec<(f64, &str)> = vec![
        (0.0, "vgg16"),
        (10.0, "vgg19"),
        (20.0, "bert-tiny-uncased"),
        (30.0, "bert-mini-uncased"),
    ];
    let trace = trace_of(100.0, &arrivals);
    let placement = platform.placement(&trace);
    assert_eq!(placement["vgg16"], placement["vgg19"], "VGGs co-located");
    assert_eq!(
        placement["bert-tiny-uncased"], placement["bert-mini-uncased"],
        "BERTs co-located"
    );
    assert_ne!(
        placement["vgg16"], placement["bert-tiny-uncased"],
        "families separated"
    );
}
