//! Token-level LLM serving integration tests: `llm: None` output carries
//! no `llm` key (byte-identical to the pre-LLM schema), decode loops are
//! continuously batched (arrivals join running batches at iteration
//! boundaries and share the weight sweep), batching patches earlier
//! records coherently, and runs are deterministic.

use std::sync::Arc;

use optimus_core::{GroupPlanner, ModelRepository};
use optimus_sim::{LlmConfig, PlacementStrategy, Platform, Policy, SimConfig};
use optimus_workload::{Invocation, Trace};
use optimus_zoo::{gpt, GptConfig, GptSize};

fn repo_with(models: Vec<optimus_model::ModelGraph>) -> Arc<ModelRepository> {
    let repo = ModelRepository::new(Box::new(GroupPlanner));
    let cost = optimus_profile::CostModel::default();
    for m in models {
        repo.register(m, &cost);
    }
    Arc::new(repo)
}

fn config(llm: Option<LlmConfig>) -> SimConfig {
    SimConfig {
        nodes: 1,
        placement: PlacementStrategy::Hash,
        llm,
        ..SimConfig::default()
    }
}

fn burst_trace(f: &str, gap: f64, count: usize) -> Trace {
    let inv: Vec<Invocation> = (0..count)
        .map(|i| Invocation {
            time: i as f64 * gap,
            function: f.to_string(),
        })
        .collect();
    Trace::new(count as f64 * gap + 600.0, inv)
}

#[test]
fn llm_off_report_has_no_llm_key() {
    let repo = repo_with(vec![optimus_zoo::resnet::resnet18()]);
    let trace = burst_trace("resnet18", 5.0, 20);
    let report = Platform::new(config(None), Policy::Optimus, repo).run(&trace);
    let json = serde_json::to_string(&report).unwrap();
    assert!(
        !json.contains("\"llm\""),
        "an LLM-less report serializes exactly as before the layer existed"
    );
}

#[test]
fn decode_loops_are_continuously_batched() {
    let model = gpt(GptConfig::new(GptSize::G125M));
    let name = model.name().to_string();
    let repo = repo_with(vec![model]);
    // Arrivals far faster than a decode loop drains: without iteration-
    // level admission each would wait for the full loop ahead of it.
    let trace = burst_trace(&name, 0.05, 40);
    let report =
        Platform::new(config(Some(LlmConfig::default())), Policy::Optimus, repo).run(&trace);
    let llm = report.llm.as_ref().expect("llm workload reports");
    assert_eq!(llm.requests, 40);
    assert!(llm.joins > 0, "bursty arrivals join running batches");
    assert!(llm.peak_batch > 1, "batches actually form");
    assert!(llm.tokens >= 40 * LlmConfig::default().min_decode_tokens as u64);
    // TTFT distribution is coherent.
    assert!(llm.ttft_p50 > 0.0);
    assert!(llm.ttft_p50 <= llm.ttft_p95);
    assert!(llm.ttft_p95 <= llm.ttft_p99);
    assert!(llm.ttft_p99 <= llm.ttft_max);
    // Patched records stay physical: every decode loop takes positive
    // time and no request finishes before it arrived.
    for r in &report.records {
        assert!(r.compute > 0.0, "decode loop has positive duration");
        assert!(r.wait >= 0.0);
    }
}

#[test]
fn batching_beats_serial_decode_loops() {
    let model = gpt(GptConfig::new(GptSize::G125M));
    let name = model.name().to_string();
    let repo = repo_with(vec![model]);
    // Arrivals much faster than one solo decode loop (~40 ms), so a
    // serial scheduler accumulates queueing the batched one amortizes.
    let trace = burst_trace(&name, 0.002, 32);
    // One container slot: every request must share it, so the comparison
    // isolates iteration-level batching from container-level fan-out.
    let one_slot = |llm: LlmConfig| SimConfig {
        capacity_per_node: 1,
        ..config(Some(llm))
    };
    let batched = Platform::new(
        one_slot(LlmConfig::default()),
        Policy::Optimus,
        repo.clone(),
    )
    .run(&trace);
    let serial_cfg = LlmConfig {
        max_batch: 1,
        ..LlmConfig::default()
    };
    let serial = Platform::new(one_slot(serial_cfg), Policy::Optimus, repo).run(&trace);
    assert_eq!(
        serial.llm.as_ref().unwrap().joins,
        0,
        "max_batch 1 cannot join"
    );
    assert!(
        batched.llm.as_ref().unwrap().ttft_p99 < serial.llm.as_ref().unwrap().ttft_p99,
        "continuous batching cuts tail TTFT: batched {} vs serial {}",
        batched.llm.as_ref().unwrap().ttft_p99,
        serial.llm.as_ref().unwrap().ttft_p99
    );
}

#[test]
fn patched_cold_record_does_not_recharge_startup_in_compute() {
    let model = gpt(GptConfig::new(GptSize::G125M));
    let name = model.name().to_string();
    let repo = repo_with(vec![model]);
    // Fixed output length: every sequence decodes the same token count,
    // so two sequences admitted into the same batch at the same boundary
    // project the same absolute finish time.
    let lc = LlmConfig {
        min_decode_tokens: 16,
        max_decode_tokens: 16,
        ..LlmConfig::default()
    };
    // The second request arrives while the first is still paying
    // init + load, so it joins the prefill batch the cold start
    // registered at its future decode start — the join re-projects
    // (patches) the cold record.
    let trace = burst_trace(&name, 0.01, 2);
    let report = Platform::new(config(Some(lc)), Policy::Optimus, repo).run(&trace);
    assert_eq!(report.llm.as_ref().unwrap().joins, 1, "joiner during load");
    let cold = &report.records[0];
    let join = &report.records[1];
    assert!(
        cold.init + cold.load > 0.0,
        "first request pays a cold start"
    );
    assert_eq!(join.init + join.load, 0.0, "joiner pays no startup");
    // Both sequences decode the same batch, same boundary, same token
    // count: their engine-projected absolute finish times are equal. The
    // cold record's patched compute must therefore satisfy
    // arrival + wait + init + load + compute == finish — i.e. the patch
    // must not re-charge init + load inside compute.
    let cold_finish = cold.arrival + cold.service_time();
    let join_finish = join.arrival + join.service_time();
    assert!(
        (cold_finish - join_finish).abs() < 1e-9,
        "patched cold record ends when its batch says it does: \
         cold {cold_finish} vs joiner {join_finish}"
    );
}

#[test]
fn llm_runs_are_deterministic() {
    let run = || {
        let model = gpt(GptConfig::new(GptSize::G125M));
        let name = model.name().to_string();
        let repo = repo_with(vec![model]);
        let trace = burst_trace(&name, 0.1, 30);
        let report =
            Platform::new(config(Some(LlmConfig::default())), Policy::Optimus, repo).run(&trace);
        serde_json::to_string(&report).unwrap()
    };
    assert_eq!(run(), run(), "same seed, byte-identical report");
}
