//! Tests of the content-addressed weight-store integration: byte-accurate
//! load pricing by tier residency, keep-alive demotion instead of
//! forgetting, chunk sharing across containers, and the guarantee that
//! `store: None` reproduces the legacy load model exactly.

use std::sync::Arc;

use optimus_core::{GroupPlanner, ModelRepository};
use optimus_profile::CostModel;
use optimus_sim::{PlacementStrategy, Platform, Policy, SimConfig, StartKind, StoreConfig};
use optimus_workload::{Invocation, Trace};

fn repo_with(models: Vec<optimus_model::ModelGraph>) -> Arc<ModelRepository> {
    let repo = ModelRepository::new(Box::new(GroupPlanner));
    let cost = CostModel::default();
    for m in models {
        repo.register(m, &cost);
    }
    Arc::new(repo)
}

fn trace_of(duration: f64, arrivals: &[(f64, &str)]) -> Trace {
    Trace::new(
        duration,
        arrivals
            .iter()
            .map(|(t, f)| Invocation {
                time: *t,
                function: (*f).to_string(),
            })
            .collect(),
    )
}

fn config(store: Option<StoreConfig>) -> SimConfig {
    SimConfig {
        nodes: 1,
        capacity_per_node: 8,
        placement: PlacementStrategy::Hash,
        store,
        ..SimConfig::default()
    }
}

#[test]
fn no_store_reproduces_legacy_path() {
    let trace = trace_of(2_000.0, &[(0.0, "resnet18"), (660.0, "resnet18")]);
    let repo = repo_with(vec![optimus_zoo::resnet::resnet18()]);
    let legacy = Platform::new(config(None), Policy::OpenWhisk, repo.clone()).run(&trace);
    let stored = Platform::new(
        config(Some(StoreConfig::default())),
        Policy::OpenWhisk,
        repo,
    )
    .run(&trace);
    assert!(legacy.store.is_none(), "no store, no stats");
    assert!(stored.store.is_some(), "store configured, stats reported");
    // Same container lifecycle either way; the store only *adds* transport
    // to non-warm loads.
    for (a, b) in legacy.records.iter().zip(&stored.records) {
        assert_eq!(a.kind, b.kind);
        assert_eq!(a.init, b.init);
        assert!(b.load > a.load, "every cold start pays transport on top");
    }
}

#[test]
fn warmer_residency_loads_strictly_faster() {
    // Two cold starts separated by a keep-alive expiry. Without a store the
    // second cold start costs exactly the first; with one, eviction demotes
    // the chunks instead of dropping them, so the second start pays for a
    // warmer tier: remote > disk > memory, strictly.
    let trace = trace_of(2_000.0, &[(0.0, "resnet18"), (660.0, "resnet18")]);
    let run = |store: Option<StoreConfig>| {
        let repo = repo_with(vec![optimus_zoo::resnet::resnet18()]);
        let report = Platform::new(config(store), Policy::OpenWhisk, repo).run(&trace);
        assert_eq!(report.records[0].kind, StartKind::Cold);
        assert_eq!(report.records[1].kind, StartKind::Cold);
        (report.records[0].load, report.records[1].load)
    };
    let (legacy_first, legacy_second) = run(None);
    assert_eq!(legacy_first, legacy_second, "legacy model is byte-agnostic");
    let (remote_first, memory_second) = run(Some(StoreConfig::default()));
    // Memory budget 0: released chunks spill straight to the disk tier.
    let disk_cfg = StoreConfig {
        node_memory_bytes: 0,
        ..StoreConfig::default()
    };
    let (_, disk_second) = run(Some(disk_cfg));
    assert!(
        remote_first > disk_second && disk_second > memory_second,
        "remote {remote_first} > disk {disk_second} > memory {memory_second}"
    );
    assert!(
        memory_second > legacy_second,
        "memory transport is not free"
    );
}

#[test]
fn second_container_of_same_model_shares_every_chunk() {
    // Two overlapping requests of one function: the second container's
    // chunks are all already mapped at container tier — zero transport —
    // and the node-level dedup ratio reflects the double residency.
    let repo = repo_with(vec![optimus_zoo::resnet::resnet18()]);
    let trace = trace_of(100.0, &[(0.0, "resnet18"), (0.5, "resnet18")]);
    let legacy = Platform::new(config(None), Policy::OpenWhisk, repo.clone()).run(&trace);
    let stored = Platform::new(
        config(Some(StoreConfig::default())),
        Policy::OpenWhisk,
        repo,
    )
    .run(&trace);
    assert_eq!(stored.records[1].kind, StartKind::Cold);
    assert!(
        stored.records[0].load > legacy.records[0].load,
        "first container fetches from remote"
    );
    assert_eq!(
        stored.records[1].load, legacy.records[1].load,
        "second container finds every chunk at container tier: no transport"
    );
    let stats = stored.store.unwrap();
    assert!(
        (stats.dedup_ratio - 2.0).abs() < 1e-12,
        "two references per chunk"
    );
    assert!(stats.hits > 0 && stats.fetched_bytes < stats.admitted_bytes);
}

#[test]
fn plan_payload_pinning_makes_repeat_transforms_cheaper() {
    // Optimus transforms vgg16 → vgg19 twice, with a keep-alive expiry in
    // between. The first transform fetches the plan payload from remote;
    // eviction demotes everything to node memory (the payload is pinned, so
    // LRU pressure cannot forget it), and the second transform finds its
    // delta a tier warmer.
    let repo = repo_with(vec![optimus_zoo::vgg::vgg16(), optimus_zoo::vgg::vgg19()]);
    let trace = trace_of(
        3_000.0,
        &[
            (0.0, "vgg16"),
            (200.0, "vgg19"),
            (900.0, "vgg16"),
            (1_100.0, "vgg19"),
        ],
    );
    let report =
        Platform::new(config(Some(StoreConfig::default())), Policy::Optimus, repo).run(&trace);
    let kinds: Vec<StartKind> = report.records.iter().map(|r| r.kind).collect();
    assert_eq!(
        kinds,
        vec![
            StartKind::Cold,
            StartKind::Transform,
            StartKind::Cold,
            StartKind::Transform
        ]
    );
    assert!(
        report.records[2].load < report.records[0].load,
        "second vgg16 cold start reads node memory, not remote"
    );
    assert!(
        report.records[3].load < report.records[1].load,
        "second transform finds the plan payload resident"
    );
    let stats = report.store.unwrap();
    assert!(stats.pinned > 0, "plan working set is pinned");
}
