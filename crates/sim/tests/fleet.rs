//! Elastic-fleet integration tests: flash crowds trigger scale-out,
//! joiners warm over P2P chunk multicast with byte conservation against
//! the remote-only baseline, crashed multicast roots re-root the tree
//! without dropping requests, idle extras drain back out, and the
//! `fleet: None` path stays byte-identical to the static simulator.

use std::sync::Arc;

use optimus_core::{GroupPlanner, ModelRepository};
use optimus_faults::{FaultKind, FaultPlan, FaultSpec, ScheduledFault};
use optimus_profile::CostModel;
use optimus_sim::{FleetConfig, PlacementStrategy, Platform, Policy, SimConfig, StoreConfig};
use optimus_workload::{Invocation, Trace};

fn repo_with(models: Vec<optimus_model::ModelGraph>) -> Arc<ModelRepository> {
    let repo = ModelRepository::new(Box::new(GroupPlanner));
    let cost = CostModel::default();
    for m in models {
        repo.register(m, &cost);
    }
    Arc::new(repo)
}

/// A flash crowd: one request of `f` every `gap` seconds for `secs`.
fn crowd(f: &str, gap: f64, secs: f64) -> Trace {
    let n = (secs / gap) as usize;
    Trace::new(
        secs + 600.0,
        (0..n)
            .map(|i| Invocation {
                time: i as f64 * gap,
                function: f.to_string(),
            })
            .collect(),
    )
}

/// A tight fleet: one initial node, two slots, fast trigger, one
/// scale-out (huge cooldown) of up to three joiners.
fn fleet() -> FleetConfig {
    FleetConfig {
        max_nodes: 4,
        scale_out_pressure: 0.8,
        sustain_s: 2.0,
        cooldown_s: 1.0e6,
        step: 3,
        scale_in_idle_s: 1.0e6,
        provision_s: 1.0,
        multicast: true,
    }
}

fn config(fleet: Option<FleetConfig>) -> SimConfig {
    SimConfig {
        nodes: 1,
        capacity_per_node: 2,
        placement: PlacementStrategy::Hash,
        store: Some(StoreConfig::default()),
        fleet,
        ..SimConfig::default()
    }
}

#[test]
fn flash_crowd_scales_out_with_multicast_warming() {
    let repo = repo_with(vec![optimus_zoo::resnet::resnet18()]);
    let trace = crowd("resnet18", 0.1, 60.0);
    let report = Platform::new(config(Some(fleet())), Policy::Optimus, repo).run(&trace);
    assert_eq!(report.len(), trace.len(), "every request is served");
    let fl = report.fleet.expect("fleet layer enabled");
    assert_eq!(fl.scale_outs, 1, "one sustained spike, one scale-out");
    assert_eq!(fl.nodes_added, 3, "the full step joins");
    assert_eq!(fl.peak_nodes, 4);
    assert_eq!(fl.multicast_waves, 1);
    assert_eq!(
        fl.remote_warm_bytes, 0,
        "the initial node seeds the tree; no origin fetch"
    );
    assert!(
        fl.multicast_bytes > 0,
        "joiners warmed over the interconnect"
    );
    // 1 seed, 3 joiners: warm set 1 → 2 → 4, so exactly 2 rounds — the
    // O(log N) bound the subsystem exists for.
    assert_eq!(fl.multicast_rounds, 2);
    assert_eq!(fl.reroots, 0, "no faults, no re-roots");
    assert!(fl.time_to_all_warm > 0.0 && fl.time_to_all_warm.is_finite());
    for r in &report.records {
        assert!(r.wait >= 0.0 && r.wait.is_finite());
    }
}

#[test]
fn multicast_conserves_bytes_and_beats_remote_only() {
    let repo = repo_with(vec![optimus_zoo::resnet::resnet18()]);
    let trace = crowd("resnet18", 0.1, 60.0);
    let run = |multicast: bool| {
        let fc = FleetConfig {
            multicast,
            ..fleet()
        };
        Platform::new(config(Some(fc)), Policy::Optimus, repo.clone())
            .run(&trace)
            .fleet
            .expect("fleet layer enabled")
    };
    let p2p = run(true);
    let linear = run(false);
    // Both runs fire the same single scale-out (the decision precedes any
    // joiner readiness, so the observed state is identical up to it).
    assert_eq!(p2p.scale_outs, 1);
    assert_eq!(linear.scale_outs, 1);
    assert_eq!(p2p.nodes_added, linear.nodes_added);
    // Byte conservation: every joiner receives the full model exactly
    // once either way — multicast only changes the *source* of the bytes.
    assert_eq!(
        p2p.multicast_bytes + p2p.remote_warm_bytes,
        linear.remote_warm_bytes,
        "same payload, different edges"
    );
    assert_eq!(linear.multicast_bytes, 0, "baseline never uses peers");
    // And the tree is never slower than the linear origin fetches.
    assert!(
        p2p.time_to_all_warm <= linear.time_to_all_warm + 1e-9,
        "multicast {} s must not exceed remote-only {} s",
        p2p.time_to_all_warm,
        linear.time_to_all_warm
    );
}

#[test]
fn root_crash_mid_transfer_reroots_and_serves_every_request() {
    let repo = repo_with(vec![optimus_zoo::resnet::resnet18()]);
    let trace = crowd("resnet18", 0.1, 60.0);
    // Long provisioning keeps the wave's transfers pending at t = 5.0,
    // when the only seed (node 0) crashes: the re-rooted plan has no
    // surviving replica and must fall back to one origin injection.
    let fc = FleetConfig {
        sustain_s: 1.0,
        provision_s: 10.0,
        ..fleet()
    };
    let plan = FaultPlan {
        spec: FaultSpec::off(1),
        schedule: vec![ScheduledFault {
            at: 5.0,
            node: 0,
            kind: FaultKind::NodeCrash,
        }],
    };
    let cfg = SimConfig {
        faults: Some(plan),
        ..config(Some(fc))
    };
    let report = Platform::new(cfg, Policy::Optimus, repo).run(&trace);
    assert_eq!(report.len(), trace.len(), "no request is dropped");
    let fl = report.fleet.expect("fleet layer enabled");
    assert_eq!(fl.scale_outs, 1);
    assert_eq!(fl.reroots, 1, "the crashed root forces one replan");
    assert!(
        fl.remote_warm_bytes > 0,
        "no replica survived: the re-rooted tree injects from the origin"
    );
    assert_eq!(fl.nodes_added, 3, "survivors still finish warming");
    let stats = report.faults.expect("fault layer enabled").stats;
    assert_eq!(stats.node_crashes, 1);
    for r in &report.records {
        assert!(r.wait >= 0.0 && r.wait.is_finite());
    }
}

#[test]
fn idle_extras_drain_back_out() {
    let repo = repo_with(vec![optimus_zoo::resnet::resnet18()]);
    // A 60 s crowd, then sparse keep-alive traffic that drives the
    // control loop (fleet decisions happen at arrivals) long after the
    // extras' containers expired and their idle window elapsed.
    let mut inv: Vec<Invocation> = (0..600)
        .map(|i| Invocation {
            time: i as f64 * 0.1,
            function: "resnet18".to_string(),
        })
        .collect();
    for t in [700.0, 1400.0, 2100.0, 2800.0] {
        inv.push(Invocation {
            time: t,
            function: "resnet18".to_string(),
        });
    }
    let trace = Trace::new(3_000.0, inv);
    let fc = FleetConfig {
        scale_in_idle_s: 120.0,
        ..fleet()
    };
    let report = Platform::new(config(Some(fc)), Policy::Optimus, repo).run(&trace);
    let fl = report.fleet.expect("fleet layer enabled");
    assert_eq!(fl.scale_outs, 1);
    assert!(
        fl.scale_ins >= 1 && fl.nodes_removed >= 1,
        "idle extras must drain: {fl:?}"
    );
    assert!(
        fl.nodes_removed <= fl.nodes_added,
        "cannot drain more than joined"
    );
}

#[test]
fn fleet_off_is_byte_identical_and_omits_the_report_key() {
    let repo = repo_with(vec![optimus_zoo::resnet::resnet18()]);
    let trace = crowd("resnet18", 5.0, 100.0);
    let off = Platform::new(config(None), Policy::Optimus, repo.clone()).run(&trace);
    let json = serde_json::to_string(&off).unwrap();
    assert!(
        !json.contains("\"fleet\""),
        "a fleet-less report serializes exactly as before the fleet layer existed"
    );
    // A fleet with zero headroom can never scale: the run must reproduce
    // the static path record-for-record.
    let capped = FleetConfig {
        max_nodes: 1,
        ..fleet()
    };
    let on = Platform::new(config(Some(capped)), Policy::Optimus, repo).run(&trace);
    let fl = on.fleet.expect("fleet layer enabled");
    assert_eq!(fl.scale_outs, 0);
    assert_eq!(fl.peak_nodes, 1);
    assert_eq!(
        serde_json::to_string(&off.records).unwrap(),
        serde_json::to_string(&on.records).unwrap(),
        "zero-headroom fleet must not perturb request records"
    );
    assert_eq!(off.store, on.store, "store stats identical");
}

#[test]
fn fleet_runs_are_deterministic() {
    let repo = repo_with(vec![
        optimus_zoo::resnet::resnet18(),
        optimus_zoo::vgg::vgg11(),
    ]);
    let trace = crowd("resnet18", 0.1, 60.0);
    let run = || Platform::new(config(Some(fleet())), Policy::Optimus, repo.clone()).run(&trace);
    let a = run();
    let b = run();
    assert_eq!(
        serde_json::to_string(&a).unwrap(),
        serde_json::to_string(&b).unwrap(),
        "same config + trace ⇒ byte-identical reports"
    );
}

#[test]
fn plan_warm_ships_artifact_bytes_to_every_joiner() {
    // Two registered models ⇒ a non-empty plan cache to persist.
    let repo = repo_with(vec![
        optimus_zoo::resnet::resnet18(),
        optimus_zoo::vgg::vgg11(),
    ]);
    let sc = StoreConfig::default();
    let artifact_bytes: u64 = repo
        .export_plan_artifact()
        .chunks(sc.chunk_bytes)
        .iter()
        .map(|c| c.bytes)
        .sum();
    assert!(artifact_bytes > 0, "the catalog has cached plans");

    let trace = crowd("resnet18", 0.1, 60.0);
    let run = |plan_warm: bool| {
        let cfg = SimConfig {
            plan_warm,
            ..config(Some(fleet()))
        };
        Platform::new(cfg, Policy::Optimus, repo.clone())
            .run(&trace)
            .fleet
            .expect("fleet layer enabled")
    };
    let base = run(false);
    let warm = run(true);
    assert_eq!(base.scale_outs, warm.scale_outs);
    assert_eq!(base.nodes_added, warm.nodes_added);
    // Each joiner receives the persisted plan cache exactly once, on top
    // of the model weights — multicast or origin, the payload grows by
    // the artifact size per joiner.
    assert_eq!(
        warm.multicast_bytes + warm.remote_warm_bytes,
        base.multicast_bytes + base.remote_warm_bytes + warm.nodes_added * artifact_bytes,
        "joiner warm-up carries the plan artifact alongside the weights"
    );
}
