//! Arrival-prediction integration tests: `predict: None` and an inert
//! config (adaptive keep-alive off, speculation off) are byte-identical,
//! adaptive windows hold containers across gaps a fixed window drops,
//! speculative transformation turns predicted arrivals into warm hits
//! with misprediction cost bounded by the cost-model gate, and runs stay
//! deterministic.

use std::sync::Arc;

use optimus_core::{GroupPlanner, ModelRepository};
use optimus_sim::{
    PlacementStrategy, Platform, Policy, PredictConfig, SimConfig, SpeculationConfig, StartKind,
};
use optimus_workload::{Invocation, Trace};

fn repo_with(models: Vec<optimus_model::ModelGraph>) -> Arc<ModelRepository> {
    let repo = ModelRepository::new(Box::new(GroupPlanner));
    let cost = optimus_profile::CostModel::default();
    for m in models {
        repo.register(m, &cost);
    }
    Arc::new(repo)
}

fn config(predict: Option<PredictConfig>) -> SimConfig {
    SimConfig {
        nodes: 1,
        placement: PlacementStrategy::Hash,
        predict,
        ..SimConfig::default()
    }
}

/// Periodic arrivals of `f` every `gap` seconds starting at 0.
fn periodic(inv: &mut Vec<Invocation>, f: &str, gap: f64, until: f64) {
    let mut t = 0.0;
    while t < until {
        inv.push(Invocation {
            time: t,
            function: f.to_string(),
        });
        t += gap;
    }
}

#[test]
fn predict_off_and_inert_are_byte_identical() {
    let repo = repo_with(vec![
        optimus_zoo::resnet::resnet18(),
        optimus_zoo::vgg::vgg11(),
    ]);
    let mut inv = Vec::new();
    periodic(&mut inv, "resnet18", 700.0, 5_000.0);
    periodic(&mut inv, "vgg11", 130.0, 5_000.0);
    let trace = Trace::new(5_000.0, inv);
    let off = Platform::new(config(None), Policy::Optimus, repo.clone()).run(&trace);
    let json = serde_json::to_string(&off).unwrap();
    assert!(
        !json.contains("\"predict\""),
        "a prediction-less report serializes exactly as before the layer existed"
    );
    // Inert predictor: observes arrivals but never changes behavior —
    // request records must be byte-identical to prediction off.
    let inert = Platform::new(
        config(Some(PredictConfig::inert())),
        Policy::Optimus,
        repo.clone(),
    )
    .run(&trace);
    let pr = inert.predict.as_ref().expect("predict layer enabled");
    assert_eq!(pr.observed_arrivals, trace.len() as u64);
    assert_eq!(pr.speculations, 0);
    assert_eq!(pr.spec_mispredictions, 0);
    assert_eq!(
        serde_json::to_string(&off.records).unwrap(),
        serde_json::to_string(&inert.records).unwrap(),
        "an inert predictor must not perturb request records"
    );
    // The inert window statistics are exactly the fixed baseline.
    assert_eq!(pr.window_samples, trace.len() as u64);
    assert!((pr.mean_window() - 600.0).abs() < 1e-12);
}

#[test]
fn adaptive_keep_alive_holds_containers_across_long_gaps() {
    // Arrivals every 700 s: a fixed 600 s window evicts the container
    // right before each return; the learned window (tail × margin ≈
    // 875 s) keeps it warm once the histogram has history.
    let repo = repo_with(vec![optimus_zoo::resnet::resnet18()]);
    let mut inv = Vec::new();
    periodic(&mut inv, "resnet18", 700.0, 8_000.0);
    let trace = Trace::new(8_000.0, inv);
    let fixed = Platform::new(config(None), Policy::Optimus, repo.clone()).run(&trace);
    let adaptive_cfg = PredictConfig {
        adaptive_keep_alive: true,
        speculation: None,
        ..PredictConfig::default()
    };
    let adaptive =
        Platform::new(config(Some(adaptive_cfg)), Policy::Optimus, repo.clone()).run(&trace);
    let warm = |r: &optimus_sim::SimReport| {
        r.records
            .iter()
            .filter(|x| x.kind == StartKind::Warm)
            .count()
    };
    assert_eq!(warm(&fixed), 0, "700 s gaps never warm-start at 600 s");
    assert!(
        warm(&adaptive) >= 5,
        "learned windows must hold the container once history accrues: {} warm",
        warm(&adaptive)
    );
    let pr = adaptive.predict.expect("predict layer enabled");
    assert!(
        pr.mean_window() > 600.0,
        "windows stretched beyond the default: {}",
        pr.mean_window()
    );
    assert!(pr.window_seconds_sum.is_finite());
}

#[test]
fn speculation_turns_predicted_arrivals_into_warm_hits() {
    // resnet18 returns every 730 s (past keep-alive, so reactively it
    // always pays a transform/cold start). vgg11 arrives every 10 s and
    // drives the event clock; resnet34 refreshes every 400 s so an idle
    // same-family donor is always available. With speculation on, the
    // predictor converts the donor ahead of each forecast return.
    let repo = repo_with(vec![
        optimus_zoo::resnet::resnet18(),
        optimus_zoo::resnet::resnet34(),
        optimus_zoo::vgg::vgg11(),
    ]);
    let mut inv = Vec::new();
    periodic(&mut inv, "resnet18", 730.0, 6_000.0);
    periodic(&mut inv, "resnet34", 400.0, 6_000.0);
    periodic(&mut inv, "vgg11", 10.0, 6_000.0);
    let mut trace = Trace::new(6_000.0, inv);
    trace.invocations.sort_by(|a, b| {
        a.time
            .partial_cmp(&b.time)
            .unwrap()
            .then_with(|| a.function.cmp(&b.function))
    });
    let spec_cfg = PredictConfig {
        adaptive_keep_alive: false,
        speculation: Some(SpeculationConfig {
            lead: 12.0,
            aggressiveness: 1.0,
        }),
        ..PredictConfig::default()
    };
    let baseline = Platform::new(config(None), Policy::Optimus, repo.clone()).run(&trace);
    let spec = Platform::new(config(Some(spec_cfg)), Policy::Optimus, repo.clone()).run(&trace);
    let pr = spec.predict.as_ref().expect("predict layer enabled");
    assert!(pr.speculations >= 1, "speculative transforms fired: {pr:?}");
    assert!(
        pr.spec_hits >= 1,
        "a predicted arrival warm-started: {pr:?}"
    );
    assert!(
        pr.max_spec_over_budget < 0.0,
        "every speculation must cost less than the cold start it replaces: {}",
        pr.max_spec_over_budget
    );
    assert!(pr.spec_saved_seconds > pr.spec_cost_seconds);
    let service_18 = |r: &optimus_sim::SimReport| {
        let (n, sum) = r
            .records
            .iter()
            .filter(|x| x.function == "resnet18")
            .fold((0usize, 0.0), |(n, s), x| (n + 1, s + x.service_time()));
        sum / n as f64
    };
    let warm_18 = |r: &optimus_sim::SimReport| {
        r.records
            .iter()
            .filter(|x| x.function == "resnet18" && x.kind == StartKind::Warm)
            .count()
    };
    assert_eq!(warm_18(&baseline), 0, "reactively, 730 s gaps never warm");
    assert!(
        warm_18(&spec) >= 3,
        "speculation hits surface as warm starts: {} warm",
        warm_18(&spec)
    );
    // The predicted function's latency improves; speculation itself runs
    // in the background, off the request path.
    assert!(service_18(&spec) < service_18(&baseline));
}

#[test]
fn predictive_runs_are_deterministic() {
    let repo = repo_with(vec![
        optimus_zoo::resnet::resnet18(),
        optimus_zoo::resnet::resnet34(),
        optimus_zoo::vgg::vgg11(),
    ]);
    let mut inv = Vec::new();
    periodic(&mut inv, "resnet18", 730.0, 4_000.0);
    periodic(&mut inv, "resnet34", 400.0, 4_000.0);
    periodic(&mut inv, "vgg11", 10.0, 4_000.0);
    let trace = Trace::new(4_000.0, inv);
    let run = || {
        Platform::new(
            config(Some(PredictConfig::default())),
            Policy::Optimus,
            repo.clone(),
        )
        .run(&trace)
    };
    let a = run();
    let b = run();
    assert_eq!(
        serde_json::to_string(&a).unwrap(),
        serde_json::to_string(&b).unwrap(),
        "same config + trace ⇒ byte-identical reports"
    );
    assert!(serde_json::to_string(&a).unwrap().contains("\"predict\""));
}
