//! Simulator ↔ telemetry integration: a run exports the same metric
//! families as the live gateway, through the shared `TelemetrySink`.

use std::sync::Arc;

use optimus_core::{GroupPlanner, ModelRepository};
use optimus_profile::CostModel;
use optimus_sim::{PlacementStrategy, Platform, Policy, SimConfig, StartKind};
use optimus_telemetry::{MetricsRegistry, MetricsSink, TelemetrySink};
use optimus_workload::{Invocation, Trace};

fn repo_with(models: Vec<optimus_model::ModelGraph>) -> Arc<ModelRepository> {
    let repo = ModelRepository::new(Box::new(GroupPlanner));
    let cost = CostModel::default();
    for m in models {
        repo.register(m, &cost);
    }
    Arc::new(repo)
}

fn trace_of(duration: f64, arrivals: &[(f64, &str)]) -> Trace {
    Trace::new(
        duration,
        arrivals
            .iter()
            .map(|(t, f)| Invocation {
                time: *t,
                function: (*f).to_string(),
            })
            .collect(),
    )
}

#[test]
fn simulator_run_exports_canonical_metric_names() {
    let registry = Arc::new(MetricsRegistry::new());
    let repo = repo_with(vec![
        optimus_zoo::resnet::resnet18(),
        optimus_zoo::resnet::resnet34(),
    ]);
    repo.set_metrics_registry(&registry);
    let config = SimConfig {
        nodes: 1,
        capacity_per_node: 8,
        placement: PlacementStrategy::Hash,
        idle_threshold: 10.0,
        ..SimConfig::default()
    };
    let sink: Arc<dyn TelemetrySink> = Arc::new(MetricsSink::new(registry.clone()));
    let platform = Platform::new(config, Policy::Optimus, repo).with_sink(sink);
    // Scripted: cold resnet18; warm resnet18 once the first completes
    // (30 s later); then resnet34 transforms the by-then-idle resnet18
    // container (idle threshold is 10 s, gap is 70 s).
    let trace = trace_of(
        1000.0,
        &[(0.0, "resnet18"), (30.0, "resnet18"), (101.0, "resnet34")],
    );
    let report = platform.run(&trace);
    assert_eq!(report.records[0].kind, StartKind::Cold);
    assert_eq!(report.records[1].kind, StartKind::Warm);
    assert_eq!(report.records[2].kind, StartKind::Transform);

    // The registry now holds exactly the counters the live gateway's
    // /metrics endpoint would export for the same request sequence.
    let kind = |k: &str| {
        registry
            .counter("optimus_requests_total", &[("kind", k)])
            .get()
    };
    assert_eq!(kind("cold"), 1);
    assert_eq!(kind("warm"), 1);
    assert_eq!(kind("transform"), 1);
    assert_eq!(
        registry.histogram("optimus_request_seconds", &[]).count(),
        3
    );
    for phase in ["wait", "init", "load", "compute"] {
        assert_eq!(
            registry
                .histogram("optimus_phase_seconds", &[("phase", phase)])
                .count(),
            3,
            "phase {phase}"
        );
    }
    // The simulated transform consulted the shared plan cache.
    assert_eq!(
        registry
            .counter("optimus_plan_cache_total", &[("result", "hit")])
            .get(),
        1
    );
    // Load histogram saw the scratch load (cold) and the plan cost
    // (transform); the warm request contributed a zero.
    let load = registry.histogram("optimus_phase_seconds", &[("phase", "load")]);
    assert!(load.sum() > 0.0);

    // Prometheus text exposition carries every family.
    let text = registry.render_prometheus();
    for family in [
        "optimus_requests_total",
        "optimus_request_seconds",
        "optimus_phase_seconds",
        "optimus_plan_cache_total",
    ] {
        assert!(text.contains(family), "missing {family} in:\n{text}");
    }
}
