//! Tests of the predictive-prewarming extension (layering the §2.2
//! prewarming class on top of Optimus, as the paper suggests).

use std::sync::Arc;

use optimus_core::{GroupPlanner, ModelRepository};
use optimus_profile::CostModel;
use optimus_sim::{PlacementStrategy, Platform, Policy, PrewarmConfig, SimConfig, StartKind};
use optimus_workload::{Invocation, Trace};

fn repo_with(models: Vec<optimus_model::ModelGraph>) -> Arc<ModelRepository> {
    let repo = ModelRepository::new(Box::new(GroupPlanner));
    let cost = CostModel::default();
    for m in models {
        repo.register(m, &cost);
    }
    Arc::new(repo)
}

fn periodic_trace(period: f64, n: usize, f: &str) -> Vec<(f64, String)> {
    (0..n)
        .map(|i| (period * (i + 1) as f64, f.to_string()))
        .collect()
}

fn config(prewarm: Option<PrewarmConfig>) -> SimConfig {
    SimConfig {
        nodes: 1,
        capacity_per_node: 4,
        placement: PlacementStrategy::Hash,
        prewarm,
        ..SimConfig::default()
    }
}

fn run(
    prewarm: Option<PrewarmConfig>,
    arrivals: &[(f64, String)],
    duration: f64,
) -> optimus_sim::SimReport {
    let repo = repo_with(vec![
        optimus_zoo::vgg::vgg16(),
        optimus_zoo::vgg::vgg19(),
        optimus_zoo::resnet::resnet18(),
    ]);
    let trace = Trace::new(
        duration,
        arrivals
            .iter()
            .map(|(t, f)| Invocation {
                time: *t,
                function: f.clone(),
            })
            .collect(),
    );
    Platform::new(config(prewarm), Policy::Optimus, repo).run(&trace)
}

#[test]
fn prewarming_converts_transforms_into_warm_starts() {
    // Two periodic functions alternate, each recurring every 700 s — past
    // the keep-alive horizon's comfort but predictable. Without
    // prewarming every arrival needs a reactive transform (or cold start);
    // with prewarming the donor is transformed ahead of time.
    let mut arrivals = Vec::new();
    for i in 0..12 {
        let t = 350.0 * (i + 1) as f64;
        let f = if i % 2 == 0 { "vgg16" } else { "vgg19" };
        arrivals.push((t, f.to_string()));
    }
    let base = run(None, &arrivals, 6_000.0);
    let pre = run(Some(PrewarmConfig::default()), &arrivals, 6_000.0);
    assert_eq!(base.prewarms, 0);
    assert!(pre.prewarms > 0, "prewarms executed: {}", pre.prewarms);
    let warm = |r: &optimus_sim::SimReport| {
        r.records
            .iter()
            .filter(|x| x.kind == StartKind::Warm)
            .count()
    };
    assert!(
        warm(&pre) > warm(&base),
        "prewarmed warm starts {} !> baseline {}",
        warm(&pre),
        warm(&base)
    );
    assert!(
        pre.avg_service_time() < base.avg_service_time(),
        "prewarmed avg {:.3} !< baseline {:.3}",
        pre.avg_service_time(),
        base.avg_service_time()
    );
}

#[test]
fn prewarming_needs_history_before_predicting() {
    // A single periodic function: the first min_history arrivals must not
    // trigger prewarms.
    let arrivals = periodic_trace(300.0, 3, "vgg16");
    let report = run(
        Some(PrewarmConfig {
            lead: 5.0,
            min_history: 10,
        }),
        &arrivals,
        2_000.0,
    );
    assert_eq!(report.prewarms, 0, "insufficient history must not prewarm");
}

#[test]
fn prewarming_is_deterministic() {
    let mut arrivals = Vec::new();
    for i in 0..10 {
        arrivals.push((200.0 * (i + 1) as f64, "vgg16".to_string()));
        arrivals.push((200.0 * (i + 1) as f64 + 90.0, "resnet18".to_string()));
    }
    let a = run(Some(PrewarmConfig::default()), &arrivals, 4_000.0);
    let b = run(Some(PrewarmConfig::default()), &arrivals, 4_000.0);
    assert_eq!(a, b);
}

#[test]
fn prewarming_never_costs_requests_anything() {
    // Requests in the prewarmed run must never be slower than the
    // corresponding baseline request by more than the queueing noise a
    // busy proactive transform can add — and the mean must improve or tie.
    let arrivals = periodic_trace(400.0, 10, "vgg16")
        .into_iter()
        .chain(
            periodic_trace(400.0, 10, "vgg19")
                .into_iter()
                .map(|(t, f)| (t + 150.0, f)),
        )
        .collect::<Vec<_>>();
    let base = run(None, &arrivals, 5_000.0);
    let pre = run(Some(PrewarmConfig::default()), &arrivals, 5_000.0);
    assert!(pre.avg_service_time() <= base.avg_service_time() + 1e-9);
}
