//! Tests of the memory-aware capacity mode (§6 "Fine-grained Resource
//! Allocation").

use std::sync::Arc;

use optimus_core::{GroupPlanner, ModelRepository};
use optimus_profile::CostModel;
use optimus_sim::{MemoryLimit, PlacementStrategy, Platform, Policy, SimConfig, StartKind};
use optimus_workload::{Invocation, Trace};

fn repo_with(models: Vec<optimus_model::ModelGraph>) -> Arc<ModelRepository> {
    let repo = ModelRepository::new(Box::new(GroupPlanner));
    let cost = CostModel::default();
    for m in models {
        repo.register(m, &cost);
    }
    Arc::new(repo)
}

fn trace_of(duration: f64, arrivals: &[(f64, &str)]) -> Trace {
    Trace::new(
        duration,
        arrivals
            .iter()
            .map(|(t, f)| Invocation {
                time: *t,
                function: (*f).to_string(),
            })
            .collect(),
    )
}

fn config(memory: Option<MemoryLimit>) -> SimConfig {
    SimConfig {
        nodes: 1,
        capacity_per_node: 64, // slots never bind in these tests
        placement: PlacementStrategy::Hash,
        memory,
        ..SimConfig::default()
    }
}

#[test]
fn memory_limit_bounds_concurrent_large_models() {
    // VGG16 is ~528 MB + 384 MiB overhead ≈ 0.9 GiB per container; a
    // 2 GiB node fits two VGG containers, not three.
    let repo = repo_with(vec![optimus_zoo::vgg::vgg16()]);
    let platform = Platform::new(config(Some(MemoryLimit::gib(2))), Policy::OpenWhisk, repo);
    // Three simultaneous requests: only two containers can exist, so the
    // third must queue despite free slot capacity.
    let trace = trace_of(100.0, &[(0.0, "vgg16"), (0.0, "vgg16"), (0.0, "vgg16")]);
    let report = platform.run(&trace);
    assert_eq!(report.records[0].wait, 0.0);
    assert_eq!(report.records[1].wait, 0.0);
    assert!(
        report.records[2].wait > 0.0,
        "third request must wait for memory"
    );
}

#[test]
fn small_models_pack_more_containers() {
    // MobileNet (~17 MB) + overhead ≈ 0.4 GiB: a 2 GiB node fits five.
    let repo = repo_with(vec![optimus_zoo::mobilenet::mobilenet_v1(1.0, 0)]);
    let platform = Platform::new(config(Some(MemoryLimit::gib(2))), Policy::OpenWhisk, repo);
    let arrivals: Vec<(f64, &str)> = (0..5).map(|_| (0.0, "mobilenet_v1")).collect();
    let trace = trace_of(100.0, &arrivals);
    let report = platform.run(&trace);
    assert!(
        report.records.iter().all(|r| r.wait == 0.0),
        "five small containers fit where two large ones would"
    );
}

#[test]
fn memory_pressure_evicts_lru_containers() {
    let repo = repo_with(vec![
        optimus_zoo::vgg::vgg16(),
        optimus_zoo::vgg::vgg19(),
        optimus_zoo::resnet::resnet50(),
    ]);
    let platform = Platform::new(config(Some(MemoryLimit::gib(2))), Policy::OpenWhisk, repo);
    // Sequential requests: each new large model evicts the LRU container.
    let trace = trace_of(
        400.0,
        &[
            (0.0, "vgg16"),
            (50.0, "vgg19"),
            (100.0, "resnet50"),
            // vgg16's container was evicted for resnet50 → cold again.
            (150.0, "vgg16"),
        ],
    );
    let report = platform.run(&trace);
    assert_eq!(report.records[3].kind, StartKind::Cold);
}

#[test]
fn optimus_transforms_within_memory_budget() {
    let repo = repo_with(vec![optimus_zoo::vgg::vgg16(), optimus_zoo::vgg::vgg19()]);
    let platform = Platform::new(config(Some(MemoryLimit::gib(4))), Policy::Optimus, repo);
    let trace = trace_of(500.0, &[(0.0, "vgg16"), (200.0, "vgg19")]);
    let report = platform.run(&trace);
    assert_eq!(report.records[1].kind, StartKind::Transform);
}

#[test]
fn repurpose_swap_fits_because_donor_memory_is_released() {
    // Node: 1 GiB. One idle MobileNet container (~0.4 GiB); a VGG16
    // request (~0.9 GiB) arrives. Re-purposing releases the donor's
    // memory, so the swap fits and Optimus transforms.
    let repo = repo_with(vec![
        optimus_zoo::mobilenet::mobilenet_v1(1.0, 0),
        optimus_zoo::vgg::vgg16(),
    ]);
    let platform = Platform::new(config(Some(MemoryLimit::gib(1))), Policy::Optimus, repo);
    let trace = trace_of(500.0, &[(0.0, "mobilenet_v1"), (200.0, "vgg16")]);
    let report = platform.run(&trace);
    assert_eq!(report.records[1].kind, StartKind::Transform);
}

#[test]
fn repurpose_rejected_when_destination_does_not_fit() {
    // Node: 1 GiB holding two MobileNet containers (~0.84 GiB total). A
    // VGG16 request (~0.9 GiB) arrives: re-purposing either donor still
    // leaves the other resident (0.42 + 0.9 > 1 GiB), so the swap is
    // rejected and free_slot must evict both before a cold start.
    let repo = repo_with(vec![
        optimus_zoo::mobilenet::mobilenet_v1(1.0, 0),
        optimus_zoo::vgg::vgg16(),
    ]);
    let platform = Platform::new(config(Some(MemoryLimit::gib(1))), Policy::Optimus, repo);
    let trace = trace_of(
        500.0,
        &[
            (0.0, "mobilenet_v1"),
            (0.0, "mobilenet_v1"),
            (200.0, "vgg16"),
        ],
    );
    let report = platform.run(&trace);
    assert_eq!(report.records[2].kind, StartKind::Cold);
    assert!(report.records[2].service_time().is_finite());
}

#[test]
fn no_memory_limit_reproduces_slot_behaviour() {
    let repo = repo_with(vec![optimus_zoo::vgg::vgg16()]);
    let with_mem = Platform::new(
        config(Some(MemoryLimit::gib(1024))), // effectively unlimited
        Policy::OpenWhisk,
        repo.clone(),
    );
    let without = Platform::new(config(None), Policy::OpenWhisk, repo);
    let trace = trace_of(100.0, &[(0.0, "vgg16"), (30.0, "vgg16")]);
    let a = with_mem.run(&trace);
    let b = without.run(&trace);
    assert_eq!(a.records.len(), b.records.len());
    for (x, y) in a.records.iter().zip(&b.records) {
        assert_eq!(x.kind, y.kind);
        assert!((x.service_time() - y.service_time()).abs() < 1e-12);
    }
}
