//! Pluggable consumers of finished [`RequestTrace`]s.
//!
//! [`MetricsSink`] is the canonical one: it defines the shared metric
//! names, so the live gateway and the simulator cannot drift apart. The
//! others serialize traces ([`JsonlSink`]), combine sinks
//! ([`FanoutSink`]), or discard them ([`NullSink`]).

use std::io::Write;
use std::sync::Arc;

use parking_lot::Mutex;

use crate::registry::{Counter, Histogram, MetricsRegistry};
use crate::span::{Phase, RequestTrace, StartKind};

/// Something that consumes finished request traces.
///
/// Implementations must be cheap and non-blocking enough to sit on the
/// serving hot path; [`MetricsSink::record`] is a handful of atomic
/// updates.
pub trait TelemetrySink: Send + Sync {
    /// Consume one finished trace.
    fn record(&self, trace: &RequestTrace);

    /// Flush any buffered output (no-op for in-memory sinks).
    fn flush(&self) {}
}

/// Folds traces into the canonical Optimus metric families of a
/// [`MetricsRegistry`]:
///
/// - `optimus_requests_total{kind="warm|cold|transform"}`
/// - `optimus_request_seconds` (end-to-end service time)
/// - `optimus_phase_seconds{phase="wait|init|load|compute"}`
/// - `optimus_transform_steps_total`
///
/// Handles are resolved once at construction; recording is lock-free.
pub struct MetricsSink {
    registry: Arc<MetricsRegistry>,
    requests: [Counter; 3], // indexed by StartKind order: warm, cold, transform
    service: Histogram,
    phases: [Histogram; 4], // indexed by Phase order
    transform_steps: Counter,
}

impl MetricsSink {
    /// Sink recording into `registry`.
    pub fn new(registry: Arc<MetricsRegistry>) -> MetricsSink {
        let counter_for = |kind: StartKind| {
            registry.counter("optimus_requests_total", &[("kind", kind.as_label())])
        };
        let hist_for = |phase: Phase| {
            registry.histogram("optimus_phase_seconds", &[("phase", phase.as_label())])
        };
        MetricsSink {
            requests: [
                counter_for(StartKind::Warm),
                counter_for(StartKind::Cold),
                counter_for(StartKind::Transform),
            ],
            service: registry.histogram("optimus_request_seconds", &[]),
            phases: [
                hist_for(Phase::Wait),
                hist_for(Phase::Init),
                hist_for(Phase::Load),
                hist_for(Phase::Compute),
            ],
            transform_steps: registry.counter("optimus_transform_steps_total", &[]),
            registry,
        }
    }

    /// Sink recording into the process-wide [`crate::global`] registry.
    pub fn global() -> MetricsSink {
        MetricsSink::new(crate::global())
    }

    /// The registry this sink records into.
    pub fn registry(&self) -> &Arc<MetricsRegistry> {
        &self.registry
    }
}

impl TelemetrySink for MetricsSink {
    #[inline]
    fn record(&self, trace: &RequestTrace) {
        let kind_idx = match trace.kind {
            StartKind::Warm => 0,
            StartKind::Cold => 1,
            StartKind::Transform => 2,
        };
        self.requests[kind_idx].inc();
        self.service.observe(trace.service_time());
        for (i, phase) in Phase::ALL.into_iter().enumerate() {
            self.phases[i].observe(trace.phase(phase));
        }
        if trace.transform_steps > 0 {
            self.transform_steps.add(trace.transform_steps as u64);
        }
    }
}

/// Appends one JSON line per trace (see [`RequestTrace::to_json_line`])
/// to any writer — a file, a `Vec<u8>` in tests, stderr.
pub struct JsonlSink {
    writer: Mutex<Box<dyn Write + Send>>,
}

impl JsonlSink {
    /// Sink writing JSONL to `writer`.
    pub fn new(writer: Box<dyn Write + Send>) -> JsonlSink {
        JsonlSink {
            writer: Mutex::new(writer),
        }
    }
}

impl TelemetrySink for JsonlSink {
    fn record(&self, trace: &RequestTrace) {
        let mut line = trace.to_json_line();
        line.push('\n');
        // A full disk / closed pipe must not take the serving path down.
        let _ = self.writer.lock().write_all(line.as_bytes());
    }

    fn flush(&self) {
        let _ = self.writer.lock().flush();
    }
}

/// Broadcasts every trace to all inner sinks, in order.
#[derive(Default)]
pub struct FanoutSink {
    sinks: Vec<Arc<dyn TelemetrySink>>,
}

impl FanoutSink {
    /// Fan out to `sinks`.
    pub fn new(sinks: Vec<Arc<dyn TelemetrySink>>) -> FanoutSink {
        FanoutSink { sinks }
    }
}

impl TelemetrySink for FanoutSink {
    fn record(&self, trace: &RequestTrace) {
        for sink in &self.sinks {
            sink.record(trace);
        }
    }

    fn flush(&self) {
        for sink in &self.sinks {
            sink.flush();
        }
    }
}

/// Discards everything (disabled telemetry).
pub struct NullSink;

impl TelemetrySink for NullSink {
    fn record(&self, _trace: &RequestTrace) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trace(kind: StartKind, load: f64, steps: usize) -> RequestTrace {
        RequestTrace {
            function: "f".into(),
            node: 0,
            kind,
            wait: 0.01,
            init: 0.0,
            load,
            compute: 0.02,
            total: 0.03 + load,
            transform_steps: steps,
            plan_cache_hit: None,
        }
    }

    #[test]
    fn metrics_sink_exports_canonical_names() {
        let registry = Arc::new(MetricsRegistry::new());
        let sink = MetricsSink::new(registry.clone());
        sink.record(&trace(StartKind::Cold, 1.0, 0));
        sink.record(&trace(StartKind::Warm, 0.0, 0));
        sink.record(&trace(StartKind::Warm, 0.0, 0));
        sink.record(&trace(StartKind::Transform, 0.2, 5));
        let text = registry.render_prometheus();
        assert!(text.contains("optimus_requests_total{kind=\"warm\"} 2"));
        assert!(text.contains("optimus_requests_total{kind=\"cold\"} 1"));
        assert!(text.contains("optimus_requests_total{kind=\"transform\"} 1"));
        assert!(text.contains("optimus_phase_seconds_bucket{phase=\"wait\",le=\"0.1\"}"));
        assert!(text.contains("optimus_request_seconds_count 4"));
        assert!(text.contains("optimus_transform_steps_total 5"));
        assert_eq!(
            registry
                .histogram("optimus_phase_seconds", &[("phase", "load")])
                .count(),
            4
        );
    }

    #[test]
    fn jsonl_sink_writes_one_parsable_line_per_trace() {
        let buf: Arc<Mutex<Vec<u8>>> = Arc::new(Mutex::new(Vec::new()));
        struct Shared(Arc<Mutex<Vec<u8>>>);
        impl Write for Shared {
            fn write(&mut self, b: &[u8]) -> std::io::Result<usize> {
                self.0.lock().extend_from_slice(b);
                Ok(b.len())
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        let sink = JsonlSink::new(Box::new(Shared(buf.clone())));
        sink.record(&trace(StartKind::Cold, 1.0, 0));
        sink.record(&trace(StartKind::Transform, 0.5, 3));
        sink.flush();
        let out = String::from_utf8(buf.lock().clone()).unwrap();
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 2);
        for line in lines {
            let v: serde_json::Value = serde_json::from_str(line).expect("parsable trace line");
            assert!(v["kind"].as_str().is_some());
        }
    }

    #[test]
    fn fanout_reaches_all_sinks() {
        let r1 = Arc::new(MetricsRegistry::new());
        let r2 = Arc::new(MetricsRegistry::new());
        let fan = FanoutSink::new(vec![
            Arc::new(MetricsSink::new(r1.clone())),
            Arc::new(MetricsSink::new(r2.clone())),
            Arc::new(NullSink),
        ]);
        fan.record(&trace(StartKind::Warm, 0.0, 0));
        fan.flush();
        for r in [r1, r2] {
            assert_eq!(
                r.counter("optimus_requests_total", &[("kind", "warm")])
                    .get(),
                1
            );
        }
    }

    /// Acceptance bound: counter increment + span record stay < 1 µs per
    /// request on the hot path.
    #[test]
    fn span_record_overhead_stays_under_a_microsecond() {
        let registry = Arc::new(MetricsRegistry::new());
        let sink = MetricsSink::new(registry.clone());
        let requests = registry.counter("optimus_http_requests_total", &[("code", "200")]);
        // Warm up handle caches and branch predictors.
        for _ in 0..1_000 {
            requests.inc();
            sink.record(&trace(StartKind::Warm, 0.0, 0));
        }
        let reusable = trace(StartKind::Warm, 0.0, 0);
        // Wall-clock measurement on a shared machine: concurrent test
        // threads can steal the core mid-run, so keep the best attempt
        // and exit as soon as one clears the bound — the bound is on the
        // hot path's cost, not the scheduler's worst case. The window is
        // kept short (~10 ms) so that on a busy low-core box at least
        // one attempt fits inside a quiet scheduler slice.
        let n = 10_000u32;
        let mut best = f64::INFINITY;
        for _ in 0..50 {
            let start = std::time::Instant::now();
            for _ in 0..n {
                requests.inc();
                sink.record(&reusable);
            }
            best = best.min(start.elapsed().as_secs_f64() / f64::from(n));
            if best < 1e-6 {
                break;
            }
        }
        assert!(
            best < 1e-6,
            "counter + trace record took {:.0} ns per request (best attempt)",
            best * 1e9
        );
    }
}
