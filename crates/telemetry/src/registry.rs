//! Lock-free metric primitives and the keyed registry.
//!
//! Handles ([`Counter`], [`Gauge`], [`Histogram`]) are cheap `Arc` clones
//! resolved once through [`MetricsRegistry`]; after resolution the hot
//! path touches only atomics — no map lookups, no locks.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::RwLock;

/// Monotonically increasing event count.
#[derive(Debug, Clone, Default)]
pub struct Counter {
    value: Arc<AtomicU64>,
}

impl Counter {
    /// Fresh unregistered counter (mostly for tests).
    pub fn new() -> Self {
        Counter::default()
    }

    /// Increment by one.
    #[inline]
    pub fn inc(&self) {
        self.value.fetch_add(1, Ordering::Relaxed);
    }

    /// Increment by `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// Last-written floating-point value (e.g. pool occupancy).
#[derive(Debug, Clone)]
pub struct Gauge {
    bits: Arc<AtomicU64>,
}

impl Default for Gauge {
    fn default() -> Self {
        Gauge {
            bits: Arc::new(AtomicU64::new(0f64.to_bits())),
        }
    }
}

impl Gauge {
    /// Fresh unregistered gauge (mostly for tests).
    pub fn new() -> Self {
        Gauge::default()
    }

    /// Overwrite the value.
    #[inline]
    pub fn set(&self, v: f64) {
        self.bits.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Add `delta` (atomic read-modify-write).
    pub fn add(&self, delta: f64) {
        let mut cur = self.bits.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(cur) + delta).to_bits();
            match self
                .bits
                .compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => return,
                Err(seen) => cur = seen,
            }
        }
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }
}

/// Default latency bucket upper bounds (seconds): three per decade from
/// 1 µs to 100 s, covering sub-millisecond warm hits through multi-second
/// cold starts.
pub fn default_latency_bounds() -> Vec<f64> {
    let mut bounds = Vec::with_capacity(25);
    for decade in -6..2i32 {
        for mantissa in [1.0, 2.0, 5.0] {
            bounds.push(mantissa * 10f64.powi(decade));
        }
    }
    bounds.push(100.0);
    bounds
}

#[derive(Debug)]
struct HistogramInner {
    /// Strictly increasing bucket upper bounds; one extra overflow bucket
    /// follows the last bound.
    bounds: Vec<f64>,
    counts: Vec<AtomicU64>,
    count: AtomicU64,
    /// Sum of observations, stored as `f64` bits and updated via CAS.
    sum_bits: AtomicU64,
    /// Min/max observed, as orderable `f64` bits, for quantile clamping.
    min_bits: AtomicU64,
    max_bits: AtomicU64,
}

/// Fixed-bucket latency histogram with quantile estimation.
///
/// Observations are counted into log-spaced buckets; quantiles are
/// estimated by linear interpolation inside the target bucket and clamped
/// to the observed min/max, so a constant distribution reports its exact
/// value at every quantile.
#[derive(Debug, Clone)]
pub struct Histogram {
    inner: Arc<HistogramInner>,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::with_bounds(default_latency_bounds())
    }
}

/// Total order over `f64` bit patterns for non-negative values.
fn orderable_bits(v: f64) -> u64 {
    // Latencies are non-negative, so the IEEE-754 bit pattern is already
    // monotone; negative inputs are clamped to zero first.
    v.max(0.0).to_bits()
}

impl Histogram {
    /// Histogram with the default log-spaced latency bounds.
    pub fn new() -> Self {
        Histogram::default()
    }

    /// Histogram with custom strictly-increasing upper bounds.
    pub fn with_bounds(bounds: Vec<f64>) -> Self {
        assert!(!bounds.is_empty(), "histogram needs at least one bound");
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "bounds must be strictly increasing"
        );
        let n = bounds.len() + 1; // plus overflow bucket
        Histogram {
            inner: Arc::new(HistogramInner {
                bounds,
                counts: (0..n).map(|_| AtomicU64::new(0)).collect(),
                count: AtomicU64::new(0),
                sum_bits: AtomicU64::new(0f64.to_bits()),
                min_bits: AtomicU64::new(f64::INFINITY.to_bits()),
                max_bits: AtomicU64::new(0),
            }),
        }
    }

    /// Index of the bucket holding `v` (first bound ≥ v; overflow last).
    pub fn bucket_index(&self, v: f64) -> usize {
        self.inner.bounds.partition_point(|b| *b < v)
    }

    /// Record one observation (seconds).
    #[inline]
    pub fn observe(&self, v: f64) {
        let inner = &*self.inner;
        let idx = inner.bounds.partition_point(|b| *b < v);
        inner.counts[idx].fetch_add(1, Ordering::Relaxed);
        inner.count.fetch_add(1, Ordering::Relaxed);
        let mut cur = inner.sum_bits.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(cur) + v).to_bits();
            match inner.sum_bits.compare_exchange_weak(
                cur,
                next,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(seen) => cur = seen,
            }
        }
        inner
            .min_bits
            .fetch_min(orderable_bits(v), Ordering::Relaxed);
        inner
            .max_bits
            .fetch_max(orderable_bits(v), Ordering::Relaxed);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.inner.count.load(Ordering::Relaxed)
    }

    /// Sum of observations.
    pub fn sum(&self) -> f64 {
        f64::from_bits(self.inner.sum_bits.load(Ordering::Relaxed))
    }

    /// Mean observation, or 0 when empty.
    pub fn mean(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.sum() / n as f64
        }
    }

    /// Estimated `q`-quantile (`q` in `[0, 1]`), or 0 when empty.
    ///
    /// Linear interpolation inside the target bucket, clamped to the
    /// observed min/max.
    pub fn quantile(&self, q: f64) -> f64 {
        let inner = &*self.inner;
        let total = inner.count.load(Ordering::Relaxed);
        if total == 0 {
            return 0.0;
        }
        let min = f64::from_bits(inner.min_bits.load(Ordering::Relaxed));
        let max = f64::from_bits(inner.max_bits.load(Ordering::Relaxed));
        let rank = (q.clamp(0.0, 1.0) * total as f64).max(1.0);
        let mut cum = 0u64;
        for (idx, c) in inner.counts.iter().enumerate() {
            let c = c.load(Ordering::Relaxed);
            if c == 0 {
                continue;
            }
            if (cum + c) as f64 >= rank {
                let lower = if idx == 0 { min } else { inner.bounds[idx - 1] };
                let upper = if idx < inner.bounds.len() {
                    inner.bounds[idx]
                } else {
                    max
                };
                let frac = (rank - cum as f64) / c as f64;
                let est = lower + frac * (upper - lower);
                return est.clamp(min, max);
            }
            cum += c;
        }
        max
    }

    /// Estimated p50/p95/p99 in one pass-friendly call.
    pub fn percentiles(&self) -> (f64, f64, f64) {
        (
            self.quantile(0.50),
            self.quantile(0.95),
            self.quantile(0.99),
        )
    }

    /// `(upper_bound, cumulative_count)` per bucket, Prometheus-style;
    /// the final entry is `(+Inf, total)`.
    pub fn cumulative_buckets(&self) -> Vec<(f64, u64)> {
        let inner = &*self.inner;
        let mut cum = 0u64;
        let mut out = Vec::with_capacity(inner.counts.len());
        for (idx, c) in inner.counts.iter().enumerate() {
            cum += c.load(Ordering::Relaxed);
            let bound = if idx < inner.bounds.len() {
                inner.bounds[idx]
            } else {
                f64::INFINITY
            };
            out.push((bound, cum));
        }
        out
    }
}

/// A registered metric: name plus sorted `key="value"` labels.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct MetricKey {
    /// Metric family name (`optimus_requests_total`).
    pub name: String,
    /// Label pairs, sorted by key.
    pub labels: Vec<(String, String)>,
}

impl MetricKey {
    fn new(name: &str, labels: &[(&str, &str)]) -> Self {
        let mut labels: Vec<(String, String)> = labels
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_string()))
            .collect();
        labels.sort();
        MetricKey {
            name: name.to_string(),
            labels,
        }
    }

    /// Render as `name` or `name{k="v",...}`.
    pub fn render(&self) -> String {
        render_with_extra(&self.name, &self.labels, None)
    }
}

fn render_with_extra(
    name: &str,
    labels: &[(String, String)],
    extra: Option<(&str, &str)>,
) -> String {
    let mut pairs: Vec<String> = labels.iter().map(|(k, v)| format!("{k}=\"{v}\"")).collect();
    if let Some((k, v)) = extra {
        pairs.push(format!("{k}=\"{v}\""));
    }
    if pairs.is_empty() {
        name.to_string()
    } else {
        format!("{name}{{{}}}", pairs.join(","))
    }
}

#[derive(Debug, Clone)]
enum Metric {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

/// Keyed collection of metrics with get-or-create handle resolution.
///
/// Resolution takes a write lock once per `(name, labels)` pair; returned
/// handles are lock-free afterwards. Rendering walks a sorted snapshot,
/// so exposition output is deterministic.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    metrics: RwLock<BTreeMap<MetricKey, Metric>>,
}

impl MetricsRegistry {
    /// Empty registry.
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    /// Get or create the counter `name{labels}`.
    ///
    /// # Panics
    ///
    /// Panics if the key is already registered as a different metric type.
    pub fn counter(&self, name: &str, labels: &[(&str, &str)]) -> Counter {
        let key = MetricKey::new(name, labels);
        if let Some(Metric::Counter(c)) = self.metrics.read().get(&key) {
            return c.clone();
        }
        let mut map = self.metrics.write();
        match map
            .entry(key)
            .or_insert_with(|| Metric::Counter(Counter::new()))
        {
            Metric::Counter(c) => c.clone(),
            _ => panic!("metric '{name}' already registered with another type"),
        }
    }

    /// Get or create the gauge `name{labels}`.
    ///
    /// # Panics
    ///
    /// Panics if the key is already registered as a different metric type.
    pub fn gauge(&self, name: &str, labels: &[(&str, &str)]) -> Gauge {
        let key = MetricKey::new(name, labels);
        if let Some(Metric::Gauge(g)) = self.metrics.read().get(&key) {
            return g.clone();
        }
        let mut map = self.metrics.write();
        match map
            .entry(key)
            .or_insert_with(|| Metric::Gauge(Gauge::new()))
        {
            Metric::Gauge(g) => g.clone(),
            _ => panic!("metric '{name}' already registered with another type"),
        }
    }

    /// Get or create the histogram `name{labels}` with default latency
    /// bounds.
    ///
    /// # Panics
    ///
    /// Panics if the key is already registered as a different metric type.
    pub fn histogram(&self, name: &str, labels: &[(&str, &str)]) -> Histogram {
        self.histogram_with_bounds(name, labels, default_latency_bounds)
    }

    /// Get or create a histogram with caller-chosen bounds (used only on
    /// first registration).
    ///
    /// # Panics
    ///
    /// Panics if the key is already registered as a different metric type.
    pub fn histogram_with_bounds(
        &self,
        name: &str,
        labels: &[(&str, &str)],
        bounds: impl FnOnce() -> Vec<f64>,
    ) -> Histogram {
        let key = MetricKey::new(name, labels);
        if let Some(Metric::Histogram(h)) = self.metrics.read().get(&key) {
            return h.clone();
        }
        let mut map = self.metrics.write();
        match map
            .entry(key)
            .or_insert_with(|| Metric::Histogram(Histogram::with_bounds(bounds())))
        {
            Metric::Histogram(h) => h.clone(),
            _ => panic!("metric '{name}' already registered with another type"),
        }
    }

    /// Render every metric in Prometheus text exposition format.
    ///
    /// Histograms expand to `_bucket{le=...}` / `_sum` / `_count` series;
    /// output is sorted by key, so it is stable across calls.
    pub fn render_prometheus(&self) -> String {
        let map = self.metrics.read();
        let mut out = String::new();
        let mut last_family = "";
        for (key, metric) in map.iter() {
            if key.name != last_family {
                let kind = match metric {
                    Metric::Counter(_) => "counter",
                    Metric::Gauge(_) => "gauge",
                    Metric::Histogram(_) => "histogram",
                };
                out.push_str(&format!("# TYPE {} {kind}\n", key.name));
                last_family = &key.name;
            }
            match metric {
                Metric::Counter(c) => {
                    out.push_str(&format!("{} {}\n", key.render(), c.get()));
                }
                Metric::Gauge(g) => {
                    out.push_str(&format!("{} {}\n", key.render(), g.get()));
                }
                Metric::Histogram(h) => {
                    let bucket_name = format!("{}_bucket", key.name);
                    for (bound, cum) in h.cumulative_buckets() {
                        let le = if bound.is_infinite() {
                            "+Inf".to_string()
                        } else {
                            format!("{bound}")
                        };
                        out.push_str(&format!(
                            "{} {}\n",
                            render_with_extra(&bucket_name, &key.labels, Some(("le", &le))),
                            cum
                        ));
                    }
                    out.push_str(&format!(
                        "{} {}\n",
                        render_with_extra(&format!("{}_sum", key.name), &key.labels, None),
                        h.sum()
                    ));
                    out.push_str(&format!(
                        "{} {}\n",
                        render_with_extra(&format!("{}_count", key.name), &key.labels, None),
                        h.count()
                    ));
                }
            }
        }
        out
    }

    /// Snapshot every metric as a JSON object (for `/stats`): counters and
    /// gauges as numbers, histograms as `{count, sum, mean, p50, p95, p99}`.
    pub fn snapshot_json(&self) -> serde_json::Value {
        let map = self.metrics.read();
        let mut root = serde_json::Map::new();
        for (key, metric) in map.iter() {
            let rendered = key.render();
            let value = match metric {
                Metric::Counter(c) => serde_json::json!(c.get()),
                Metric::Gauge(g) => serde_json::json!(g.get()),
                Metric::Histogram(h) => {
                    let (p50, p95, p99) = h.percentiles();
                    serde_json::json!({
                        "count": h.count(),
                        "sum": h.sum(),
                        "mean": h.mean(),
                        "p50": p50,
                        "p95": p95,
                        "p99": p99,
                    })
                }
            };
            root.insert(rendered, value);
        }
        serde_json::Value::Object(root)
    }
}

/// Exact percentile of `values` (`p` in `[0, 100]`): nearest-rank on the
/// sorted data, the convention the simulator reports (Figure 13/15).
///
/// Returns 0 for an empty slice.
pub fn exact_percentile(values: &[f64], p: f64) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let mut sorted = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    let idx = ((p / 100.0) * (sorted.len() - 1) as f64).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries_are_inclusive_upper() {
        let h = Histogram::with_bounds(vec![1.0, 2.0, 5.0]);
        // partition_point(|b| b < v): v == bound lands in that bound's
        // bucket (le semantics).
        assert_eq!(h.bucket_index(0.5), 0);
        assert_eq!(h.bucket_index(1.0), 0);
        assert_eq!(h.bucket_index(1.0001), 1);
        assert_eq!(h.bucket_index(2.0), 1);
        assert_eq!(h.bucket_index(5.0), 2);
        assert_eq!(h.bucket_index(50.0), 3); // overflow bucket
    }

    #[test]
    fn default_bounds_are_increasing_and_cover_latencies() {
        let b = default_latency_bounds();
        assert!(b.windows(2).all(|w| w[0] < w[1]));
        assert!(b[0] <= 1e-6);
        assert!(*b.last().unwrap() >= 100.0);
    }

    #[test]
    fn constant_distribution_quantiles_are_exact() {
        let h = Histogram::new();
        for _ in 0..1000 {
            h.observe(0.25);
        }
        for q in [0.0, 0.5, 0.95, 0.99, 1.0] {
            assert_eq!(h.quantile(q), 0.25);
        }
        assert_eq!(h.count(), 1000);
        assert!((h.mean() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn uniform_distribution_quantiles_interpolate() {
        // 1000 samples uniform over (0, 1]: with buckets at 1,2,5 per
        // decade the interpolation error is bounded by one bucket width.
        let h = Histogram::new();
        for i in 1..=1000 {
            h.observe(i as f64 / 1000.0);
        }
        let (p50, p95, p99) = h.percentiles();
        assert!((p50 - 0.5).abs() < 0.15, "p50 {p50}");
        assert!((p95 - 0.95).abs() < 0.15, "p95 {p95}");
        assert!((p99 - 0.99).abs() < 0.15, "p99 {p99}");
        assert!(p50 <= p95 && p95 <= p99);
        // Quantiles never escape the observed range.
        assert!(h.quantile(1.0) <= 1.0);
        assert!(h.quantile(0.0) >= 1.0 / 1000.0);
    }

    #[test]
    fn exact_percentile_matches_nearest_rank() {
        let values: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        assert_eq!(exact_percentile(&values, 100.0), 100.0);
        assert_eq!(exact_percentile(&values, 0.0), 1.0);
        assert_eq!(exact_percentile(&values, 50.0), 51.0); // round(0.5*99)=50 → values[50]
        assert_eq!(exact_percentile(&[], 50.0), 0.0);
    }

    #[test]
    fn concurrent_counter_increments_are_lossless() {
        let registry = std::sync::Arc::new(MetricsRegistry::new());
        let mut handles = Vec::new();
        for _ in 0..8 {
            let r = registry.clone();
            handles.push(std::thread::spawn(move || {
                let c = r.counter("optimus_requests_total", &[("kind", "warm")]);
                let h = r.histogram("optimus_request_seconds", &[]);
                for i in 0..10_000 {
                    c.inc();
                    h.observe(i as f64 * 1e-6);
                }
            }));
        }
        for handle in handles {
            handle.join().unwrap();
        }
        let c = registry.counter("optimus_requests_total", &[("kind", "warm")]);
        assert_eq!(c.get(), 80_000);
        let h = registry.histogram("optimus_request_seconds", &[]);
        assert_eq!(h.count(), 80_000);
        // Sum is CAS-accumulated, so it must be exact too.
        let expect: f64 = (0..10_000).map(|i| i as f64 * 1e-6).sum::<f64>() * 8.0;
        assert!((h.sum() - expect).abs() < 1e-6);
    }

    #[test]
    fn prometheus_rendering_has_type_lines_and_le_buckets() {
        let r = MetricsRegistry::new();
        r.counter("optimus_requests_total", &[("kind", "cold")])
            .add(3);
        r.counter("optimus_requests_total", &[("kind", "warm")])
            .add(5);
        r.gauge("optimus_pool_size", &[]).set(7.0);
        let h = r.histogram_with_bounds("optimus_request_seconds", &[], || vec![0.1, 1.0]);
        h.observe(0.05);
        h.observe(0.5);
        h.observe(5.0);
        let text = r.render_prometheus();
        assert!(text.contains("# TYPE optimus_requests_total counter"));
        assert!(text.contains("optimus_requests_total{kind=\"cold\"} 3"));
        assert!(text.contains("optimus_requests_total{kind=\"warm\"} 5"));
        assert!(text.contains("optimus_pool_size 7"));
        assert!(text.contains("optimus_request_seconds_bucket{le=\"0.1\"} 1"));
        assert!(text.contains("optimus_request_seconds_bucket{le=\"1\"} 2"));
        assert!(text.contains("optimus_request_seconds_bucket{le=\"+Inf\"} 3"));
        assert!(text.contains("optimus_request_seconds_count 3"));
        // Deterministic output.
        assert_eq!(text, r.render_prometheus());
    }

    #[test]
    fn gauge_add_is_atomic() {
        let g = Gauge::new();
        g.set(10.0);
        g.add(-2.5);
        assert_eq!(g.get(), 7.5);
    }

    #[test]
    fn hot_path_overhead_stays_under_a_microsecond() {
        let r = MetricsRegistry::new();
        let c = r.counter("optimus_requests_total", &[("kind", "warm")]);
        let h = r.histogram("optimus_request_seconds", &[]);
        // Warm up.
        for _ in 0..1_000 {
            c.inc();
            h.observe(0.001);
        }
        let n = 100_000u32;
        let start = std::time::Instant::now();
        for i in 0..n {
            c.inc();
            h.observe(i as f64 * 1e-7);
        }
        let per_op = start.elapsed().as_secs_f64() / n as f64;
        assert!(
            per_op < 1e-6,
            "hot path took {:.0} ns per counter+histogram update",
            per_op * 1e9
        );
    }
}
