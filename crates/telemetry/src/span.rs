//! Per-request spans and the finished [`RequestTrace`].
//!
//! A [`Span`] is opened when a request enters the system and closed when
//! the response is ready; it accumulates the Optimus latency phases with
//! monotonic ([`Instant`]) timing. The simulator constructs
//! [`RequestTrace`]s directly from simulated durations — both paths feed
//! the same [`crate::TelemetrySink`]s.

use std::time::Instant;

use serde::{Deserialize, Serialize};

/// The latency phases of one request (§8.3's service-time composition).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Phase {
    /// Queueing delay before a container was available.
    Wait,
    /// Sandbox / runtime initialization (0 for warm starts; 0 on the
    /// in-process live path, which has no sandbox).
    Init,
    /// Model loading *or* transformation latency.
    Load,
    /// The forward pass.
    Compute,
}

impl Phase {
    /// All phases, in service-time order.
    pub const ALL: [Phase; 4] = [Phase::Wait, Phase::Init, Phase::Load, Phase::Compute];

    /// The `phase` label value used in metric names.
    pub fn as_label(self) -> &'static str {
        match self {
            Phase::Wait => "wait",
            Phase::Init => "init",
            Phase::Load => "load",
            Phase::Compute => "compute",
        }
    }

    fn index(self) -> usize {
        match self {
            Phase::Wait => 0,
            Phase::Init => 1,
            Phase::Load => 2,
            Phase::Compute => 3,
        }
    }
}

/// How the serving container was obtained (Fig. 14's categories). The
/// telemetry-level kind that `optimus-serve`'s and `optimus-sim`'s own
/// start enums map into.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum StartKind {
    /// A container already holding the model served the request.
    Warm,
    /// A new container was created and the model loaded from scratch.
    Cold,
    /// An idle container's model was transformed via a cached plan.
    Transform,
}

impl StartKind {
    /// The `kind` label value used in metric names.
    pub fn as_label(self) -> &'static str {
        match self {
            StartKind::Warm => "warm",
            StartKind::Cold => "cold",
            StartKind::Transform => "transform",
        }
    }
}

/// The finished record of one request: phase breakdown plus Optimus
/// decision metadata. This is the unit every [`crate::TelemetrySink`]
/// consumes and the schema of one JSONL trace line.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RequestTrace {
    /// Function / model name.
    pub function: String,
    /// Serving node id.
    pub node: usize,
    /// How the container was obtained.
    pub kind: StartKind,
    /// Queueing delay (s).
    pub wait: f64,
    /// Sandbox/runtime init (s).
    pub init: f64,
    /// Model load or transformation (s).
    pub load: f64,
    /// Forward pass (s).
    pub compute: f64,
    /// Wall-clock from span open to close (s); equals the phase sum for
    /// simulated traces.
    pub total: f64,
    /// Meta-operator steps executed (0 unless transformed).
    pub transform_steps: usize,
    /// Plan-cache outcome when a donor was considered: `Some(true)` when a
    /// cached plan was applied, `Some(false)` when the safeguard or a
    /// cache miss forced a scratch load, `None` when no donor existed
    /// (warm hits, cold starts on empty nodes).
    pub plan_cache_hit: Option<bool>,
}

impl RequestTrace {
    /// End-to-end service latency: wait + init + load + compute.
    pub fn service_time(&self) -> f64 {
        self.wait + self.init + self.load + self.compute
    }

    /// Duration of one phase.
    pub fn phase(&self, phase: Phase) -> f64 {
        match phase {
            Phase::Wait => self.wait,
            Phase::Init => self.init,
            Phase::Load => self.load,
            Phase::Compute => self.compute,
        }
    }

    /// One JSONL line (no trailing newline): the trace schema documented
    /// in the README's Observability section.
    pub fn to_json_line(&self) -> String {
        serde_json::json!({
            "function": self.function,
            "node": self.node,
            "kind": self.kind.as_label(),
            "wait": self.wait,
            "init": self.init,
            "load": self.load,
            "compute": self.compute,
            "total": self.total,
            "service_time": self.service_time(),
            "transform_steps": self.transform_steps,
            "plan_cache_hit": self.plan_cache_hit,
        })
        .to_string()
    }
}

/// An in-flight request measurement.
///
/// Phases accumulate either by timing a closure ([`Span::time`]) or by
/// adding externally measured durations ([`Span::add`]); both may be
/// called repeatedly per phase. [`Span::finish`] seals the span into a
/// [`RequestTrace`], stamping the total wall-clock from the monotonic
/// clock captured at [`Span::begin`].
#[derive(Debug)]
pub struct Span {
    function: String,
    node: usize,
    started: Instant,
    phases: [f64; 4],
    kind: StartKind,
    transform_steps: usize,
    plan_cache_hit: Option<bool>,
}

impl Span {
    /// Open a span for `function` served on `node`. Defaults to a warm
    /// start with empty phases.
    pub fn begin(function: impl Into<String>, node: usize) -> Span {
        Span {
            function: function.into(),
            node,
            started: Instant::now(),
            phases: [0.0; 4],
            kind: StartKind::Warm,
            transform_steps: 0,
            plan_cache_hit: None,
        }
    }

    /// Run `f`, attributing its wall-clock to `phase`.
    #[inline]
    pub fn time<T>(&mut self, phase: Phase, f: impl FnOnce() -> T) -> T {
        let t0 = Instant::now();
        let out = f();
        self.phases[phase.index()] += t0.elapsed().as_secs_f64();
        out
    }

    /// Attribute `seconds` of externally measured time to `phase`.
    #[inline]
    pub fn add(&mut self, phase: Phase, seconds: f64) {
        self.phases[phase.index()] += seconds;
    }

    /// Record how the container was obtained.
    pub fn set_kind(&mut self, kind: StartKind) {
        self.kind = kind;
    }

    /// Record the number of meta-operator steps executed.
    pub fn set_transform_steps(&mut self, steps: usize) {
        self.transform_steps = steps;
    }

    /// Record the plan-cache outcome (see [`RequestTrace::plan_cache_hit`]).
    pub fn set_plan_cache_hit(&mut self, hit: bool) {
        self.plan_cache_hit = Some(hit);
    }

    /// Seal the span: total wall-clock is measured monotonically from
    /// [`Span::begin`].
    pub fn finish(self) -> RequestTrace {
        RequestTrace {
            function: self.function,
            node: self.node,
            kind: self.kind,
            wait: self.phases[0],
            init: self.phases[1],
            load: self.phases[2],
            compute: self.phases[3],
            total: self.started.elapsed().as_secs_f64(),
            transform_steps: self.transform_steps,
            plan_cache_hit: self.plan_cache_hit,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_accumulates_phases_and_metadata() {
        let mut span = Span::begin("f", 2);
        span.add(Phase::Wait, 0.25);
        span.add(Phase::Load, 1.0);
        span.add(Phase::Load, 0.5);
        let v = span.time(Phase::Compute, || 41 + 1);
        span.set_kind(StartKind::Transform);
        span.set_transform_steps(7);
        span.set_plan_cache_hit(true);
        let trace = span.finish();
        assert_eq!(v, 42);
        assert_eq!(trace.function, "f");
        assert_eq!(trace.node, 2);
        assert_eq!(trace.kind, StartKind::Transform);
        assert_eq!(trace.wait, 0.25);
        assert_eq!(trace.load, 1.5);
        assert_eq!(trace.init, 0.0);
        assert!(trace.compute >= 0.0);
        assert_eq!(trace.transform_steps, 7);
        assert_eq!(trace.plan_cache_hit, Some(true));
        assert!((trace.service_time() - (0.25 + 1.5 + trace.compute)).abs() < 1e-12);
    }

    #[test]
    fn timed_closures_measure_monotonic_time() {
        let mut span = Span::begin("f", 0);
        span.time(Phase::Compute, || {
            std::thread::sleep(std::time::Duration::from_millis(5));
        });
        let trace = span.finish();
        assert!(trace.compute >= 0.004, "compute {}", trace.compute);
        assert!(trace.total >= trace.compute);
    }

    #[test]
    fn json_line_round_trips_through_serde() {
        let trace = RequestTrace {
            function: "resnet50".into(),
            node: 1,
            kind: StartKind::Cold,
            wait: 0.1,
            init: 0.2,
            load: 0.3,
            compute: 0.4,
            total: 1.0,
            transform_steps: 0,
            plan_cache_hit: None,
        };
        let line = trace.to_json_line();
        let v: serde_json::Value = serde_json::from_str(&line).expect("valid json");
        assert_eq!(v["function"], "resnet50");
        assert_eq!(v["kind"], "cold");
        assert!((v["service_time"].as_f64().unwrap() - 1.0).abs() < 1e-12);
        assert!(v["plan_cache_hit"].is_null());
    }

    #[test]
    fn phase_labels_cover_all_phases() {
        let labels: Vec<&str> = Phase::ALL.iter().map(|p| p.as_label()).collect();
        assert_eq!(labels, vec!["wait", "init", "load", "compute"]);
    }
}
