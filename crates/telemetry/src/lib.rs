//! # optimus-telemetry — unified metrics and request tracing
//!
//! One instrumentation substrate shared by the live serving engine
//! (`optimus-serve`), the platform simulator (`optimus-sim`), the planner
//! and plan cache (`optimus-core`), and the load balancer
//! (`optimus-balance`), so that a simulator run and a live gateway export
//! the *same metric names* and are directly comparable.
//!
//! Three layers, dependency-free (std plus the workspace's existing shim
//! crates only):
//!
//! - [`registry`]: lock-free [`Counter`]/[`Gauge`]/[`Histogram`] handles
//!   keyed by `(name, labels)` in a [`MetricsRegistry`]. Handles are
//!   resolved once and are plain atomics afterwards — the hot path never
//!   takes a lock (see the sub-microsecond overhead tests).
//! - [`span`]: [`Span`] measures one request with monotonic clocks and
//!   produces a [`RequestTrace`] — the Optimus phase breakdown
//!   (wait / init / load-or-transform / compute, §8.3 of the paper),
//!   start kind (warm / cold / transform, Fig. 14), plan-cache outcome,
//!   transform step count, and serving node.
//! - [`sink`]: the [`TelemetrySink`] trait consumes finished traces.
//!   [`MetricsSink`] folds them into the canonical metric families below;
//!   [`JsonlSink`] appends one JSON line per request; [`FanoutSink`]
//!   combines sinks.
//!
//! ## Canonical metric families
//!
//! | name | type | labels |
//! |------|------|--------|
//! | `optimus_requests_total` | counter | `kind="warm\|cold\|transform"` |
//! | `optimus_request_seconds` | histogram | — |
//! | `optimus_phase_seconds` | histogram | `phase="wait\|init\|load\|compute"` |
//! | `optimus_transform_steps_total` | counter | — |
//! | `optimus_plan_cache_total` | counter | `result="hit\|miss\|reject"` |
//! | `optimus_planning_seconds` | histogram | — |
//! | `optimus_placement_total` | counter | `strategy` |
//! | `optimus_containers` | gauge | `node` |
//! | `optimus_http_requests_total` | counter | `code` |
//! | `optimus_faults_injected_total` | counter | `kind="node_crash\|container_kill\|transform_failure"` |
//! | `optimus_safeguard_escalations_total` | counter | `node` |
//! | `optimus_transform_overruns_total` | counter | `node` |
//! | `optimus_fault_evictions_total` | counter | `node` |
//! | `optimus_reroutes_total` | counter | — |
//! | `optimus_fault_retries_total` | counter | — |
//! | `optimus_node_healthy` | gauge | `node` |
//!
//! ```
//! use optimus_telemetry::{MetricsSink, Span, Phase, StartKind, TelemetrySink};
//! use std::sync::Arc;
//!
//! let registry = Arc::new(optimus_telemetry::MetricsRegistry::new());
//! let sink = MetricsSink::new(registry.clone());
//!
//! let mut span = Span::begin("resnet50", 3);
//! span.add(Phase::Wait, 0.002);
//! let out = span.time(Phase::Compute, || 2 + 2);
//! span.set_kind(StartKind::Warm);
//! sink.record(&span.finish());
//!
//! assert_eq!(out, 4);
//! let text = registry.render_prometheus();
//! assert!(text.contains("optimus_requests_total{kind=\"warm\"} 1"));
//! ```

pub mod registry;
pub mod sink;
pub mod span;

pub use registry::{
    default_latency_bounds, exact_percentile, Counter, Gauge, Histogram, MetricKey, MetricsRegistry,
};
pub use sink::{FanoutSink, JsonlSink, MetricsSink, NullSink, TelemetrySink};
pub use span::{Phase, RequestTrace, Span, StartKind};

use std::sync::{Arc, OnceLock};

/// The process-wide default registry.
///
/// Components that are not handed an explicit registry (the plan cache,
/// the load balancer, a gateway built without a `metrics` override)
/// record here, so a plain production setup exposes everything through
/// one `/metrics` endpoint. Tests that need hermetic counts construct
/// their own [`MetricsRegistry`] instead.
pub fn global() -> Arc<MetricsRegistry> {
    static GLOBAL: OnceLock<Arc<MetricsRegistry>> = OnceLock::new();
    GLOBAL
        .get_or_init(|| Arc::new(MetricsRegistry::new()))
        .clone()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn global_registry_is_shared() {
        let a = global();
        a.counter("optimus_test_global_total", &[]).inc();
        let b = global();
        assert!(b.counter("optimus_test_global_total", &[]).get() >= 1);
    }
}
