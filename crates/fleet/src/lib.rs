//! # optimus-fleet — elastic autoscaling with P2P chunk-multicast warming
//!
//! The paper's thesis — warm inference by transforming resident models
//! instead of cold-starting — assumes a fleet that can actually *grow*
//! under a flash crowd. A static node set makes every joining node pay an
//! independent `Remote` fetch of the hot model, so time-to-all-warm grows
//! linearly in the number of joiners and the origin link saturates exactly
//! when demand spikes. λScale showed serverless model scaling becomes fast
//! when nodes distribute weights peer-to-peer in `O(log N)` multicast
//! rounds; the content-addressed chunks of `optimus-store` make that tree
//! a plain plan over chunk sets already resident in peer `NodeStore`s.
//!
//! Two pieces, both deterministic pure functions of observed state (so
//! simulation runs stay byte-identical at any thread count):
//!
//! - [`Autoscaler`] — scale-out on sustained slot pressure with
//!   hysteresis ([`FleetConfig::sustain_s`]) and a cooldown between
//!   events; scale-in rides the existing keep-alive machinery (a node
//!   past [`FleetConfig::scale_in_idle_s`] with no containers drains).
//! - [`plan_multicast`] — a binomial transfer tree over the joining
//!   nodes: every node that holds the chunks forwards them to one cold
//!   node per round, so the warm set doubles each round and `N` joiners
//!   warm in `⌈log2⌉` rounds instead of `N` origin fetches. Per-edge cost
//!   is the inter-node [`TierParams`] of
//!   [`StoreConfig::interconnect`](optimus_store::StoreConfig).
//!
//! [`FleetReport`] is the run-level summary the simulator embeds in its
//! `SimReport` (omitted entirely when the fleet layer is disabled).

mod autoscaler;
mod config;
mod multicast;

pub use autoscaler::{Autoscaler, FleetSignals, ScaleDecision};
pub use config::FleetConfig;
pub use multicast::{plan_multicast, remote_only_seconds, MulticastPlan, PeerSource, TransferEdge};

use serde::{Deserialize, Serialize};

/// Run-level fleet summary: scale events, multicast traffic, and the
/// resilience counters of the elastic layer.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct FleetReport {
    /// Scale-out decisions taken.
    pub scale_outs: u64,
    /// Scale-in (drain) decisions taken.
    pub scale_ins: u64,
    /// Nodes that finished warming and joined the fleet.
    pub nodes_added: u64,
    /// Nodes drained back out of the fleet.
    pub nodes_removed: u64,
    /// Peak concurrently active node count.
    pub peak_nodes: usize,
    /// Multicast waves planned (one per scale-out with a store).
    pub multicast_waves: u64,
    /// Total transfer rounds across all waves (including re-roots).
    pub multicast_rounds: u64,
    /// Bytes moved over peer-to-peer interconnect edges.
    pub multicast_bytes: u64,
    /// Bytes fetched from the remote origin to warm joiners (tree
    /// injections and remote-only mode).
    pub remote_warm_bytes: u64,
    /// Multicast trees re-rooted after a node crash mid-transfer.
    pub reroots: u64,
    /// Worst provision-to-all-warm latency over all waves (seconds).
    pub time_to_all_warm: f64,
}
