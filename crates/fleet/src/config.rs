//! Elastic-fleet configuration.

use serde::{Deserialize, Serialize};

/// Parameters of the elastic fleet: autoscaler thresholds and the
/// provisioning/warming model of joining nodes.
///
/// The autoscaler is intentionally simple — a slot-pressure threshold
/// with hysteresis and a cooldown — because every decision must be a pure
/// function of observed simulation state for runs to stay byte-identical
/// at any thread count. All times are virtual seconds.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FleetConfig {
    /// Upper bound on concurrently active nodes (initial nodes included).
    pub max_nodes: usize,
    /// Scale out when `(busy slots + queued) / total slots` of the active
    /// fleet is at or above this fraction, sustained for
    /// [`FleetConfig::sustain_s`].
    pub scale_out_pressure: f64,
    /// Pressure must persist this long before a scale-out fires
    /// (hysteresis against one-arrival spikes).
    pub sustain_s: f64,
    /// Minimum time between scale-out events.
    pub cooldown_s: f64,
    /// Nodes added per scale-out event.
    pub step: usize,
    /// An extra node with no containers drains after this many idle
    /// seconds (scale-in rides the keep-alive machinery: containers must
    /// have expired first, so this bounds the node's extra lifetime).
    pub scale_in_idle_s: f64,
    /// Sandbox/VM provisioning latency of a joining node, paid before any
    /// weight transfer starts.
    pub provision_s: f64,
    /// Warm joining nodes peer-to-peer over the binomial multicast tree;
    /// `false` makes every joiner fetch from the remote origin over its
    /// shared egress link (the linear baseline `exp_scale_out` compares
    /// against).
    pub multicast: bool,
}

impl Default for FleetConfig {
    fn default() -> Self {
        FleetConfig {
            max_nodes: 8,
            scale_out_pressure: 0.8,
            sustain_s: 5.0,
            cooldown_s: 60.0,
            step: 2,
            scale_in_idle_s: 300.0,
            provision_s: 2.0,
            multicast: true,
        }
    }
}

impl FleetConfig {
    /// Check parameter sanity.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        if self.max_nodes == 0 {
            return Err("max_nodes must be positive".into());
        }
        if !(self.scale_out_pressure > 0.0 && self.scale_out_pressure <= 1.0) {
            return Err("scale_out_pressure must be in (0, 1]".into());
        }
        if self.step == 0 {
            return Err("step must be positive".into());
        }
        for (name, v) in [
            ("sustain_s", self.sustain_s),
            ("cooldown_s", self.cooldown_s),
            ("scale_in_idle_s", self.scale_in_idle_s),
            ("provision_s", self.provision_s),
        ] {
            if !(v.is_finite() && v >= 0.0) {
                return Err(format!("{name} must be finite and non-negative"));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_valid() {
        FleetConfig::default().validate().unwrap();
    }

    #[test]
    fn invalid_parameters_are_rejected() {
        let base = FleetConfig::default();
        for bad in [
            FleetConfig {
                max_nodes: 0,
                ..base
            },
            FleetConfig {
                scale_out_pressure: 0.0,
                ..base
            },
            FleetConfig {
                scale_out_pressure: 1.5,
                ..base
            },
            FleetConfig { step: 0, ..base },
            FleetConfig {
                sustain_s: -1.0,
                ..base
            },
            FleetConfig {
                cooldown_s: f64::NAN,
                ..base
            },
            FleetConfig {
                provision_s: f64::INFINITY,
                ..base
            },
        ] {
            assert!(bad.validate().is_err(), "{bad:?} must be rejected");
        }
    }

    #[test]
    fn config_serializes() {
        let c = FleetConfig::default();
        let json = serde_json::to_string(&c).unwrap();
        let back: FleetConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(back, c);
    }
}
