//! Hysteresis autoscaler over fleet slot pressure.

use crate::config::FleetConfig;

/// What the platform observed at one decision point: the concurrency and
/// queue-depth signals the autoscaler reacts to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FleetSignals {
    /// Nodes currently active and ready to serve.
    pub active_nodes: usize,
    /// Container slots with a running request across the active fleet.
    pub busy_slots: usize,
    /// Total container slots across the active fleet.
    pub total_slots: usize,
    /// Requests waiting on a slot (queue-depth proxy).
    pub queued: usize,
    /// Arrivals the platform's predictor forecasts within its scale-out
    /// horizon (0 when prediction is off — the purely reactive signal).
    pub predicted: usize,
}

impl FleetSignals {
    /// Slot pressure in `[0, ∞)`: busy, queued, and predicted work over
    /// capacity (1.0 when empty, so a zero-capacity fleet always reads
    /// saturated). With `predicted == 0` this is the classic reactive
    /// pressure bit-for-bit.
    pub fn pressure(&self) -> f64 {
        if self.total_slots == 0 {
            1.0
        } else {
            (self.busy_slots + self.queued + self.predicted) as f64 / self.total_slots as f64
        }
    }
}

/// One autoscaler verdict.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScaleDecision {
    /// No change.
    Hold,
    /// Add this many nodes (capped to [`FleetConfig::max_nodes`]).
    ScaleOut(usize),
}

/// Deterministic scale-out controller: pressure at or above the threshold
/// sustained for [`FleetConfig::sustain_s`] seconds fires a
/// [`ScaleDecision::ScaleOut`], at most once per
/// [`FleetConfig::cooldown_s`]. Every decision is a pure function of
/// `(config, observation history)` — no wall clock, no randomness — so
/// simulation runs embed identically under any thread count.
///
/// Scale-in is not decided here: an idle extra node drains through the
/// keep-alive machinery once [`Autoscaler::scale_in_ready`] says its idle
/// window elapsed.
#[derive(Debug, Clone)]
pub struct Autoscaler {
    config: FleetConfig,
    /// Virtual time since which pressure has been continuously at or
    /// above the threshold; `NAN` while below it.
    pressure_since: f64,
    /// Virtual time of the last scale-out.
    last_scale: f64,
}

impl Autoscaler {
    /// A fresh controller under `config`.
    ///
    /// # Panics
    ///
    /// Panics when the configuration is invalid
    /// ([`FleetConfig::validate`]).
    pub fn new(config: FleetConfig) -> Self {
        config.validate().expect("fleet config must be valid");
        Autoscaler {
            config,
            pressure_since: f64::NAN,
            last_scale: f64::NEG_INFINITY,
        }
    }

    /// The configuration this controller runs under.
    pub fn config(&self) -> &FleetConfig {
        &self.config
    }

    /// Feed one observation at virtual time `now` (non-decreasing across
    /// calls) and get the verdict.
    pub fn observe(&mut self, now: f64, signals: &FleetSignals) -> ScaleDecision {
        if signals.pressure() < self.config.scale_out_pressure {
            self.pressure_since = f64::NAN;
            return ScaleDecision::Hold;
        }
        if self.pressure_since.is_nan() {
            self.pressure_since = now;
        }
        let sustained = now - self.pressure_since >= self.config.sustain_s;
        let cooled = now - self.last_scale >= self.config.cooldown_s;
        let headroom = self.config.max_nodes.saturating_sub(signals.active_nodes);
        if sustained && cooled && headroom > 0 {
            self.last_scale = now;
            self.pressure_since = f64::NAN;
            ScaleDecision::ScaleOut(self.config.step.min(headroom))
        } else {
            ScaleDecision::Hold
        }
    }

    /// Whether an extra node with no containers since `idle_since` may
    /// drain at `now`.
    pub fn scale_in_ready(&self, now: f64, idle_since: f64) -> bool {
        now - idle_since >= self.config.scale_in_idle_s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config() -> FleetConfig {
        FleetConfig {
            max_nodes: 6,
            scale_out_pressure: 0.8,
            sustain_s: 5.0,
            cooldown_s: 30.0,
            step: 2,
            ..FleetConfig::default()
        }
    }

    fn hot(active: usize) -> FleetSignals {
        FleetSignals {
            active_nodes: active,
            busy_slots: 9,
            total_slots: 10,
            queued: 3,
            predicted: 0,
        }
    }

    fn cold(active: usize) -> FleetSignals {
        FleetSignals {
            active_nodes: active,
            busy_slots: 1,
            total_slots: 10,
            queued: 0,
            predicted: 0,
        }
    }

    #[test]
    fn pressure_is_busy_plus_queued_over_slots() {
        assert!((hot(2).pressure() - 1.2).abs() < 1e-12);
        assert!((cold(2).pressure() - 0.1).abs() < 1e-12);
        let empty = FleetSignals {
            active_nodes: 0,
            busy_slots: 0,
            total_slots: 0,
            queued: 0,
            predicted: 0,
        };
        assert_eq!(empty.pressure(), 1.0, "no capacity reads saturated");
    }

    #[test]
    fn predicted_arrivals_raise_pressure() {
        // A quiet fleet with forecast arrivals reads hot: the predictor
        // can fire scale-out before the queue ever builds.
        let mut s = cold(2);
        assert!(s.pressure() < 0.8);
        s.predicted = 8;
        assert!((s.pressure() - 0.9).abs() < 1e-12);
        let mut a = Autoscaler::new(config());
        assert_eq!(a.observe(0.0, &s), ScaleDecision::Hold);
        assert_eq!(a.observe(5.0, &s), ScaleDecision::ScaleOut(2));
    }

    #[test]
    fn spike_shorter_than_sustain_holds() {
        let mut a = Autoscaler::new(config());
        assert_eq!(a.observe(0.0, &hot(2)), ScaleDecision::Hold);
        assert_eq!(a.observe(2.0, &hot(2)), ScaleDecision::Hold);
        // Pressure dropped: the sustain window restarts.
        assert_eq!(a.observe(4.0, &cold(2)), ScaleDecision::Hold);
        assert_eq!(a.observe(6.0, &hot(2)), ScaleDecision::Hold);
        assert_eq!(a.observe(10.0, &hot(2)), ScaleDecision::Hold);
        assert_eq!(a.observe(11.0, &hot(2)), ScaleDecision::ScaleOut(2));
    }

    #[test]
    fn cooldown_rate_limits_scale_outs() {
        let mut a = Autoscaler::new(config());
        assert_eq!(a.observe(0.0, &hot(2)), ScaleDecision::Hold);
        assert_eq!(a.observe(5.0, &hot(2)), ScaleDecision::ScaleOut(2));
        // Still hot, sustain elapses again, but the cooldown gates it.
        assert_eq!(a.observe(6.0, &hot(4)), ScaleDecision::Hold);
        assert_eq!(a.observe(12.0, &hot(4)), ScaleDecision::Hold);
        assert_eq!(a.observe(35.0, &hot(4)), ScaleDecision::ScaleOut(2));
    }

    #[test]
    fn scale_out_caps_at_max_nodes() {
        let mut a = Autoscaler::new(config());
        a.observe(0.0, &hot(5));
        assert_eq!(
            a.observe(5.0, &hot(5)),
            ScaleDecision::ScaleOut(1),
            "one slot of headroom left"
        );
        let mut b = Autoscaler::new(config());
        b.observe(0.0, &hot(6));
        assert_eq!(b.observe(5.0, &hot(6)), ScaleDecision::Hold, "at max");
    }

    #[test]
    fn decisions_are_deterministic() {
        let run = || {
            let mut a = Autoscaler::new(config());
            (0..200)
                .map(|i| {
                    let t = i as f64 * 0.5;
                    let s = if i % 7 < 5 { hot(3) } else { cold(3) };
                    (t, a.observe(t, &s))
                })
                .collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn scale_in_waits_for_idle_window() {
        let a = Autoscaler::new(config());
        assert!(!a.scale_in_ready(10.0, 0.0));
        assert!(a.scale_in_ready(300.0, 0.0));
    }
}
