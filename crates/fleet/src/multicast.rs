//! Binomial peer-to-peer multicast planning over content-addressed
//! chunks.
//!
//! Joining nodes are warmed from peers that already hold the hot model's
//! chunk set, not from the remote origin: each round, every node holding
//! the chunks forwards the full set to one cold node over the inter-node
//! interconnect, so the warm set doubles per round and `N` joiners warm
//! in `⌈log2⌉` rounds. When no peer holds the chunks yet, round 0 injects
//! one copy from the remote origin and the tree grows from there.
//!
//! The planner is a pure function of its arguments — node indices in, a
//! deterministic edge list out — which is what lets the simulator re-plan
//! (re-root) mid-transfer after a crash without perturbing byte-identity.

use optimus_store::TierParams;

/// Where one transfer edge reads its bytes from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PeerSource {
    /// The remote model repository (origin injection).
    Remote,
    /// A peer node already holding the chunk set.
    Peer(usize),
}

/// One edge of the transfer tree: `from` streams the chunk set to node
/// `to` during `round`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TransferEdge {
    /// Zero-based transfer round (edges of one round run in parallel over
    /// disjoint node pairs).
    pub round: usize,
    /// Data source.
    pub from: PeerSource,
    /// Receiving node.
    pub to: usize,
    /// Bytes moved over this edge.
    pub bytes: u64,
}

/// A planned multicast: the edge list plus its timing.
#[derive(Debug, Clone, PartialEq)]
pub struct MulticastPlan {
    /// All transfer edges, in `(round, receiver)` order.
    pub edges: Vec<TransferEdge>,
    /// Wall-clock seconds of each round (a round ends when its slowest
    /// edge finishes; edges within a round are disjoint and parallel).
    pub round_seconds: Vec<f64>,
    /// `(node, offset)` — seconds after the plan starts at which each
    /// requested joiner holds the full chunk set (0 for joiners that were
    /// already seeds). Sorted by offset, then node.
    pub warm_at: Vec<(usize, f64)>,
    /// Seconds until every joiner is warm (sum of `round_seconds`).
    pub total_seconds: f64,
    /// Bytes moved over peer-to-peer edges.
    pub peer_bytes: u64,
    /// Bytes injected from the remote origin.
    pub remote_bytes: u64,
}

impl MulticastPlan {
    /// Number of transfer rounds.
    pub fn rounds(&self) -> usize {
        self.round_seconds.len()
    }

    /// Total bytes delivered to `node` across its incoming edges.
    pub fn delivered_to(&self, node: usize) -> u64 {
        self.edges
            .iter()
            .filter(|e| e.to == node)
            .map(|e| e.bytes)
            .sum()
    }
}

/// Plan warming `joiners` with a chunk set of `bytes` bytes from the
/// nodes in `seeds` that already hold it.
///
/// `inter` prices each peer-to-peer edge, `remote` the origin injection
/// used when `seeds` is empty (e.g. after a crash wiped every replica).
/// Joiners already listed in `seeds` are warm at offset 0; duplicate
/// joiners are planned once.
pub fn plan_multicast(
    seeds: &[usize],
    joiners: &[usize],
    bytes: u64,
    inter: TierParams,
    remote: TierParams,
) -> MulticastPlan {
    let mut warm: Vec<usize> = Vec::with_capacity(seeds.len());
    for &s in seeds {
        if !warm.contains(&s) {
            warm.push(s);
        }
    }
    let mut warm_at: Vec<(usize, f64)> = Vec::with_capacity(joiners.len());
    let mut pending: Vec<usize> = Vec::with_capacity(joiners.len());
    for &j in joiners {
        if warm.contains(&j) {
            warm_at.push((j, 0.0));
        } else if !pending.contains(&j) {
            pending.push(j);
        }
    }
    let mut plan = MulticastPlan {
        edges: Vec::new(),
        round_seconds: Vec::new(),
        warm_at,
        total_seconds: 0.0,
        peer_bytes: 0,
        remote_bytes: 0,
    };
    let mut round = 0usize;
    let mut elapsed = 0.0f64;
    // No replica anywhere: round 0 injects one copy from the origin.
    if warm.is_empty() && !pending.is_empty() {
        let first = pending.remove(0);
        plan.edges.push(TransferEdge {
            round,
            from: PeerSource::Remote,
            to: first,
            bytes,
        });
        plan.remote_bytes += bytes;
        let dt = remote.transport_seconds(bytes);
        plan.round_seconds.push(dt);
        elapsed += dt;
        plan.warm_at.push((first, elapsed));
        warm.push(first);
        round += 1;
    }
    // Binomial rounds: every warm node forwards to one pending node.
    while !pending.is_empty() {
        let senders = warm.len().min(pending.len());
        let mut received = Vec::with_capacity(senders);
        for &from in warm.iter().take(senders) {
            let to = pending.remove(0);
            plan.edges.push(TransferEdge {
                round,
                from: PeerSource::Peer(from),
                to,
                bytes,
            });
            plan.peer_bytes += bytes;
            received.push(to);
        }
        let dt = inter.transport_seconds(bytes);
        plan.round_seconds.push(dt);
        elapsed += dt;
        for to in received {
            plan.warm_at.push((to, elapsed));
            warm.push(to);
        }
        round += 1;
    }
    plan.total_seconds = elapsed;
    plan.warm_at.sort_by(|a, b| {
        a.1.partial_cmp(&b.1)
            .expect("finite offsets")
            .then(a.0.cmp(&b.0))
    });
    plan
}

/// Time for `n` joiners to each fetch `bytes` from the remote origin over
/// its shared egress link — the linear baseline multicast replaces. The
/// per-fetch latency overlaps across joiners; the egress bandwidth does
/// not.
pub fn remote_only_seconds(n: usize, bytes: u64, remote: TierParams) -> f64 {
    if n == 0 || bytes == 0 {
        0.0
    } else {
        n as f64 * bytes as f64 / remote.bandwidth_bytes_per_s + remote.latency_s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn inter() -> TierParams {
        TierParams {
            bandwidth_bytes_per_s: 2.5e9,
            latency_s: 0.001,
        }
    }

    fn remote() -> TierParams {
        TierParams {
            bandwidth_bytes_per_s: 100.0e6,
            latency_s: 0.05,
        }
    }

    const MB: u64 = 1024 * 1024;

    #[test]
    fn seeded_tree_doubles_each_round() {
        let joiners: Vec<usize> = (1..8).collect();
        let plan = plan_multicast(&[0], &joiners, 100 * MB, inter(), remote());
        // 1 seed, 7 joiners: warm counts 1 → 2 → 4 → 8, so 3 rounds.
        assert_eq!(plan.rounds(), 3);
        assert_eq!(plan.remote_bytes, 0, "a seed exists, no origin fetch");
        assert_eq!(plan.peer_bytes, 7 * 100 * MB);
        // Every joiner receives the full set exactly once.
        for &j in &joiners {
            assert_eq!(plan.delivered_to(j), 100 * MB);
        }
        assert_eq!(plan.delivered_to(0), 0, "the seed receives nothing");
        // Rounds carry 1, 2, 4 edges.
        let per_round: Vec<usize> = (0..3)
            .map(|r| plan.edges.iter().filter(|e| e.round == r).count())
            .collect();
        assert_eq!(per_round, vec![1, 2, 4]);
        assert!((plan.total_seconds - plan.round_seconds.iter().sum::<f64>()).abs() < 1e-12);
    }

    #[test]
    fn seedless_tree_injects_once_from_remote() {
        let plan = plan_multicast(&[], &[3, 4, 5, 6], 10 * MB, inter(), remote());
        assert_eq!(plan.remote_bytes, 10 * MB, "exactly one origin injection");
        assert_eq!(plan.peer_bytes, 3 * 10 * MB);
        assert_eq!(plan.edges[0].from, PeerSource::Remote);
        assert_eq!(plan.edges[0].to, 3);
        // Injection + binomial over the remaining 3: 1 + 2 = 3 rounds.
        assert_eq!(plan.rounds(), 3);
        assert!(plan.round_seconds[0] > plan.round_seconds[1]);
    }

    #[test]
    fn rounds_are_logarithmic_and_beat_remote_only() {
        for n in 1..=64usize {
            let joiners: Vec<usize> = (1..=n).collect();
            let plan = plan_multicast(&[0], &joiners, 100 * MB, inter(), remote());
            let bound = (n + 1).next_power_of_two().trailing_zeros() as usize;
            assert!(
                plan.rounds() <= bound,
                "{n} joiners took {} rounds, bound {bound}",
                plan.rounds()
            );
            let linear = remote_only_seconds(n, 100 * MB, remote());
            assert!(
                plan.total_seconds <= linear,
                "multicast {:.3}s must not exceed remote-only {linear:.3}s at n={n}",
                plan.total_seconds
            );
        }
    }

    #[test]
    fn joiners_already_seeded_are_warm_at_zero() {
        let plan = plan_multicast(&[0, 1], &[1, 2, 2], 4 * MB, inter(), remote());
        assert_eq!(plan.warm_at[0], (1, 0.0));
        assert_eq!(plan.delivered_to(1), 0);
        assert_eq!(plan.delivered_to(2), 4 * MB, "duplicates planned once");
        assert_eq!(plan.rounds(), 1);
    }

    #[test]
    fn empty_inputs_are_empty_plans() {
        let plan = plan_multicast(&[0], &[], 4 * MB, inter(), remote());
        assert_eq!(plan.rounds(), 0);
        assert_eq!(plan.total_seconds, 0.0);
        assert!(plan.edges.is_empty());
        assert_eq!(remote_only_seconds(0, 4 * MB, remote()), 0.0);
        assert_eq!(remote_only_seconds(3, 0, remote()), 0.0);
    }

    #[test]
    fn warm_at_offsets_are_cumulative_round_times() {
        let plan = plan_multicast(&[0], &[1, 2, 3], 50 * MB, inter(), remote());
        let r = inter().transport_seconds(50 * MB);
        // Node 1 warm after round 1; nodes 2 and 3 after round 2.
        assert!((plan.warm_at[0].1 - r).abs() < 1e-12);
        assert_eq!(plan.warm_at[0].0, 1);
        for &(node, at) in &plan.warm_at[1..] {
            assert!((at - 2.0 * r).abs() < 1e-12, "node {node} at {at}");
        }
    }
}
