//! Property tests of the multicast planner: for ANY seed/joiner sets the
//! plan delivers exactly the chunk-set bytes to every cold joiner — the
//! same payload the remote-only baseline would fetch — in at most
//! ⌈log2⌉ rounds, never slower than the linear baseline.

use optimus_fleet::{plan_multicast, remote_only_seconds, PeerSource};
use optimus_store::TierParams;
use proptest::prelude::*;

fn inter() -> TierParams {
    TierParams {
        bandwidth_bytes_per_s: 2.5e9,
        latency_s: 0.001,
    }
}

fn remote() -> TierParams {
    TierParams {
        bandwidth_bytes_per_s: 100.0e6,
        latency_s: 0.05,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Byte conservation: every joiner not already seeded receives the
    /// full chunk set exactly once (never partial, never duplicated), and
    /// the plan's total traffic equals what remote-only fetches would
    /// move — multicast changes the bytes' *source*, not their amount.
    #[test]
    fn multicast_delivers_the_same_chunk_set_as_remote_only(
        seeds in prop::collection::vec(0usize..24, 0..5),
        joiners in prop::collection::vec(0usize..24, 0..12),
        mib in 1u64..512,
    ) {
        let bytes = mib * 1024 * 1024;
        let plan = plan_multicast(&seeds, &joiners, bytes, inter(), remote());
        let mut cold: Vec<usize> = joiners
            .iter()
            .copied()
            .filter(|j| !seeds.contains(j))
            .collect();
        cold.sort_unstable();
        cold.dedup();
        for &j in &cold {
            prop_assert_eq!(
                plan.delivered_to(j),
                bytes,
                "joiner {} must receive the full set exactly once",
                j
            );
        }
        for &s in &seeds {
            prop_assert_eq!(plan.delivered_to(s), 0, "seed {} receives nothing", s);
        }
        // Total conservation against the linear baseline's payload.
        prop_assert_eq!(
            plan.peer_bytes + plan.remote_bytes,
            cold.len() as u64 * bytes
        );
        // The origin is touched only when no replica exists anywhere.
        let injections = plan
            .edges
            .iter()
            .filter(|e| e.from == PeerSource::Remote)
            .count();
        if seeds.is_empty() && !cold.is_empty() {
            prop_assert_eq!(injections, 1, "seedless tree injects exactly once");
        } else {
            prop_assert_eq!(injections, 0, "seeded tree never touches the origin");
        }
    }

    /// The tree warms N joiners in at most ⌈log2(N+1)⌉ rounds (plus the
    /// seedless injection round) and never takes longer than N serial
    /// origin fetches.
    #[test]
    fn rounds_stay_logarithmic_and_never_lose_to_the_baseline(
        n_seeds in 0usize..4,
        n_joiners in 1usize..32,
        mib in 1u64..512,
    ) {
        let bytes = mib * 1024 * 1024;
        let seeds: Vec<usize> = (0..n_seeds).collect();
        let joiners: Vec<usize> = (n_seeds..n_seeds + n_joiners).collect();
        let plan = plan_multicast(&seeds, &joiners, bytes, inter(), remote());
        let doubling = (n_joiners + n_seeds.max(1))
            .next_power_of_two()
            .trailing_zeros() as usize;
        let bound = doubling + usize::from(n_seeds == 0);
        prop_assert!(
            plan.rounds() <= bound,
            "{} joiners from {} seeds took {} rounds, bound {}",
            n_joiners, n_seeds, plan.rounds(), bound
        );
        let linear = remote_only_seconds(n_joiners, bytes, remote());
        prop_assert!(
            plan.total_seconds <= linear + 1e-9,
            "multicast {}s exceeds remote-only {}s",
            plan.total_seconds, linear
        );
        // Pure function: the same inputs re-plan to the identical tree
        // (what makes mid-transfer re-rooting deterministic).
        let again = plan_multicast(&seeds, &joiners, bytes, inter(), remote());
        prop_assert_eq!(plan, again);
    }
}
