//! Property-based tests of the workload generators.

use optimus_workload::{demand_histogram, AzureTraceGenerator, PoissonGenerator, Trace};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Poisson traces are sorted, bounded, and deterministic per seed.
    #[test]
    fn poisson_traces_well_formed(
        lambda in 0.001f64..0.1,
        duration in 1_000.0f64..50_000.0,
        seed in any::<u64>(),
        nfns in 1usize..8,
    ) {
        let fns: Vec<String> = (0..nfns).map(|i| format!("f{i}")).collect();
        let g = PoissonGenerator::new(lambda, duration, seed);
        let t = g.generate(&fns);
        prop_assert!(t.invocations.windows(2).all(|w| w[0].time <= w[1].time));
        prop_assert!(t.invocations.iter().all(|i| (0.0..duration).contains(&i.time)));
        prop_assert_eq!(t.clone(), g.generate(&fns));
    }

    /// Azure traces are sorted, bounded, and deterministic per seed.
    #[test]
    fn azure_traces_well_formed(
        duration in 5_000.0f64..100_000.0,
        seed in any::<u64>(),
        nfns in 1usize..12,
    ) {
        let fns: Vec<String> = (0..nfns).map(|i| format!("f{i}")).collect();
        let g = AzureTraceGenerator::new(duration, seed);
        let t = g.generate(&fns);
        prop_assert!(t.invocations.windows(2).all(|w| w[0].time <= w[1].time));
        prop_assert!(t.invocations.iter().all(|i| (0.0..duration).contains(&i.time)));
        prop_assert_eq!(t.clone(), g.generate(&fns));
    }

    /// The demand histogram partitions a function's invocations: slot sums
    /// equal the invocation count.
    #[test]
    fn demand_histogram_partitions(
        lambda in 0.005f64..0.05,
        seed in any::<u64>(),
        slot in prop::sample::select(vec![60.0, 300.0, 900.0]),
    ) {
        let fns = vec!["a".to_string(), "b".to_string()];
        let t = PoissonGenerator::new(lambda, 20_000.0, seed).generate(&fns);
        for f in &fns {
            let hist = demand_histogram(&t, f, slot);
            let total: f64 = hist.iter().sum();
            let count = t.invocations.iter().filter(|i| &i.function == f).count();
            prop_assert_eq!(total as usize, count);
        }
    }

    /// Trace merge preserves every invocation and global ordering.
    #[test]
    fn merge_preserves_invocations(
        l1 in 0.005f64..0.03,
        l2 in 0.005f64..0.03,
        seed in any::<u64>(),
    ) {
        let a = PoissonGenerator::new(l1, 10_000.0, seed).generate(&["x".to_string()]);
        let b = PoissonGenerator::new(l2, 12_000.0, seed ^ 1).generate(&["y".to_string()]);
        let (na, nb) = (a.len(), b.len());
        let m = a.merge(b);
        prop_assert_eq!(m.len(), na + nb);
        prop_assert_eq!(m.duration, 12_000.0);
        prop_assert!(m.invocations.windows(2).all(|w| w[0].time <= w[1].time));
    }

    /// JSON round-trip for arbitrary traces.
    #[test]
    fn trace_json_roundtrip(lambda in 0.001f64..0.02, seed in any::<u64>()) {
        let t = PoissonGenerator::new(lambda, 5_000.0, seed)
            .generate(&["f".to_string()]);
        let back = Trace::from_json(&t.to_json()).unwrap();
        prop_assert_eq!(t, back);
    }
}
