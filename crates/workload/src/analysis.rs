//! Trace analysis: per-function arrival statistics and temporal-pattern
//! classification.
//!
//! The §5.1 balancer and capacity planning both depend on understanding
//! each function's demand dynamics ("highly dynamic and sporadic, periodic
//! and bursty", §4.1). This module recovers those characteristics from raw
//! traces: inter-arrival statistics, burstiness, peak-to-mean ratios, and
//! a steady / periodic / bursty classification that inverts the
//! [`crate::AzureTraceGenerator`] mixture.

use serde::{Deserialize, Serialize};

use crate::trace::{demand_histogram, Trace};

/// Temporal pattern classes (the published Azure mixture).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PatternClass {
    /// Poisson-like arrivals: inter-arrival CV ≈ 1.
    Steady,
    /// Timer-like arrivals: inter-arrival CV ≪ 1.
    Periodic,
    /// On/off episodes: inter-arrival CV ≫ 1.
    Bursty,
    /// Too few invocations to classify.
    Unknown,
}

/// Arrival statistics of one function within a trace.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FunctionStats {
    /// Function name.
    pub function: String,
    /// Invocation count.
    pub count: usize,
    /// Mean arrival rate (requests/second over the trace duration).
    pub rate: f64,
    /// Mean inter-arrival gap (s); 0 when fewer than 2 invocations.
    pub mean_gap: f64,
    /// Coefficient of variation of inter-arrival gaps.
    pub cv_gap: f64,
    /// Burstiness index `B = (cv − 1) / (cv + 1)` (Goh & Barabási):
    /// −1 = perfectly periodic, 0 = Poisson, → 1 = extremely bursty.
    pub burstiness: f64,
    /// Peak-to-mean ratio of the per-slot demand histogram.
    pub peak_to_mean: f64,
}

impl FunctionStats {
    /// Compute statistics for `function` over `trace`, bucketing demand
    /// into `slot_seconds` slots for the peak-to-mean ratio.
    pub fn of(trace: &Trace, function: &str, slot_seconds: f64) -> FunctionStats {
        let times: Vec<f64> = trace
            .invocations
            .iter()
            .filter(|i| i.function == function)
            .map(|i| i.time)
            .collect();
        let count = times.len();
        let rate = count as f64 / trace.duration.max(f64::MIN_POSITIVE);
        let gaps: Vec<f64> = times.windows(2).map(|w| w[1] - w[0]).collect();
        let (mean_gap, cv_gap) = if gaps.is_empty() {
            (0.0, 0.0)
        } else {
            let mean = gaps.iter().sum::<f64>() / gaps.len() as f64;
            let var = gaps.iter().map(|g| (g - mean) * (g - mean)).sum::<f64>() / gaps.len() as f64;
            let cv = if mean > 0.0 { var.sqrt() / mean } else { 0.0 };
            (mean, cv)
        };
        let burstiness = if cv_gap + 1.0 > 0.0 {
            (cv_gap - 1.0) / (cv_gap + 1.0)
        } else {
            0.0
        };
        let hist = demand_histogram(trace, function, slot_seconds);
        let mean_slot = hist.iter().sum::<f64>() / hist.len().max(1) as f64;
        let peak = hist.iter().copied().fold(0.0, f64::max);
        let peak_to_mean = if mean_slot > 0.0 {
            peak / mean_slot
        } else {
            0.0
        };
        FunctionStats {
            function: function.to_string(),
            count,
            rate,
            mean_gap,
            cv_gap,
            burstiness,
            peak_to_mean,
        }
    }

    /// Classify the temporal pattern from the inter-arrival CV.
    pub fn classify(&self) -> PatternClass {
        if self.count < 5 {
            return PatternClass::Unknown;
        }
        if self.cv_gap < 0.35 {
            PatternClass::Periodic
        } else if self.cv_gap <= 1.6 {
            PatternClass::Steady
        } else {
            PatternClass::Bursty
        }
    }
}

/// Statistics for every function in a trace, sorted by descending rate.
pub fn analyze_trace(trace: &Trace, slot_seconds: f64) -> Vec<FunctionStats> {
    let mut stats: Vec<FunctionStats> = trace
        .functions()
        .iter()
        .map(|f| FunctionStats::of(trace, f, slot_seconds))
        .collect();
    stats.sort_by(|a, b| {
        b.rate
            .partial_cmp(&a.rate)
            .expect("finite rates")
            .then_with(|| a.function.cmp(&b.function))
    });
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::azure::{AzureTraceGenerator, FunctionPattern};
    use crate::poisson::PoissonGenerator;
    use crate::trace::Invocation;

    #[test]
    fn poisson_classified_as_steady() {
        let trace = PoissonGenerator::new(0.02, 100_000.0, 5).generate(&["f".to_string()]);
        let s = FunctionStats::of(&trace, "f", 300.0);
        assert_eq!(s.classify(), PatternClass::Steady, "cv {}", s.cv_gap);
        assert!((s.cv_gap - 1.0).abs() < 0.25, "Poisson cv {}", s.cv_gap);
        assert!(s.burstiness.abs() < 0.15);
    }

    #[test]
    fn timer_classified_as_periodic() {
        let inv: Vec<Invocation> = (0..100)
            .map(|i| Invocation {
                time: 60.0 * i as f64,
                function: "cron".into(),
            })
            .collect();
        let trace = Trace::new(6_000.0, inv);
        let s = FunctionStats::of(&trace, "cron", 300.0);
        assert_eq!(s.classify(), PatternClass::Periodic);
        assert!(s.burstiness < -0.9, "burstiness {}", s.burstiness);
        assert!((s.mean_gap - 60.0).abs() < 1e-9);
    }

    #[test]
    fn onoff_classified_as_bursty() {
        // 10 bursts of 20 closely spaced requests separated by long gaps.
        let mut inv = Vec::new();
        for burst in 0..10 {
            let start = burst as f64 * 5_000.0;
            for k in 0..20 {
                inv.push(Invocation {
                    time: start + k as f64,
                    function: "spiky".into(),
                });
            }
        }
        let trace = Trace::new(50_000.0, inv);
        let s = FunctionStats::of(&trace, "spiky", 300.0);
        assert_eq!(s.classify(), PatternClass::Bursty, "cv {}", s.cv_gap);
        assert!(s.peak_to_mean > 3.0);
    }

    #[test]
    fn classifier_inverts_the_azure_generator() {
        // Sample many generator functions; the classifier must recover the
        // generator's own pattern label for a clear majority of them.
        let g = AzureTraceGenerator::new(200_000.0, 17);
        let names: Vec<String> = (0..60).map(|i| format!("f{i}")).collect();
        let trace = g.generate(&names);
        let mut agree = 0usize;
        let mut judged = 0usize;
        for (fi, name) in names.iter().enumerate() {
            let truth = match g.pattern_for(fi) {
                FunctionPattern::Steady { .. } => PatternClass::Steady,
                FunctionPattern::Periodic { .. } => PatternClass::Periodic,
                FunctionPattern::Bursty { .. } => PatternClass::Bursty,
            };
            let got = FunctionStats::of(&trace, name, 300.0).classify();
            if got == PatternClass::Unknown {
                continue;
            }
            judged += 1;
            if got == truth {
                agree += 1;
            }
        }
        assert!(judged >= 30, "only {judged} functions had enough data");
        let accuracy = agree as f64 / judged as f64;
        assert!(
            accuracy > 0.7,
            "classifier agrees with generator on only {:.0}% of {judged}",
            100.0 * accuracy
        );
    }

    #[test]
    fn analyze_trace_sorts_by_rate() {
        let mut inv = Vec::new();
        for i in 0..50 {
            inv.push(Invocation {
                time: i as f64 * 10.0,
                function: "hot".into(),
            });
        }
        inv.push(Invocation {
            time: 5.0,
            function: "cold".into(),
        });
        let trace = Trace::new(1_000.0, inv);
        let stats = analyze_trace(&trace, 100.0);
        assert_eq!(stats[0].function, "hot");
        assert_eq!(stats[1].function, "cold");
        assert_eq!(stats[1].classify(), PatternClass::Unknown);
    }
}
