//! Trace data model.

use optimus_model::{FunctionId, Interner};
use serde::{Deserialize, Serialize};

/// One function invocation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Invocation {
    /// Arrival time (seconds from trace start).
    pub time: f64,
    /// Invoked function / model name.
    pub function: String,
}

/// A workload trace: invocations sorted by arrival time.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct Trace {
    /// Trace duration in seconds.
    pub duration: f64,
    /// Time-ordered invocations.
    pub invocations: Vec<Invocation>,
}

impl Trace {
    /// Build a trace from unsorted invocations.
    pub fn new(duration: f64, mut invocations: Vec<Invocation>) -> Self {
        invocations.sort_by(|a, b| {
            a.time
                .partial_cmp(&b.time)
                .expect("finite times")
                .then_with(|| a.function.cmp(&b.function))
        });
        Trace {
            duration,
            invocations,
        }
    }

    /// Number of invocations.
    pub fn len(&self) -> usize {
        self.invocations.len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.invocations.is_empty()
    }

    /// Distinct function names, sorted.
    pub fn functions(&self) -> Vec<String> {
        let mut names: Vec<String> = self
            .invocations
            .iter()
            .map(|i| i.function.clone())
            .collect();
        names.sort();
        names.dedup();
        names
    }

    /// Interned view of the invocations: one [`FunctionId`] per
    /// invocation, in trace order, interning any name `interner` has not
    /// seen yet. Consumers that replay a trace repeatedly (the simulator's
    /// event loop, sweep runners) resolve names to ids once here and run
    /// string-free afterwards.
    pub fn function_ids(&self, interner: &mut Interner<FunctionId>) -> Vec<FunctionId> {
        self.invocations
            .iter()
            .map(|inv| interner.resolve(&inv.function))
            .collect()
    }

    /// Like [`Trace::function_ids`] but read-only: fails on the first
    /// invocation whose function is not already interned (e.g. a trace
    /// naming a function the platform never registered).
    ///
    /// # Errors
    ///
    /// Returns the unknown function name.
    pub fn lookup_function_ids(
        &self,
        interner: &Interner<FunctionId>,
    ) -> Result<Vec<FunctionId>, String> {
        self.invocations
            .iter()
            .map(|inv| {
                interner
                    .get(&inv.function)
                    .ok_or_else(|| inv.function.clone())
            })
            .collect()
    }

    /// Merge two traces (e.g. per-function sub-traces) preserving order.
    pub fn merge(self, other: Trace) -> Trace {
        let duration = self.duration.max(other.duration);
        let mut inv = self.invocations;
        inv.extend(other.invocations);
        Trace::new(duration, inv)
    }

    /// Serialize to JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("trace serialization cannot fail")
    }

    /// Deserialize from JSON.
    ///
    /// # Errors
    ///
    /// Returns the serde error message on malformed input.
    pub fn from_json(json: &str) -> Result<Trace, String> {
        serde_json::from_str(json).map_err(|e| e.to_string())
    }
}

/// Per-function demand histogram: invocation counts per time slot of
/// `slot_seconds` — the demand-history input of the §5.1 balancer.
pub fn demand_histogram(trace: &Trace, function: &str, slot_seconds: f64) -> Vec<f64> {
    assert!(slot_seconds > 0.0, "slot length must be positive");
    let slots = (trace.duration / slot_seconds).ceil().max(1.0) as usize;
    let mut hist = vec![0.0; slots];
    for inv in &trace.invocations {
        if inv.function == function {
            let slot = ((inv.time / slot_seconds) as usize).min(slots - 1);
            hist[slot] += 1.0;
        }
    }
    hist
}

#[cfg(test)]
mod tests {
    use super::*;

    fn inv(t: f64, f: &str) -> Invocation {
        Invocation {
            time: t,
            function: f.into(),
        }
    }

    #[test]
    fn new_sorts_by_time() {
        let t = Trace::new(10.0, vec![inv(5.0, "b"), inv(1.0, "a"), inv(3.0, "c")]);
        let times: Vec<f64> = t.invocations.iter().map(|i| i.time).collect();
        assert_eq!(times, vec![1.0, 3.0, 5.0]);
    }

    #[test]
    fn functions_deduplicated_sorted() {
        let t = Trace::new(10.0, vec![inv(1.0, "b"), inv(2.0, "a"), inv(3.0, "b")]);
        assert_eq!(t.functions(), vec!["a", "b"]);
        assert_eq!(t.len(), 3);
        assert!(!t.is_empty());
    }

    #[test]
    fn merge_preserves_order_and_duration() {
        let a = Trace::new(10.0, vec![inv(2.0, "a")]);
        let b = Trace::new(20.0, vec![inv(1.0, "b")]);
        let m = a.merge(b);
        assert_eq!(m.duration, 20.0);
        assert_eq!(m.invocations[0].function, "b");
        assert_eq!(m.len(), 2);
    }

    #[test]
    fn json_roundtrip() {
        let t = Trace::new(5.0, vec![inv(1.0, "x")]);
        let back = Trace::from_json(&t.to_json()).unwrap();
        assert_eq!(t, back);
        assert!(Trace::from_json("nope").is_err());
    }

    #[test]
    fn function_ids_parallel_the_invocations() {
        let t = Trace::new(10.0, vec![inv(1.0, "b"), inv(2.0, "a"), inv(3.0, "b")]);
        let mut interner = Interner::new();
        let ids = t.function_ids(&mut interner);
        assert_eq!(ids.len(), t.len());
        assert_eq!(ids[0], ids[2], "same function, same id");
        assert_ne!(ids[0], ids[1]);
        assert_eq!(interner.name(ids[1]), "a");
        // Read-only lookup agrees once everything is interned…
        assert_eq!(t.lookup_function_ids(&interner).unwrap(), ids);
        // …and reports the offending name otherwise.
        let empty = Interner::new();
        assert_eq!(t.lookup_function_ids(&empty), Err("b".to_string()));
    }

    #[test]
    fn demand_histogram_buckets_correctly() {
        let t = Trace::new(
            30.0,
            vec![
                inv(1.0, "a"),
                inv(11.0, "a"),
                inv(12.0, "a"),
                inv(29.9, "a"),
                inv(5.0, "b"),
            ],
        );
        let h = demand_histogram(&t, "a", 10.0);
        assert_eq!(h, vec![1.0, 2.0, 1.0]);
        let hb = demand_histogram(&t, "b", 10.0);
        assert_eq!(hb, vec![1.0, 0.0, 0.0]);
    }
}
