//! # optimus-workload — request-arrival generators (§8.1)
//!
//! Workload sources:
//!
//! - **Poisson**: independent Poisson arrivals per function with
//!   λ ∈ {10⁻³·⁵, 10⁻²·⁵, 10⁻²} requests/second, the paper's infrequent /
//!   middle / frequent regimes.
//! - **Azure**: production-like arrival dynamics. The paper replays a
//!   two-week Microsoft Azure Functions trace; that data set is not
//!   shipped here, so [`azure::AzureTraceGenerator`] synthesises a trace
//!   reproducing its published characteristics (Shahrad et al., ATC '20):
//!   heavy-tailed per-function rates, and a mixture of steady, periodic
//!   (timer-triggered) and bursty functions with diurnal modulation.
//!   DESIGN.md records this substitution.
//! - **Diurnal/bursty**: every function's rate is strongly time-varying
//!   (sinusoidal base rate + seeded burst episodes) — the stress trace
//!   for the arrival predictor, where fixed keep-alive windows are at
//!   their worst. See [`diurnal::DiurnalBurstGenerator`].
//!
//! All generators are seeded and deterministic.

pub mod analysis;
pub mod azure;
mod diurnal;
mod poisson;
mod trace;

pub use analysis::{analyze_trace, FunctionStats, PatternClass};
pub use azure::{AzureTraceGenerator, FunctionPattern};
pub use diurnal::DiurnalBurstGenerator;
pub use poisson::{exponential_inter_arrival, PoissonGenerator};
pub use trace::{demand_histogram, Invocation, Trace};

// Re-exported so trace consumers can intern function names without
// depending on `optimus-model` directly.
pub use optimus_model::{FunctionId, Interner};

/// The paper's three Poisson intensities (requests per second).
pub mod rates {
    /// Infrequent workload: λ = 10⁻³·⁵ ≈ one request every ~53 minutes.
    pub const INFREQUENT: f64 = 0.000_316_227_766;
    /// Middle workload: λ = 10⁻²·⁵ ≈ one request every ~5.3 minutes.
    pub const MIDDLE: f64 = 0.003_162_277_66;
    /// Frequent workload: λ = 10⁻² = one request every 100 seconds.
    pub const FREQUENT: f64 = 0.01;
}
