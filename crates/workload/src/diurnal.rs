//! Diurnal + bursty synthetic arrivals — the predictor's stress trace.
//!
//! The Azure generator mixes function *populations* (steady, periodic,
//! bursty); this family instead makes **every** function's rate strongly
//! time-varying, which is exactly the regime where a fixed keep-alive
//! window loses: it idles containers through the daily trough (memory
//! waste) and evicts them right before the burst returns (cold starts).
//!
//! Each function's instantaneous rate is
//!
//! ```text
//! rate(t) = base_rate · (1 + amplitude · sin(2π·(t/period + phase_f)))
//!           · (burst_multiplier  if t inside a burst episode else 1)
//! ```
//!
//! with a per-function phase (functions peak at different times of day)
//! and seeded alternating-renewal burst episodes (exponential gap/length).
//! Arrivals are drawn by thinning a homogeneous Poisson process at the
//! peak rate, so the trace is deterministic from `(seed, function index)`
//! alone: adding functions never perturbs existing streams.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::poisson::exponential_inter_arrival;
use crate::trace::{Invocation, Trace};

/// Sinusoidal-rate arrivals with seeded burst episodes, per function.
#[derive(Debug, Clone)]
pub struct DiurnalBurstGenerator {
    /// Trace duration in seconds.
    pub duration: f64,
    /// RNG seed (same seed ⇒ same trace).
    pub seed: u64,
    /// Mean baseline arrival rate per function (requests/second).
    pub base_rate: f64,
    /// Period of the sinusoidal modulation (default 24 h).
    pub period: f64,
    /// Strength of the sinusoidal modulation in `[0, 1)`.
    pub amplitude: f64,
    /// Rate multiplier inside a burst episode (≥ 1).
    pub burst_multiplier: f64,
    /// Mean burst episode length in seconds.
    pub burst_len: f64,
    /// Mean gap between burst episodes in seconds.
    pub burst_gap: f64,
}

impl DiurnalBurstGenerator {
    /// Generator with bursty-day defaults: 24 h sine at amplitude 0.8,
    /// 10× bursts averaging 2 min every ~20 min.
    pub fn new(duration: f64, seed: u64, base_rate: f64) -> Self {
        assert!(duration > 0.0, "duration must be positive");
        assert!(base_rate > 0.0, "base_rate must be positive");
        DiurnalBurstGenerator {
            duration,
            seed,
            base_rate,
            period: 86_400.0,
            amplitude: 0.8,
            burst_multiplier: 10.0,
            burst_len: 120.0,
            burst_gap: 1_200.0,
        }
    }

    /// Sinusoidal multiplier for a function with phase `phase` at `t`.
    fn sinusoid(&self, t: f64, phase: f64) -> f64 {
        1.0 + self.amplitude * (2.0 * std::f64::consts::PI * (t / self.period + phase)).sin()
    }

    /// Seeded alternating-renewal burst episodes `[start, end)` covering
    /// `[0, duration)` for one function stream.
    fn burst_episodes(&self, rng: &mut StdRng) -> Vec<(f64, f64)> {
        let mut episodes = Vec::new();
        let mut t = 0.0;
        while t < self.duration {
            let gap: f64 = rng.gen_range(f64::MIN_POSITIVE..=1.0);
            t += exponential_inter_arrival(1.0 / self.burst_gap, gap);
            if t >= self.duration {
                break;
            }
            let len: f64 = rng.gen_range(f64::MIN_POSITIVE..=1.0);
            let end = (t + exponential_inter_arrival(1.0 / self.burst_len, len)).min(self.duration);
            episodes.push((t, end));
            t = end;
        }
        episodes
    }

    /// Instantaneous rate multiplier (relative to `base_rate`) at `t`.
    fn multiplier(&self, t: f64, phase: f64, episodes: &[(f64, f64)], cursor: &mut usize) -> f64 {
        while *cursor < episodes.len() && episodes[*cursor].1 <= t {
            *cursor += 1;
        }
        let bursting = episodes.get(*cursor).is_some_and(|&(s, e)| s <= t && t < e);
        self.sinusoid(t, phase) * if bursting { self.burst_multiplier } else { 1.0 }
    }

    /// Generate a trace over the given function names.
    pub fn generate(&self, functions: &[String]) -> Trace {
        let mut invocations = Vec::new();
        let peak = (1.0 + self.amplitude) * self.burst_multiplier;
        for (fi, f) in functions.iter().enumerate() {
            // Independent stream per function, derived from the base seed
            // so adding functions does not perturb existing streams.
            let mut rng =
                StdRng::seed_from_u64(self.seed ^ (fi as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
            let phase: f64 = rng.gen_range(0.0..1.0);
            let episodes = self.burst_episodes(&mut rng);
            let mut cursor = 0usize;
            // Thinned non-homogeneous Poisson at the joint peak rate.
            let mut t = 0.0;
            loop {
                let u: f64 = rng.gen_range(f64::MIN_POSITIVE..=1.0);
                t += exponential_inter_arrival(self.base_rate * peak, u);
                if t >= self.duration {
                    break;
                }
                let accept: f64 = rng.gen_range(0.0..1.0);
                if accept * peak <= self.multiplier(t, phase, &episodes, &mut cursor) {
                    invocations.push(Invocation {
                        time: t,
                        function: f.clone(),
                    });
                }
            }
        }
        Trace::new(self.duration, invocations)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn names(n: usize) -> Vec<String> {
        (0..n).map(|i| format!("f{i}")).collect()
    }

    #[test]
    fn deterministic_per_seed() {
        let g = DiurnalBurstGenerator::new(20_000.0, 11, 0.01);
        assert_eq!(g.generate(&names(3)), g.generate(&names(3)));
        let other = DiurnalBurstGenerator::new(20_000.0, 12, 0.01).generate(&names(3));
        assert_ne!(g.generate(&names(3)), other);
    }

    #[test]
    fn adding_functions_preserves_existing_streams() {
        let g = DiurnalBurstGenerator::new(50_000.0, 9, 0.005);
        let t3 = g.generate(&names(3));
        let t4 = g.generate(&names(4));
        let only_f0 = |t: &Trace| -> Vec<f64> {
            t.invocations
                .iter()
                .filter(|i| i.function == "f0")
                .map(|i| i.time)
                .collect()
        };
        assert_eq!(only_f0(&t3), only_f0(&t4));
    }

    #[test]
    fn invocations_sorted_and_within_duration() {
        let trace = DiurnalBurstGenerator::new(10_000.0, 3, 0.02).generate(&names(5));
        assert!(trace.invocations.iter().all(|i| i.time < 10_000.0));
        assert!(trace.invocations.windows(2).all(|w| w[0].time <= w[1].time));
    }

    #[test]
    fn mean_rate_reflects_base_and_bursts() {
        // Expected long-run multiplier: sine averages to 1, bursts add
        // len/(len+gap) fraction of time at burst_multiplier.
        let g = DiurnalBurstGenerator::new(400_000.0, 21, 0.01);
        let trace = g.generate(&names(1));
        let empirical = trace.len() as f64 / g.duration;
        let burst_frac = g.burst_len / (g.burst_len + g.burst_gap);
        let expected = g.base_rate * (1.0 + burst_frac * (g.burst_multiplier - 1.0));
        let rel = (empirical - expected).abs() / expected;
        assert!(
            rel < 0.15,
            "empirical {empirical:.5} vs expected {expected:.5}"
        );
    }

    #[test]
    fn bursts_make_the_trace_bursty() {
        // Max windowed rate must dwarf the mean: a burst at 10× the
        // sinusoid should push some 60 s window far above average.
        let g = DiurnalBurstGenerator::new(100_000.0, 5, 0.01);
        let trace = g.generate(&names(1));
        let window = 60.0;
        let mut counts = vec![0u32; (g.duration / window) as usize + 1];
        for inv in &trace.invocations {
            counts[(inv.time / window) as usize] += 1;
        }
        let mean = trace.len() as f64 / counts.len() as f64;
        let max = f64::from(*counts.iter().max().unwrap());
        assert!(
            max > 4.0 * mean,
            "max window {max} vs mean {mean:.2} — no bursts?"
        );
    }

    #[test]
    fn diurnal_trough_and_peak_differ() {
        // With amplitude 0.8 and bursts off, the busiest sixth of the
        // period must see several times the arrivals of the quietest.
        let mut g = DiurnalBurstGenerator::new(86_400.0 * 4.0, 17, 0.02);
        g.burst_multiplier = 1.0;
        let trace = g.generate(&names(1));
        let bins = 6usize;
        let mut counts = vec![0u64; bins];
        for inv in &trace.invocations {
            let pos = (inv.time % g.period) / g.period;
            counts[((pos * bins as f64) as usize).min(bins - 1)] += 1;
        }
        let max = *counts.iter().max().unwrap() as f64;
        let min = *counts.iter().min().unwrap() as f64;
        assert!(max > 2.0 * min, "phase bins {counts:?} look flat");
    }
}
