//! Azure-Functions-style synthetic trace generation.
//!
//! The paper replays a two-week production trace collected from Microsoft
//! Azure Functions in 2021 (the paper's reference \[44\]). The raw data
//! set is not available here,
//! so this module synthesises traces with the *published characteristics*
//! of that workload family (Shahrad et al., ATC '20; Zhang et al.,
//! SOSP '21):
//!
//! - per-function average rates are **heavy-tailed** (log-normal): most
//!   functions are invoked rarely, a few are very hot;
//! - functions follow a **mixture of temporal patterns** — steady
//!   (HTTP-like Poisson), periodic (timer triggers at fixed intervals),
//!   and bursty (on/off episodes with high in-burst rates);
//! - aggregate load has **diurnal modulation**.
//!
//! The §4.1 requirement this feeds is qualitative: "the workload of every
//! function may be highly dynamic and sporadic, periodic and bursty".

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::poisson::exponential_inter_arrival;
use crate::trace::{Invocation, Trace};

/// Temporal pattern class of one function.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum FunctionPattern {
    /// Poisson arrivals at a steady base rate.
    Steady {
        /// Requests per second.
        rate: f64,
    },
    /// Timer-triggered: one invocation every `period` seconds with small
    /// jitter (a large share of production functions are timers).
    Periodic {
        /// Trigger period in seconds.
        period: f64,
        /// Phase offset in seconds.
        phase: f64,
    },
    /// On/off bursts: Poisson at `burst_rate` during bursts of mean length
    /// `burst_len`, silent for mean gaps of `gap_len`.
    Bursty {
        /// In-burst request rate (req/s).
        burst_rate: f64,
        /// Mean burst duration (s).
        burst_len: f64,
        /// Mean inter-burst gap (s).
        gap_len: f64,
    },
}

/// Synthetic Azure-style trace generator.
#[derive(Debug, Clone)]
pub struct AzureTraceGenerator {
    /// Trace duration in seconds.
    pub duration: f64,
    /// RNG seed.
    pub seed: u64,
    /// Strength of the diurnal modulation in `[0, 1)` (0 = flat).
    pub diurnal_amplitude: f64,
}

impl AzureTraceGenerator {
    /// Generator with the paper-scale defaults (diurnal amplitude 0.5).
    pub fn new(duration: f64, seed: u64) -> Self {
        assert!(duration > 0.0, "duration must be positive");
        AzureTraceGenerator {
            duration,
            seed,
            diurnal_amplitude: 0.5,
        }
    }

    /// Draw a pattern for function index `fi` — the published mixture:
    /// ~45 % steady, ~30 % periodic, ~25 % bursty, with a log-normal rate
    /// distribution across functions.
    pub fn pattern_for(&self, fi: usize) -> FunctionPattern {
        let mut rng = StdRng::seed_from_u64(
            self.seed
                .wrapping_mul(0x5851_F42D_4C95_7F2D)
                .wrapping_add(fi as u64),
        );
        // Log-normal base rate: exp(N(mu, sigma)); median ≈ 1 / 500 s.
        let z = normal(&mut rng);
        let base_rate = (z * 1.5 - 6.2f64).exp(); // median e^-6.2 ≈ 0.002/s
        let class: f64 = rng.gen();
        if class < 0.45 {
            FunctionPattern::Steady { rate: base_rate }
        } else if class < 0.75 {
            // Periods cluster on human-friendly values.
            let periods = [60.0, 300.0, 600.0, 900.0, 1800.0, 3600.0];
            let period = periods[rng.gen_range(0..periods.len())];
            FunctionPattern::Periodic {
                period,
                phase: rng.gen_range(0.0..period),
            }
        } else {
            FunctionPattern::Bursty {
                burst_rate: (base_rate * 100.0).clamp(0.02, 2.0),
                burst_len: rng.gen_range(30.0..300.0),
                gap_len: rng.gen_range(600.0..7200.0),
            }
        }
    }

    /// Generate a trace over the given functions.
    pub fn generate(&self, functions: &[String]) -> Trace {
        let mut invocations = Vec::new();
        for (fi, f) in functions.iter().enumerate() {
            let pattern = self.pattern_for(fi);
            let mut rng = StdRng::seed_from_u64(
                self.seed ^ (fi as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15),
            );
            let times = self.arrival_times(pattern, &mut rng);
            for t in times {
                invocations.push(Invocation {
                    time: t,
                    function: f.clone(),
                });
            }
        }
        Trace::new(self.duration, invocations)
    }

    /// Diurnal intensity multiplier at time `t` (24 h sine, peak at noon).
    pub fn diurnal(&self, t: f64) -> f64 {
        let day = 86_400.0;
        1.0 + self.diurnal_amplitude * (2.0 * std::f64::consts::PI * (t / day - 0.25)).sin()
    }

    fn arrival_times(&self, pattern: FunctionPattern, rng: &mut StdRng) -> Vec<f64> {
        let mut out = Vec::new();
        match pattern {
            FunctionPattern::Steady { rate } => {
                // Thinned non-homogeneous Poisson for diurnal modulation.
                let peak = rate * (1.0 + self.diurnal_amplitude);
                let mut t = 0.0;
                loop {
                    let u: f64 = rng.gen_range(f64::MIN_POSITIVE..=1.0);
                    t += exponential_inter_arrival(peak, u);
                    if t >= self.duration {
                        break;
                    }
                    let accept: f64 = rng.gen();
                    if accept * (1.0 + self.diurnal_amplitude) <= self.diurnal(t) {
                        out.push(t);
                    }
                }
            }
            FunctionPattern::Periodic { period, phase } => {
                let mut t = phase;
                while t < self.duration {
                    // Small trigger jitter (±1 % of period). Jittered
                    // triggers landing outside [0, duration) are dropped —
                    // (duration - ε) is not representable for large
                    // durations, so clamping cannot keep them in range.
                    let jitter = (rng.gen::<f64>() - 0.5) * 0.02 * period;
                    let ts = t + jitter;
                    if (0.0..self.duration).contains(&ts) {
                        out.push(ts);
                    }
                    t += period;
                }
            }
            FunctionPattern::Bursty {
                burst_rate,
                burst_len,
                gap_len,
            } => {
                let mut t = {
                    let u: f64 = rng.gen_range(f64::MIN_POSITIVE..=1.0);
                    exponential_inter_arrival(1.0 / gap_len, u)
                };
                while t < self.duration {
                    // One burst of exponential length.
                    let u: f64 = rng.gen_range(f64::MIN_POSITIVE..=1.0);
                    let len = exponential_inter_arrival(1.0 / burst_len, u);
                    let end = (t + len).min(self.duration);
                    while t < end {
                        let u: f64 = rng.gen_range(f64::MIN_POSITIVE..=1.0);
                        t += exponential_inter_arrival(burst_rate, u);
                        if t < end {
                            out.push(t);
                        }
                    }
                    let u: f64 = rng.gen_range(f64::MIN_POSITIVE..=1.0);
                    t = end + exponential_inter_arrival(1.0 / gap_len, u);
                }
            }
        }
        out
    }
}

/// Standard normal draw via Box–Muller.
fn normal(rng: &mut StdRng) -> f64 {
    let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..=1.0);
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn names(n: usize) -> Vec<String> {
        (0..n).map(|i| format!("f{i}")).collect()
    }

    #[test]
    fn deterministic_per_seed() {
        let g = AzureTraceGenerator::new(50_000.0, 11);
        assert_eq!(g.generate(&names(10)), g.generate(&names(10)));
    }

    #[test]
    fn mixture_contains_all_pattern_classes() {
        let g = AzureTraceGenerator::new(1_000.0, 5);
        let mut steady = 0;
        let mut periodic = 0;
        let mut bursty = 0;
        for fi in 0..200 {
            match g.pattern_for(fi) {
                FunctionPattern::Steady { .. } => steady += 1,
                FunctionPattern::Periodic { .. } => periodic += 1,
                FunctionPattern::Bursty { .. } => bursty += 1,
            }
        }
        assert!(steady > 50, "steady {steady}");
        assert!(periodic > 30, "periodic {periodic}");
        assert!(bursty > 20, "bursty {bursty}");
    }

    #[test]
    fn rates_are_heavy_tailed() {
        // Max steady rate should dwarf the median (log-normal tail).
        let g = AzureTraceGenerator::new(1_000.0, 23);
        let mut rates: Vec<f64> = (0..500)
            .filter_map(|fi| match g.pattern_for(fi) {
                FunctionPattern::Steady { rate } => Some(rate),
                _ => None,
            })
            .collect();
        rates.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = rates[rates.len() / 2];
        let max = *rates.last().unwrap();
        assert!(
            max / median > 20.0,
            "max/median rate ratio {:.1} not heavy-tailed",
            max / median
        );
    }

    #[test]
    fn periodic_functions_fire_on_schedule() {
        let g = AzureTraceGenerator::new(7_200.0, 5);
        // Find a periodic function index.
        let (fi, period) = (0..100)
            .find_map(|fi| match g.pattern_for(fi) {
                FunctionPattern::Periodic { period, .. } => Some((fi, period)),
                _ => None,
            })
            .expect("mixture contains periodic functions");
        let names: Vec<String> = (0..=fi).map(|i| format!("f{i}")).collect();
        let trace = g.generate(&names);
        let count = trace
            .invocations
            .iter()
            .filter(|i| i.function == format!("f{fi}"))
            .count();
        let expected = (7_200.0 / period) as usize;
        assert!(
            count.abs_diff(expected) <= 1,
            "periodic count {count} vs expected {expected}"
        );
    }

    #[test]
    fn diurnal_multiplier_bounds() {
        let g = AzureTraceGenerator::new(86_400.0, 1);
        for i in 0..24 {
            let m = g.diurnal(i as f64 * 3600.0);
            assert!((0.49..=1.51).contains(&m), "diurnal {m} at hour {i}");
        }
        // Peak at noon exceeds trough at midnight.
        assert!(g.diurnal(43_200.0) > g.diurnal(0.0));
    }

    #[test]
    fn invocations_sorted_and_bounded() {
        let g = AzureTraceGenerator::new(20_000.0, 77);
        let t = g.generate(&names(30));
        assert!(t.invocations.windows(2).all(|w| w[0].time <= w[1].time));
        assert!(t.invocations.iter().all(|i| i.time < 20_000.0));
        assert!(!t.is_empty());
    }
}
