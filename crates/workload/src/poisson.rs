//! Poisson arrival generation.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::trace::{Invocation, Trace};

/// Sample an exponential inter-arrival gap with rate `lambda` (requests per
/// second) from a uniform draw `u ∈ (0, 1]`.
pub fn exponential_inter_arrival(lambda: f64, u: f64) -> f64 {
    -u.ln() / lambda
}

/// Independent Poisson arrival processes, one per function.
#[derive(Debug, Clone)]
pub struct PoissonGenerator {
    /// Arrival rate in requests/second applied to every function.
    pub lambda: f64,
    /// Trace duration in seconds.
    pub duration: f64,
    /// RNG seed (same seed ⇒ same trace).
    pub seed: u64,
}

impl PoissonGenerator {
    /// Generator with the given per-function rate and duration.
    pub fn new(lambda: f64, duration: f64, seed: u64) -> Self {
        assert!(lambda > 0.0, "lambda must be positive");
        assert!(duration > 0.0, "duration must be positive");
        PoissonGenerator {
            lambda,
            duration,
            seed,
        }
    }

    /// Generate a trace over the given function names.
    pub fn generate(&self, functions: &[String]) -> Trace {
        let mut invocations = Vec::new();
        for (fi, f) in functions.iter().enumerate() {
            // Independent stream per function, derived from the base seed
            // so adding functions does not perturb existing streams.
            let mut rng =
                StdRng::seed_from_u64(self.seed ^ (fi as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
            let mut t = 0.0;
            loop {
                let u: f64 = rng.gen_range(f64::MIN_POSITIVE..=1.0);
                t += exponential_inter_arrival(self.lambda, u);
                if t >= self.duration {
                    break;
                }
                invocations.push(Invocation {
                    time: t,
                    function: f.clone(),
                });
            }
        }
        Trace::new(self.duration, invocations)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn names(n: usize) -> Vec<String> {
        (0..n).map(|i| format!("f{i}")).collect()
    }

    #[test]
    fn mean_rate_approximates_lambda() {
        let lambda = 0.05;
        let duration = 100_000.0;
        let trace = PoissonGenerator::new(lambda, duration, 7).generate(&names(1));
        let empirical = trace.len() as f64 / duration;
        let rel = (empirical - lambda).abs() / lambda;
        assert!(
            rel < 0.1,
            "empirical rate {empirical:.4} vs lambda {lambda}"
        );
    }

    #[test]
    fn deterministic_per_seed() {
        let g = PoissonGenerator::new(0.01, 10_000.0, 42);
        assert_eq!(g.generate(&names(3)), g.generate(&names(3)));
        let other = PoissonGenerator::new(0.01, 10_000.0, 43).generate(&names(3));
        assert_ne!(g.generate(&names(3)), other);
    }

    #[test]
    fn adding_functions_preserves_existing_streams() {
        let g = PoissonGenerator::new(0.01, 50_000.0, 9);
        let t3 = g.generate(&names(3));
        let t4 = g.generate(&names(4));
        let only_f0 = |t: &Trace| -> Vec<f64> {
            t.invocations
                .iter()
                .filter(|i| i.function == "f0")
                .map(|i| i.time)
                .collect()
        };
        assert_eq!(only_f0(&t3), only_f0(&t4));
    }

    #[test]
    fn inter_arrival_gaps_are_exponential_scale() {
        // Mean of -ln(U)/λ is 1/λ.
        let lambda = 2.0;
        let mut acc = 0.0;
        let n = 10_000;
        for i in 1..=n {
            let u = i as f64 / (n as f64 + 1.0);
            acc += exponential_inter_arrival(lambda, u);
        }
        let mean = acc / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean gap {mean}");
    }

    #[test]
    fn paper_rates_have_expected_ordering() {
        use crate::rates::{FREQUENT, INFREQUENT, MIDDLE};
        let rates = [INFREQUENT, MIDDLE, FREQUENT];
        assert!(rates.windows(2).all(|w| w[0] < w[1]));
        // λ=10^-2 → one request per 100 s on average.
        let mean_gap = 1.0 / FREQUENT;
        assert!((mean_gap - 100.0).abs() < 1e-9);
    }

    #[test]
    fn invocations_within_duration() {
        let trace = PoissonGenerator::new(0.1, 1_000.0, 3).generate(&names(5));
        assert!(trace.invocations.iter().all(|i| i.time < 1_000.0));
        assert!(trace.invocations.windows(2).all(|w| w[0].time <= w[1].time));
    }
}
