//! Operation signatures for Tetris-style tensor sharing.
//!
//! Tetris (ATC '22, §2.1 of the Optimus paper) shares an in-memory copy of
//! an operation between containers when two models contain an operation of
//! "the same type, size, and weight". An [`OpSignature`] captures exactly
//! that triple, so the simulator's Tetris baseline can compute which ops of
//! an incoming model are already resident on a node.

use std::collections::HashSet;

use serde::{Deserialize, Serialize};

use crate::graph::ModelGraph;
use crate::op::{OpKind, Operation};
use crate::weights::WeightId;

/// Identity triple for exact-sharing: kind, shape fingerprint, weight id.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct OpSignature {
    /// Operation kind.
    pub kind: OpKind,
    /// Fingerprint of the full attributes (shape, stride, …).
    pub attr_fingerprint: u64,
    /// Weight content id (0 for weight-free ops).
    pub weight_id: WeightId,
}

impl OpSignature {
    /// Signature of one operation.
    pub fn of(op: &Operation) -> Self {
        OpSignature {
            kind: op.kind(),
            attr_fingerprint: fingerprint(&format!("{:?}", op.attrs)),
            weight_id: op.weights.as_ref().map_or(WeightId(0), |w| w.id()),
        }
    }
}

/// The set of op signatures in a model.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct SignatureSet {
    sigs: HashSet<OpSignature>,
}

impl SignatureSet {
    /// Collect the signature set of a model.
    pub fn of(graph: &ModelGraph) -> Self {
        SignatureSet {
            sigs: graph.ops().map(|(_, op)| OpSignature::of(op)).collect(),
        }
    }

    /// Empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of distinct signatures.
    pub fn len(&self) -> usize {
        self.sigs.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.sigs.is_empty()
    }

    /// Whether a signature is present.
    pub fn contains(&self, sig: &OpSignature) -> bool {
        self.sigs.contains(sig)
    }

    /// Merge another model's signatures into this set (a node accumulating
    /// resident tensors).
    pub fn absorb(&mut self, graph: &ModelGraph) {
        for (_, op) in graph.ops() {
            self.sigs.insert(OpSignature::of(op));
        }
    }

    /// Fraction of `graph`'s ops whose signature is already in this set —
    /// the share of loading Tetris can skip.
    pub fn coverage_of(&self, graph: &ModelGraph) -> f64 {
        let total = graph.op_count();
        if total == 0 {
            return 0.0;
        }
        let hit = graph
            .ops()
            .filter(|(_, op)| self.sigs.contains(&OpSignature::of(op)))
            .count();
        hit as f64 / total as f64
    }

    /// Weighted coverage: fraction of `graph`'s *parameters* residing in
    /// already-shared ops (weight assignment can also be skipped for them).
    pub fn param_coverage_of(&self, graph: &ModelGraph) -> f64 {
        let total = graph.param_count();
        if total == 0 {
            return 0.0;
        }
        let hit: usize = graph
            .ops()
            .filter(|(_, op)| self.sigs.contains(&OpSignature::of(op)))
            .map(|(_, op)| op.weight_count())
            .sum();
        hit as f64 / total as f64
    }
}

fn fingerprint(s: &str) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01B3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;
    use crate::op::Activation;

    fn model(name: &str, out_channels: usize) -> ModelGraph {
        let mut b = GraphBuilder::new(name);
        let i = b.input([1, 3, 8, 8]);
        let c = b.conv2d_after(i, 3, out_channels, (3, 3), (1, 1), 1);
        let _ = b.activation_after(c, Activation::Relu);
        b.finish().unwrap()
    }

    #[test]
    fn identical_model_has_full_coverage() {
        let g = model("a", 4);
        let set = SignatureSet::of(&g);
        assert_eq!(set.coverage_of(&g), 1.0);
        assert_eq!(set.param_coverage_of(&g), 1.0);
    }

    #[test]
    fn different_weights_break_sharing() {
        let a = model("a", 4);
        let b = model("b", 4); // same shapes, different seeds
        let set = SignatureSet::of(&a);
        // Input + activation (weight-free, same attrs) match; conv does not.
        let cov = set.coverage_of(&b);
        assert!(cov > 0.0 && cov < 1.0, "coverage {cov}");
        assert_eq!(set.param_coverage_of(&b), 0.0);
    }

    #[test]
    fn different_shapes_break_sharing() {
        let a = model("a", 4);
        let c = model("a", 8);
        let set = SignatureSet::of(&a);
        assert!(set.param_coverage_of(&c) < 1.0);
    }

    #[test]
    fn absorb_accumulates() {
        let a = model("a", 4);
        let b = model("b", 8);
        let mut set = SignatureSet::new();
        assert!(set.is_empty());
        set.absorb(&a);
        set.absorb(&b);
        assert_eq!(set.coverage_of(&a), 1.0);
        assert_eq!(set.coverage_of(&b), 1.0);
        assert!(set.len() >= 4);
    }
}
