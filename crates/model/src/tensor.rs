//! A minimal dense `f32` tensor used by the forward-pass engine and by
//! weight materialisation.

use crate::shape::TensorShape;

/// Dense row-major `f32` tensor.
#[derive(Debug, Clone, PartialEq)]
pub struct Tensor {
    shape: TensorShape,
    data: Vec<f32>,
}

impl Tensor {
    /// Create a tensor from shape and data.
    ///
    /// # Panics
    ///
    /// Panics when `data.len()` does not equal the shape's element count.
    pub fn new(shape: impl Into<TensorShape>, data: Vec<f32>) -> Self {
        let shape = shape.into();
        assert_eq!(
            shape.numel(),
            data.len(),
            "tensor data length must match shape"
        );
        Tensor { shape, data }
    }

    /// All-zeros tensor.
    pub fn zeros(shape: impl Into<TensorShape>) -> Self {
        let shape = shape.into();
        let n = shape.numel();
        Tensor {
            shape,
            data: vec![0.0; n],
        }
    }

    /// Tensor shape.
    pub fn shape(&self) -> &TensorShape {
        &self.shape
    }

    /// Raw data slice.
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable raw data slice.
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consume into raw data.
    pub fn into_data(self) -> Vec<f32> {
        self.data
    }

    /// Reinterpret with a new shape of equal element count.
    ///
    /// # Panics
    ///
    /// Panics when element counts differ.
    pub fn reshaped(mut self, shape: impl Into<TensorShape>) -> Self {
        let shape = shape.into();
        assert_eq!(
            shape.numel(),
            self.data.len(),
            "reshape must preserve numel"
        );
        self.shape = shape;
        self
    }

    /// Element at a 4-D NCHW index (convolution helper).
    ///
    /// # Panics
    ///
    /// Panics for non-4-D tensors or out-of-range indices.
    pub fn at4(&self, n: usize, c: usize, h: usize, w: usize) -> f32 {
        let d = self.shape.dims();
        assert_eq!(d.len(), 4, "at4 requires a 4-D tensor");
        self.data[((n * d[1] + c) * d[2] + h) * d[3] + w]
    }

    /// Mutable element at a 4-D NCHW index.
    ///
    /// # Panics
    ///
    /// Panics for non-4-D tensors or out-of-range indices.
    pub fn at4_mut(&mut self, n: usize, c: usize, h: usize, w: usize) -> &mut f32 {
        let d = self.shape.dims();
        assert_eq!(d.len(), 4, "at4_mut requires a 4-D tensor");
        let idx = ((n * d[1] + c) * d[2] + h) * d[3] + w;
        &mut self.data[idx]
    }

    /// Maximum absolute difference to another tensor of identical shape.
    ///
    /// # Panics
    ///
    /// Panics when shapes differ.
    pub fn max_abs_diff(&self, other: &Tensor) -> f32 {
        assert_eq!(self.shape, other.shape, "shape mismatch in comparison");
        self.data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f32::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indexing_is_row_major() {
        let t = Tensor::new([1, 2, 2, 2], (0..8).map(|v| v as f32).collect());
        assert_eq!(t.at4(0, 0, 0, 0), 0.0);
        assert_eq!(t.at4(0, 0, 1, 1), 3.0);
        assert_eq!(t.at4(0, 1, 0, 1), 5.0);
    }

    #[test]
    fn reshape_preserves_data() {
        let t = Tensor::new([2, 3], vec![1.0; 6]).reshaped([3, 2]);
        assert_eq!(t.shape().dims(), &[3, 2]);
    }

    #[test]
    #[should_panic(expected = "must match shape")]
    fn bad_length_panics() {
        let _ = Tensor::new([2, 2], vec![0.0; 5]);
    }

    #[test]
    fn max_abs_diff_works() {
        let a = Tensor::new([3], vec![1.0, 2.0, 3.0]);
        let b = Tensor::new([3], vec![1.0, 2.5, 2.0]);
        assert_eq!(a.max_abs_diff(&b), 1.0);
    }
}
