//! Operation taxonomy: the node types of the computational graph.
//!
//! The taxonomy covers the CNN operations the paper profiles in §3.2
//! (CONV, dense, batch-norm, pooling, activation, add, …) and the
//! transformer operations of §5.2 (embedding, Q/K/V/O projections, the
//! weight-free Logit and Attend operations, layer-norm).

use serde::{Deserialize, Serialize};

use crate::shape::TensorShape;
use crate::weights::{WeightSpec, Weights};

/// Activation function selector.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Activation {
    /// Rectified linear unit.
    Relu,
    /// ReLU clipped at 6 (MobileNet).
    Relu6,
    /// Logistic sigmoid.
    Sigmoid,
    /// Hyperbolic tangent.
    Tanh,
    /// Gaussian error linear unit (BERT).
    Gelu,
    /// x·sigmoid(x) (EfficientNet-style).
    Swish,
    /// Softmax over the last axis.
    Softmax,
}

/// Pooling flavour.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PoolKind {
    /// Maximum pooling.
    Max,
    /// Average pooling.
    Avg,
}

/// Spatial padding policy for convolutions and pooling.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Padding {
    /// No padding; output shrinks by `kernel - 1`.
    Valid,
    /// Zero padding chosen so output size equals `ceil(input / stride)`.
    Same,
}

/// Coarse operation kind.
///
/// This is the grouping key of the paper's Module 2⁺ planner ("group all
/// operations of the source model by their type") and the first field of a
/// Tetris sharing signature. It deliberately drops shape detail — two
/// convolutions of different kernel sizes share a kind, which is exactly
/// what makes a cheap `Reshape` between them possible.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum OpKind {
    /// Graph input placeholder.
    Input,
    /// 2-D convolution (`groups == in_channels` makes it depthwise).
    Conv2d,
    /// Fully connected layer.
    Dense,
    /// Batch normalisation (4 parameter vectors).
    BatchNorm,
    /// Layer normalisation (2 parameter vectors).
    LayerNorm,
    /// Parameter-free activation.
    Activation,
    /// Windowed spatial pooling.
    Pool2d,
    /// Global spatial pooling.
    GlobalPool,
    /// Element-wise addition (residual connections).
    Add,
    /// Channel concatenation (DenseNet, Inception).
    Concat,
    /// Flatten NCHW to NC.
    Flatten,
    /// Dropout (identity at inference; kept because it appears in graphs).
    Dropout,
    /// Explicit zero padding.
    ZeroPad,
    /// Token embedding lookup table.
    Embedding,
    /// Learned positional embedding.
    PosEmbedding,
    /// Attention query projection.
    Query,
    /// Attention key projection.
    Key,
    /// Attention value projection.
    Value,
    /// Attention output projection.
    AttnOutput,
    /// Scaled dot-product logits QKᵀ/√d (weight-free, §5.2).
    Logit,
    /// Attention-weighted value combination (weight-free, §5.2).
    Attend,
    /// Softmax as a standalone graph node.
    Softmax,
    /// Long short-term memory recurrent layer (§7 notes the meta-operator
    /// interface covers RNN operations).
    Lstm,
    /// Gated recurrent unit layer.
    Gru,
}

impl OpKind {
    /// Whether operations of this kind carry weights.
    ///
    /// Matches the paper's observation (§3.2) that weight-bearing ops
    /// (CONV, dense) load much more slowly than weight-free ones
    /// (activation, pooling, add), and §4.4's "most operations in a model do
    /// not contain weights".
    pub fn has_weights(self) -> bool {
        matches!(
            self,
            OpKind::Conv2d
                | OpKind::Dense
                | OpKind::BatchNorm
                | OpKind::LayerNorm
                | OpKind::Embedding
                | OpKind::PosEmbedding
                | OpKind::Query
                | OpKind::Key
                | OpKind::Value
                | OpKind::AttnOutput
                | OpKind::Lstm
                | OpKind::Gru
        )
    }

    /// Whether this kind belongs to the transformer-specific op set (§5.2).
    pub fn is_attention(self) -> bool {
        matches!(
            self,
            OpKind::Query
                | OpKind::Key
                | OpKind::Value
                | OpKind::AttnOutput
                | OpKind::Logit
                | OpKind::Attend
                | OpKind::Embedding
                | OpKind::PosEmbedding
        )
    }

    /// Short display name.
    pub fn name(self) -> &'static str {
        match self {
            OpKind::Input => "input",
            OpKind::Conv2d => "conv2d",
            OpKind::Dense => "dense",
            OpKind::BatchNorm => "batchnorm",
            OpKind::LayerNorm => "layernorm",
            OpKind::Activation => "activation",
            OpKind::Pool2d => "pool2d",
            OpKind::GlobalPool => "globalpool",
            OpKind::Add => "add",
            OpKind::Concat => "concat",
            OpKind::Flatten => "flatten",
            OpKind::Dropout => "dropout",
            OpKind::ZeroPad => "zeropad",
            OpKind::Embedding => "embedding",
            OpKind::PosEmbedding => "pos_embedding",
            OpKind::Query => "query",
            OpKind::Key => "key",
            OpKind::Value => "value",
            OpKind::AttnOutput => "attn_output",
            OpKind::Logit => "logit",
            OpKind::Attend => "attend",
            OpKind::Softmax => "softmax",
            OpKind::Lstm => "lstm",
            OpKind::Gru => "gru",
        }
    }

    /// All kinds, in a stable order (used by profilers and histograms).
    pub const ALL: [OpKind; 24] = [
        OpKind::Input,
        OpKind::Conv2d,
        OpKind::Dense,
        OpKind::BatchNorm,
        OpKind::LayerNorm,
        OpKind::Activation,
        OpKind::Pool2d,
        OpKind::GlobalPool,
        OpKind::Add,
        OpKind::Concat,
        OpKind::Flatten,
        OpKind::Dropout,
        OpKind::ZeroPad,
        OpKind::Embedding,
        OpKind::PosEmbedding,
        OpKind::Query,
        OpKind::Key,
        OpKind::Value,
        OpKind::AttnOutput,
        OpKind::Logit,
        OpKind::Attend,
        OpKind::Softmax,
        OpKind::Lstm,
        OpKind::Gru,
    ];
}

impl std::fmt::Display for OpKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Full attributes of an operation: the kind plus every shape parameter the
/// cost model and the `Reshape` meta-operator need.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum OpAttrs {
    /// Graph input with a fixed activation shape.
    Input {
        /// Activation shape produced by this input.
        shape: TensorShape,
    },
    /// 2-D convolution.
    Conv2d {
        /// Input channels.
        in_channels: usize,
        /// Output channels (number of kernels, `k` in the paper's figures).
        out_channels: usize,
        /// Kernel size `(h, w)` (`x × y` in the paper's figures).
        kernel: (usize, usize),
        /// Stride `(h, w)`.
        stride: (usize, usize),
        /// Padding policy.
        padding: Padding,
        /// Channel groups; `groups == in_channels` makes this depthwise.
        groups: usize,
        /// Whether a bias vector is present.
        bias: bool,
    },
    /// Fully connected layer.
    Dense {
        /// Input features.
        in_features: usize,
        /// Output features.
        out_features: usize,
        /// Whether a bias vector is present.
        bias: bool,
    },
    /// Batch normalisation over `features` channels.
    BatchNorm {
        /// Normalised channel count.
        features: usize,
    },
    /// Layer normalisation over `features` units.
    LayerNorm {
        /// Normalised feature count.
        features: usize,
    },
    /// Parameter-free activation.
    Activation {
        /// Function selector.
        kind: Activation,
    },
    /// Windowed spatial pooling.
    Pool2d {
        /// Max or average.
        kind: PoolKind,
        /// Window size `(h, w)`.
        size: (usize, usize),
        /// Stride `(h, w)`.
        stride: (usize, usize),
        /// Padding policy.
        padding: Padding,
    },
    /// Global spatial pooling to `1 × 1`.
    GlobalPool {
        /// Max or average.
        kind: PoolKind,
    },
    /// Element-wise addition of all inputs.
    Add,
    /// Concatenation along the channel axis.
    Concat,
    /// Flatten to `[batch, features]`.
    Flatten,
    /// Dropout with the given rate (identity at inference).
    Dropout {
        /// Drop probability.
        rate: f32,
    },
    /// Zero padding of the spatial dims.
    ZeroPad {
        /// Padding `(h, w)` added on each side.
        pad: (usize, usize),
    },
    /// Token embedding table.
    Embedding {
        /// Vocabulary size.
        vocab: usize,
        /// Hidden width.
        hidden: usize,
    },
    /// Learned positional embedding.
    PosEmbedding {
        /// Maximum sequence length.
        max_len: usize,
        /// Hidden width.
        hidden: usize,
    },
    /// Attention query projection (`hidden → hidden`, multi-head).
    Query {
        /// Hidden width.
        hidden: usize,
        /// Number of attention heads.
        heads: usize,
    },
    /// Attention key projection.
    Key {
        /// Hidden width.
        hidden: usize,
        /// Number of attention heads.
        heads: usize,
    },
    /// Attention value projection.
    Value {
        /// Hidden width.
        hidden: usize,
        /// Number of attention heads.
        heads: usize,
    },
    /// Attention output projection.
    AttnOutput {
        /// Hidden width.
        hidden: usize,
    },
    /// Scaled dot-product logits (weight-free).
    Logit {
        /// Number of attention heads.
        heads: usize,
    },
    /// Attention-weighted combination (weight-free).
    Attend {
        /// Number of attention heads.
        heads: usize,
    },
    /// Standalone softmax node.
    Softmax,
    /// LSTM recurrent layer over a `[B, S, in]` sequence.
    Lstm {
        /// Input feature width.
        input: usize,
        /// Hidden state width.
        hidden: usize,
    },
    /// GRU recurrent layer over a `[B, S, in]` sequence.
    Gru {
        /// Input feature width.
        input: usize,
        /// Hidden state width.
        hidden: usize,
    },
}

impl OpAttrs {
    /// The coarse kind of these attributes.
    pub fn kind(&self) -> OpKind {
        match self {
            OpAttrs::Input { .. } => OpKind::Input,
            OpAttrs::Conv2d { .. } => OpKind::Conv2d,
            OpAttrs::Dense { .. } => OpKind::Dense,
            OpAttrs::BatchNorm { .. } => OpKind::BatchNorm,
            OpAttrs::LayerNorm { .. } => OpKind::LayerNorm,
            OpAttrs::Activation { .. } => OpKind::Activation,
            OpAttrs::Pool2d { .. } => OpKind::Pool2d,
            OpAttrs::GlobalPool { .. } => OpKind::GlobalPool,
            OpAttrs::Add => OpKind::Add,
            OpAttrs::Concat => OpKind::Concat,
            OpAttrs::Flatten => OpKind::Flatten,
            OpAttrs::Dropout { .. } => OpKind::Dropout,
            OpAttrs::ZeroPad { .. } => OpKind::ZeroPad,
            OpAttrs::Embedding { .. } => OpKind::Embedding,
            OpAttrs::PosEmbedding { .. } => OpKind::PosEmbedding,
            OpAttrs::Query { .. } => OpKind::Query,
            OpAttrs::Key { .. } => OpKind::Key,
            OpAttrs::Value { .. } => OpKind::Value,
            OpAttrs::AttnOutput { .. } => OpKind::AttnOutput,
            OpAttrs::Logit { .. } => OpKind::Logit,
            OpAttrs::Attend { .. } => OpKind::Attend,
            OpAttrs::Softmax => OpKind::Softmax,
            OpAttrs::Lstm { .. } => OpKind::Lstm,
            OpAttrs::Gru { .. } => OpKind::Gru,
        }
    }

    /// Weight tensor shapes implied by these attributes, in canonical order.
    ///
    /// Convolutions yield `[out, in/groups, kh, kw]` (+ `[out]` bias), dense
    /// layers `[out, in]` (+ `[out]`), batch-norm four `[features]` vectors
    /// (γ, β, running mean, running var), layer-norm two, embeddings a
    /// `[vocab, hidden]` table, attention projections `[hidden, hidden]`
    /// (+ `[hidden]`). Weight-free kinds return an empty list.
    pub fn weight_shapes(&self) -> Vec<TensorShape> {
        match *self {
            OpAttrs::Conv2d {
                in_channels,
                out_channels,
                kernel,
                groups,
                bias,
                ..
            } => {
                let mut v = vec![TensorShape::from(vec![
                    out_channels,
                    in_channels / groups.max(1),
                    kernel.0,
                    kernel.1,
                ])];
                if bias {
                    v.push(TensorShape::from(vec![out_channels]));
                }
                v
            }
            OpAttrs::Dense {
                in_features,
                out_features,
                bias,
            } => {
                let mut v = vec![TensorShape::from(vec![out_features, in_features])];
                if bias {
                    v.push(TensorShape::from(vec![out_features]));
                }
                v
            }
            OpAttrs::BatchNorm { features } => {
                vec![TensorShape::from(vec![features]); 4]
            }
            OpAttrs::LayerNorm { features } => {
                vec![TensorShape::from(vec![features]); 2]
            }
            OpAttrs::Embedding { vocab, hidden } => {
                vec![TensorShape::from(vec![vocab, hidden])]
            }
            OpAttrs::PosEmbedding { max_len, hidden } => {
                vec![TensorShape::from(vec![max_len, hidden])]
            }
            OpAttrs::Query { hidden, .. }
            | OpAttrs::Key { hidden, .. }
            | OpAttrs::Value { hidden, .. }
            | OpAttrs::AttnOutput { hidden } => {
                vec![
                    TensorShape::from(vec![hidden, hidden]),
                    TensorShape::from(vec![hidden]),
                ]
            }
            // Gate-stacked recurrent weights: input kernel W, recurrent
            // kernel U, bias b — 4 gates for LSTM, 3 for GRU.
            OpAttrs::Lstm { input, hidden } => {
                vec![
                    TensorShape::from(vec![4 * hidden, input]),
                    TensorShape::from(vec![4 * hidden, hidden]),
                    TensorShape::from(vec![4 * hidden]),
                ]
            }
            OpAttrs::Gru { input, hidden } => {
                vec![
                    TensorShape::from(vec![3 * hidden, input]),
                    TensorShape::from(vec![3 * hidden, hidden]),
                    TensorShape::from(vec![3 * hidden]),
                ]
            }
            _ => Vec::new(),
        }
    }

    /// Total scalar parameter count implied by these attributes.
    pub fn weight_count(&self) -> usize {
        self.weight_shapes().iter().map(TensorShape::numel).sum()
    }

    /// A *shape magnitude* scalar used by the cost model to price `Reshape`
    /// by "the magnitude of the destination operations' shape change"
    /// (§4.4, Module 1, third observation).
    pub fn shape_magnitude(&self) -> f64 {
        let w = self.weight_count();
        if w > 0 {
            w as f64
        } else {
            // Weight-free ops get a small constant magnitude so reshaping
            // between them is "a constant" (§4.4 third observation).
            1.0
        }
    }
}

/// A single node of the computational graph: attributes plus (optionally)
/// weights whose shapes must match [`OpAttrs::weight_shapes`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Operation {
    /// Human-readable name, unique within a model by convention
    /// (e.g. `"conv2_1"`, `"block3.attn.query"`).
    pub name: String,
    /// Typed attributes.
    pub attrs: OpAttrs,
    /// Weight tensors, `None` for weight-free ops.
    pub weights: Option<Weights>,
}

impl Operation {
    /// Create an operation, deriving seeded weights from `seed` when the
    /// kind carries weights.
    pub fn with_seeded_weights(name: impl Into<String>, attrs: OpAttrs, seed: u64) -> Self {
        let weights = if attrs.kind().has_weights() {
            let tensors = attrs
                .weight_shapes()
                .into_iter()
                .enumerate()
                .map(|(i, shape)| WeightSpec::seeded(shape, seed.wrapping_add(i as u64)))
                .collect();
            Some(Weights::new(tensors))
        } else {
            None
        };
        Operation {
            name: name.into(),
            attrs,
            weights,
        }
    }

    /// Create a weight-free operation.
    ///
    /// # Panics
    ///
    /// Panics if the attribute kind carries weights — use
    /// [`Operation::with_seeded_weights`] instead.
    pub fn weightless(name: impl Into<String>, attrs: OpAttrs) -> Self {
        assert!(
            !attrs.kind().has_weights(),
            "operation kind {} requires weights",
            attrs.kind()
        );
        Operation {
            name: name.into(),
            attrs,
            weights: None,
        }
    }

    /// Coarse kind.
    pub fn kind(&self) -> OpKind {
        self.attrs.kind()
    }

    /// Scalar parameter count of this op (0 for weight-free ops).
    pub fn weight_count(&self) -> usize {
        self.weights.as_ref().map_or(0, Weights::count)
    }

    /// Verify the attached weights match the shapes the attributes imply.
    pub fn weights_consistent(&self) -> bool {
        let expected = self.attrs.weight_shapes();
        match &self.weights {
            None => expected.is_empty(),
            Some(w) => {
                w.tensors.len() == expected.len()
                    && w.tensors
                        .iter()
                        .zip(&expected)
                        .all(|(spec, shape)| &spec.shape == shape)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn conv(inc: usize, outc: usize, k: usize) -> OpAttrs {
        OpAttrs::Conv2d {
            in_channels: inc,
            out_channels: outc,
            kernel: (k, k),
            stride: (1, 1),
            padding: Padding::Same,
            groups: 1,
            bias: true,
        }
    }

    #[test]
    fn conv_weight_shapes() {
        let a = conv(64, 128, 3);
        let shapes = a.weight_shapes();
        assert_eq!(shapes.len(), 2);
        assert_eq!(shapes[0].dims(), &[128, 64, 3, 3]);
        assert_eq!(shapes[1].dims(), &[128]);
        assert_eq!(a.weight_count(), 128 * 64 * 9 + 128);
    }

    #[test]
    fn depthwise_conv_weight_shapes() {
        let a = OpAttrs::Conv2d {
            in_channels: 32,
            out_channels: 32,
            kernel: (3, 3),
            stride: (1, 1),
            padding: Padding::Same,
            groups: 32,
            bias: false,
        };
        assert_eq!(a.weight_shapes()[0].dims(), &[32, 1, 3, 3]);
    }

    #[test]
    fn batchnorm_has_four_vectors() {
        let a = OpAttrs::BatchNorm { features: 64 };
        assert_eq!(a.weight_shapes().len(), 4);
        assert_eq!(a.weight_count(), 256);
    }

    #[test]
    fn weightfree_kinds_report_no_weights() {
        for attrs in [
            OpAttrs::Add,
            OpAttrs::Flatten,
            OpAttrs::Activation {
                kind: Activation::Relu,
            },
            OpAttrs::Logit { heads: 4 },
            OpAttrs::Attend { heads: 4 },
        ] {
            assert!(!attrs.kind().has_weights());
            assert!(attrs.weight_shapes().is_empty());
            assert_eq!(attrs.weight_count(), 0);
        }
    }

    #[test]
    fn seeded_operation_is_consistent() {
        let op = Operation::with_seeded_weights("c1", conv(3, 16, 3), 99);
        assert!(op.weights_consistent());
        assert_eq!(op.weight_count(), 16 * 3 * 9 + 16);
        assert_eq!(op.kind(), OpKind::Conv2d);
    }

    #[test]
    fn weightless_operation_is_consistent() {
        let op = Operation::weightless(
            "relu",
            OpAttrs::Activation {
                kind: Activation::Relu,
            },
        );
        assert!(op.weights_consistent());
        assert_eq!(op.weight_count(), 0);
    }

    #[test]
    #[should_panic(expected = "requires weights")]
    fn weightless_constructor_rejects_weighted_kind() {
        let _ = Operation::weightless("c", conv(3, 3, 3));
    }

    #[test]
    fn attention_projection_shapes() {
        let q = OpAttrs::Query {
            hidden: 256,
            heads: 4,
        };
        let shapes = q.weight_shapes();
        assert_eq!(shapes[0].dims(), &[256, 256]);
        assert_eq!(shapes[1].dims(), &[256]);
        assert!(q.kind().is_attention());
        assert!(!OpKind::Conv2d.is_attention());
    }

    #[test]
    fn all_kinds_listed_once() {
        let mut set = std::collections::HashSet::new();
        for k in OpKind::ALL {
            assert!(set.insert(k), "duplicate kind {k}");
        }
        assert_eq!(set.len(), OpKind::ALL.len());
    }
}
