//! Interned identifiers for function and model names.
//!
//! The simulator and serving hot paths key almost everything by function
//! (= model) name. Hashing and cloning `String`s on every event is pure
//! overhead once the catalog is known, so names are interned once into
//! dense `u32` ids and the hot paths carry those instead: comparisons
//! become integer equality, maps become `Vec` indexing, and donor scans
//! stop allocating.
//!
//! [`Interner`] is an append-only symbol table: `resolve` interns (and is
//! the only `&mut` operation), `get`/`name` are read-only lookups, so a
//! built table can be shared immutably across threads. Ids are dense
//! indices assigned in first-resolve order and stay stable for the life
//! of the table — they are *not* meaningful across different interners.

use std::collections::HashMap;
use std::marker::PhantomData;

/// A typed dense index handed out by an [`Interner`].
pub trait InternKey: Copy {
    /// Construct from a dense index.
    fn from_index(index: usize) -> Self;
    /// The dense index this key wraps.
    fn index(self) -> usize;
}

macro_rules! intern_key {
    ($(#[$doc:meta])* $name:ident) => {
        $(#[$doc])*
        #[derive(
            Debug,
            Clone,
            Copy,
            PartialEq,
            Eq,
            Hash,
            PartialOrd,
            Ord,
            serde::Serialize,
            serde::Deserialize,
        )]
        pub struct $name(pub u32);

        impl InternKey for $name {
            fn from_index(index: usize) -> Self {
                $name(u32::try_from(index).expect("interner overflow: > u32::MAX names"))
            }

            fn index(self) -> usize {
                self.0 as usize
            }
        }
    };
}

intern_key! {
    /// Interned serverless-function name (the sim/serving layer's key).
    FunctionId
}
intern_key! {
    /// Interned model name (the repository/plan-cache layer's key).
    ModelId
}

/// Append-only symbol table mapping names to dense typed ids.
#[derive(Debug, Clone)]
pub struct Interner<K> {
    names: Vec<Box<str>>,
    index: HashMap<Box<str>, u32>,
    _key: PhantomData<K>,
}

impl<K> Default for Interner<K> {
    fn default() -> Self {
        Interner {
            names: Vec::new(),
            index: HashMap::new(),
            _key: PhantomData,
        }
    }
}

impl<K: InternKey> Interner<K> {
    /// An empty table.
    pub fn new() -> Self {
        Interner::default()
    }

    /// Intern `name`, returning its id (existing id if already interned).
    pub fn resolve(&mut self, name: &str) -> K {
        if let Some(&id) = self.index.get(name) {
            return K::from_index(id as usize);
        }
        let id = K::from_index(self.names.len());
        self.names.push(name.into());
        self.index.insert(name.into(), id.index() as u32);
        id
    }

    /// Id of an already-interned name, without interning.
    pub fn get(&self, name: &str) -> Option<K> {
        self.index.get(name).map(|&id| K::from_index(id as usize))
    }

    /// The name behind an id.
    ///
    /// # Panics
    ///
    /// Panics when `id` was not handed out by this interner.
    pub fn name(&self, id: K) -> &str {
        &self.names[id.index()]
    }

    /// Number of interned names.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Whether no names are interned.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// All `(id, name)` pairs in id order.
    pub fn iter(&self) -> impl Iterator<Item = (K, &str)> {
        self.names
            .iter()
            .enumerate()
            .map(|(i, n)| (K::from_index(i), n.as_ref()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resolve_is_idempotent_and_dense() {
        let mut t: Interner<FunctionId> = Interner::new();
        let a = t.resolve("alpha");
        let b = t.resolve("beta");
        assert_eq!(a, FunctionId(0));
        assert_eq!(b, FunctionId(1));
        assert_eq!(t.resolve("alpha"), a);
        assert_eq!(t.len(), 2);
        assert_eq!(t.name(a), "alpha");
        assert_eq!(t.name(b), "beta");
    }

    #[test]
    fn get_does_not_intern() {
        let mut t: Interner<ModelId> = Interner::new();
        assert!(t.get("vgg16").is_none());
        let id = t.resolve("vgg16");
        assert_eq!(t.get("vgg16"), Some(id));
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn iter_in_id_order() {
        let mut t: Interner<FunctionId> = Interner::new();
        for n in ["c", "a", "b"] {
            t.resolve(n);
        }
        let names: Vec<&str> = t.iter().map(|(_, n)| n).collect();
        assert_eq!(names, vec!["c", "a", "b"]);
        assert!(!t.is_empty());
    }

    #[test]
    fn ids_serialize_as_plain_integers() {
        let id = FunctionId(7);
        let json = serde_json::to_string(&id).unwrap();
        let back: FunctionId = serde_json::from_str(&json).unwrap();
        assert_eq!(back, id);
    }
}
