//! JSON (de)serialization of model graphs.
//!
//! The paper's prototype stores "model structure information and
//! model-to-model transformation planning … in JSON format" (§7); this
//! module provides the same capability for the IR. The byte length of the
//! serialized form also feeds the cost model's (negligible) deserialization
//! term.

use crate::error::ModelError;
use crate::graph::ModelGraph;

/// Serialize a model graph to a JSON string.
///
/// # Errors
///
/// Returns [`ModelError::Serde`] if serialization fails (it cannot for
/// well-formed graphs; the error path exists for API completeness).
pub fn to_json(graph: &ModelGraph) -> Result<String, ModelError> {
    serde_json::to_string(graph).map_err(|e| ModelError::Serde(e.to_string()))
}

/// Deserialize a model graph from JSON and validate it.
///
/// # Errors
///
/// Returns [`ModelError::Serde`] on malformed JSON and any
/// [`ModelGraph::validate`] error on structurally invalid graphs.
pub fn from_json(json: &str) -> Result<ModelGraph, ModelError> {
    let graph: ModelGraph =
        serde_json::from_str(json).map_err(|e| ModelError::Serde(e.to_string()))?;
    graph.validate()?;
    Ok(graph)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;
    use crate::op::Activation;

    fn sample() -> ModelGraph {
        let mut b = GraphBuilder::new("roundtrip");
        let i = b.input([1, 3, 16, 16]);
        let c = b.conv2d_after(i, 3, 8, (3, 3), (1, 1), 1);
        let a = b.activation_after(c, Activation::Relu);
        let g = b.global_avg_pool_after(a);
        let f = b.flatten_after(g);
        let _ = b.dense_after(f, 8, 10);
        b.finish().unwrap()
    }

    #[test]
    fn json_roundtrip_preserves_structure() {
        let g = sample();
        let json = to_json(&g).unwrap();
        let back = from_json(&json).unwrap();
        assert!(g.structurally_equal(&back));
        assert_eq!(g.name(), back.name());
        assert_eq!(g.param_count(), back.param_count());
    }

    #[test]
    fn malformed_json_is_rejected() {
        assert!(matches!(from_json("{not json"), Err(ModelError::Serde(_))));
    }

    #[test]
    fn serialized_size_is_reasonable() {
        let g = sample();
        let json = to_json(&g).unwrap();
        // Structure-only serialization stays small even for weighted models
        // because weights are seeds, not data.
        assert!(
            json.len() < 10_000,
            "json unexpectedly large: {}",
            json.len()
        );
    }
}
