//! The computational graph: a mutable DAG of operations.
//!
//! `ModelGraph` is the object the meta-operators edit in place inside a
//! (simulated) warm container. It therefore exposes full mutation APIs —
//! add/remove operations, add/remove edges — in addition to read-only
//! queries (topological order, predecessors, validation, structural
//! equality).

use std::collections::{BTreeMap, BTreeSet, HashMap, VecDeque};

use serde::{Deserialize, Serialize};

use crate::error::ModelError;
use crate::op::{OpAttrs, OpKind, Operation};
use crate::ModelFamily;

/// Canonical graph form: sorted op descriptors plus a canonical edge list.
type CanonicalForm = (Vec<String>, Vec<(usize, usize)>);

/// Stable operation identifier within one [`ModelGraph`].
///
/// Ids are never reused within a graph, so a plan referring to ids stays
/// valid while the executor deletes and inserts operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct OpId(pub u32);

impl std::fmt::Display for OpId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "#{}", self.0)
    }
}

/// A directed data-flow edge between two operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Edge {
    /// Producing operation.
    pub from: OpId,
    /// Consuming operation.
    pub to: OpId,
}

/// A named computational graph: operations plus data-flow edges.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ModelGraph {
    name: String,
    family: ModelFamily,
    ops: BTreeMap<OpId, Operation>,
    edges: BTreeSet<Edge>,
    next_id: u32,
}

impl ModelGraph {
    /// Create an empty graph.
    pub fn new(name: impl Into<String>, family: ModelFamily) -> Self {
        ModelGraph {
            name: name.into(),
            family,
            ops: BTreeMap::new(),
            edges: BTreeSet::new(),
            next_id: 0,
        }
    }

    /// Model name (unique within a zoo / registry by convention).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Rename the model (used when a transformation re-purposes a graph).
    pub fn set_name(&mut self, name: impl Into<String>) {
        self.name = name.into();
    }

    /// Model family tag.
    pub fn family(&self) -> ModelFamily {
        self.family
    }

    /// Re-tag the family (used when a transformation re-purposes a graph).
    pub fn set_family(&mut self, family: ModelFamily) {
        self.family = family;
    }

    /// Number of operations.
    pub fn op_count(&self) -> usize {
        self.ops.len()
    }

    /// Number of edges.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Add an operation, returning its fresh id.
    pub fn add_op(&mut self, op: Operation) -> OpId {
        let id = OpId(self.next_id);
        self.next_id += 1;
        self.ops.insert(id, op);
        id
    }

    /// Remove an operation and all incident edges.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::UnknownOp`] if the id is not present.
    pub fn remove_op(&mut self, id: OpId) -> Result<Operation, ModelError> {
        let op = self.ops.remove(&id).ok_or(ModelError::UnknownOp(id))?;
        self.edges.retain(|e| e.from != id && e.to != id);
        Ok(op)
    }

    /// Look up an operation.
    pub fn op(&self, id: OpId) -> Option<&Operation> {
        self.ops.get(&id)
    }

    /// Mutable access to an operation (used by `Replace`/`Reshape`).
    pub fn op_mut(&mut self, id: OpId) -> Option<&mut Operation> {
        self.ops.get_mut(&id)
    }

    /// Iterate `(id, op)` in stable id order.
    pub fn ops(&self) -> impl Iterator<Item = (OpId, &Operation)> {
        self.ops.iter().map(|(id, op)| (*id, op))
    }

    /// All op ids in stable order.
    pub fn op_ids(&self) -> Vec<OpId> {
        self.ops.keys().copied().collect()
    }

    /// Iterate edges in stable order.
    pub fn edges(&self) -> impl Iterator<Item = Edge> + '_ {
        self.edges.iter().copied()
    }

    /// Add a data-flow edge.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::UnknownOp`] when either endpoint is missing and
    /// [`ModelError::InvalidEdge`] for self-loops or duplicate edges.
    pub fn add_edge(&mut self, from: OpId, to: OpId) -> Result<(), ModelError> {
        if !self.ops.contains_key(&from) {
            return Err(ModelError::UnknownOp(from));
        }
        if !self.ops.contains_key(&to) {
            return Err(ModelError::UnknownOp(to));
        }
        if from == to {
            return Err(ModelError::InvalidEdge {
                from,
                to,
                reason: "self-loop",
            });
        }
        if !self.edges.insert(Edge { from, to }) {
            return Err(ModelError::InvalidEdge {
                from,
                to,
                reason: "duplicate edge",
            });
        }
        Ok(())
    }

    /// Remove a data-flow edge; returns whether it existed.
    pub fn remove_edge(&mut self, from: OpId, to: OpId) -> bool {
        self.edges.remove(&Edge { from, to })
    }

    /// Whether an edge exists.
    pub fn has_edge(&self, from: OpId, to: OpId) -> bool {
        self.edges.contains(&Edge { from, to })
    }

    /// Predecessors (inputs) of an op, in stable order.
    pub fn predecessors(&self, id: OpId) -> Vec<OpId> {
        self.edges
            .iter()
            .filter(|e| e.to == id)
            .map(|e| e.from)
            .collect()
    }

    /// Successors (consumers) of an op, in stable order.
    pub fn successors(&self, id: OpId) -> Vec<OpId> {
        self.edges
            .iter()
            .filter(|e| e.from == id)
            .map(|e| e.to)
            .collect()
    }

    /// Ids of `Input` operations.
    pub fn inputs(&self) -> Vec<OpId> {
        self.ops
            .iter()
            .filter(|(_, op)| op.kind() == OpKind::Input)
            .map(|(id, _)| *id)
            .collect()
    }

    /// Ids of sink operations (no successors).
    pub fn outputs(&self) -> Vec<OpId> {
        let with_succ: BTreeSet<OpId> = self.edges.iter().map(|e| e.from).collect();
        self.ops
            .keys()
            .copied()
            .filter(|id| !with_succ.contains(id))
            .collect()
    }

    /// Topological order of all operations (Kahn's algorithm).
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::CycleDetected`] when the graph is cyclic.
    pub fn topo_order(&self) -> Result<Vec<OpId>, ModelError> {
        let mut indeg: BTreeMap<OpId, usize> = self.ops.keys().map(|id| (*id, 0)).collect();
        for e in &self.edges {
            *indeg.get_mut(&e.to).expect("edge endpoints validated") += 1;
        }
        let mut queue: VecDeque<OpId> = indeg
            .iter()
            .filter(|(_, d)| **d == 0)
            .map(|(id, _)| *id)
            .collect();
        let mut order = Vec::with_capacity(self.ops.len());
        while let Some(id) = queue.pop_front() {
            order.push(id);
            for succ in self.successors(id) {
                let d = indeg.get_mut(&succ).expect("known op");
                *d -= 1;
                if *d == 0 {
                    queue.push_back(succ);
                }
            }
        }
        if order.len() == self.ops.len() {
            Ok(order)
        } else {
            Err(ModelError::CycleDetected)
        }
    }

    /// Validate the graph: edges reference known ops, the graph is acyclic,
    /// an input exists, and every op's weights match its attributes.
    ///
    /// # Errors
    ///
    /// Returns the first violated invariant.
    pub fn validate(&self) -> Result<(), ModelError> {
        for e in &self.edges {
            if !self.ops.contains_key(&e.from) {
                return Err(ModelError::UnknownOp(e.from));
            }
            if !self.ops.contains_key(&e.to) {
                return Err(ModelError::UnknownOp(e.to));
            }
        }
        if self.inputs().is_empty() {
            return Err(ModelError::MissingInput);
        }
        self.topo_order()?;
        for (id, op) in &self.ops {
            if !op.weights_consistent() {
                return Err(ModelError::WeightShapeMismatch {
                    op: *id,
                    detail: format!(
                        "op '{}' weights do not match attrs {:?}",
                        op.name,
                        op.attrs.kind()
                    ),
                });
            }
        }
        Ok(())
    }

    /// Total scalar parameter count of the model.
    pub fn param_count(&self) -> usize {
        self.ops.values().map(Operation::weight_count).sum()
    }

    /// Serialized size in bytes at `f32` precision (parameters only),
    /// matching the paper's Figure 2c "Size (MB)" metric.
    pub fn byte_size(&self) -> usize {
        self.param_count() * 4
    }

    /// Count operations that carry weights (the paper notes ResNet101 has
    /// 347 operations of which only 101 carry weights).
    pub fn weighted_op_count(&self) -> usize {
        self.ops.values().filter(|op| op.weights.is_some()).count()
    }

    /// Structural-and-weight equality with another graph, ignoring op ids
    /// and insertion order.
    ///
    /// Two graphs are *equivalent* when there is a bijection between their
    /// ops that preserves attributes, weights (by content id) and edges.
    /// The transformation executor uses this to assert that applying a plan
    /// to the source model really produced the destination model.
    ///
    /// The check canonicalises each graph by topological order with
    /// `(kind, attrs-fingerprint, name)` tie-breaking, which is exact for
    /// the graph shapes produced by the zoo (chains with residual/branch
    /// merges whose ops are name-distinguished).
    pub fn structurally_equal(&self, other: &ModelGraph) -> bool {
        if self.op_count() != other.op_count() || self.edge_count() != other.edge_count() {
            return false;
        }
        let (Some(a), Some(b)) = (self.canonical_form(), other.canonical_form()) else {
            return false;
        };
        a == b
    }

    /// Canonical representation: per-op descriptors plus canonical edge
    /// list, or `None` for cyclic graphs.
    fn canonical_form(&self) -> Option<CanonicalForm> {
        let mut order = self.topo_order().ok()?;
        // Stable-sort within topological levels by descriptor.
        let desc = |id: OpId| -> String {
            let op = self.ops.get(&id).expect("topo ids exist");
            let wid = op.weights.as_ref().map(|w| w.id().0).unwrap_or(0);
            format!("{:?}|{}|{:016x}", op.attrs, op.name, wid)
        };
        // Compute topological depth for level-wise sorting.
        let mut depth: HashMap<OpId, usize> = HashMap::new();
        for &id in &order {
            let d = self
                .predecessors(id)
                .iter()
                .map(|p| depth.get(p).copied().unwrap_or(0) + 1)
                .max()
                .unwrap_or(0);
            depth.insert(id, d);
        }
        order.sort_by(|a, b| {
            depth[a]
                .cmp(&depth[b])
                .then_with(|| desc(*a).cmp(&desc(*b)))
        });
        let index: HashMap<OpId, usize> =
            order.iter().enumerate().map(|(i, id)| (*id, i)).collect();
        let descriptors = order.iter().map(|id| desc(*id)).collect();
        let mut edges: Vec<(usize, usize)> = self
            .edges
            .iter()
            .map(|e| (index[&e.from], index[&e.to]))
            .collect();
        edges.sort_unstable();
        Some((descriptors, edges))
    }

    /// Stable content hash of the graph: family, every operation (id,
    /// name, attributes, weight content id) and every edge — everything
    /// **except the model name**, so two differently-named deployments of
    /// the same architecture+weights hash identically.
    ///
    /// The hash is a pure function of graph content (never of host
    /// state), stable across processes and serialize/deserialize round
    /// trips — the basis of content-addressed plan-cache keys: a cached
    /// transformation plan references concrete [`OpId`]s, so it is valid
    /// for exactly the graphs whose content hash matches the pair it was
    /// planned for.
    pub fn content_hash(&self) -> u64 {
        fn mix(acc: &mut u64, v: u64) {
            // FNV-1a-with-avalanche, as in the weight content hashes.
            *acc ^= v;
            *acc = acc.wrapping_mul(0x1000_0000_01B3);
            *acc ^= *acc >> 29;
        }
        fn mix_str(acc: &mut u64, s: &str) {
            mix(acc, s.len() as u64);
            for b in s.as_bytes() {
                mix(acc, u64::from(*b));
            }
        }
        let mut acc: u64 = 0xCBF2_9CE4_8422_2325;
        mix(&mut acc, 0x4752_4150); // "GRAP"
        mix_str(&mut acc, &format!("{:?}", self.family));
        mix(&mut acc, self.ops.len() as u64);
        for (id, op) in &self.ops {
            mix(&mut acc, u64::from(id.0));
            mix_str(&mut acc, &op.name);
            mix_str(&mut acc, &format!("{:?}", op.attrs));
            mix(&mut acc, op.weights.as_ref().map_or(0, |w| w.id().0));
        }
        mix(&mut acc, self.edges.len() as u64);
        for e in &self.edges {
            mix(&mut acc, u64::from(e.from.0));
            mix(&mut acc, u64::from(e.to.0));
        }
        acc
    }

    /// Group op ids by kind, preserving id order within each group.
    ///
    /// This is step (1) of the paper's Module 2⁺ group-based planner.
    pub fn ops_by_kind(&self) -> BTreeMap<OpKind, Vec<OpId>> {
        let mut map: BTreeMap<OpKind, Vec<OpId>> = BTreeMap::new();
        for (id, op) in &self.ops {
            map.entry(op.kind()).or_default().push(*id);
        }
        map
    }

    /// Convenience: add an op built from attrs with seeded weights and wire
    /// it after `prev`.
    ///
    /// # Errors
    ///
    /// Returns an error if `prev` is unknown.
    pub fn append_after(
        &mut self,
        prev: OpId,
        name: impl Into<String>,
        attrs: OpAttrs,
        seed: u64,
    ) -> Result<OpId, ModelError> {
        if !self.ops.contains_key(&prev) {
            return Err(ModelError::UnknownOp(prev));
        }
        let id = self.add_op(Operation::with_seeded_weights(name, attrs, seed));
        self.add_edge(prev, id)?;
        Ok(id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::Activation;

    fn input() -> Operation {
        Operation::weightless(
            "in",
            OpAttrs::Input {
                shape: crate::TensorShape::from([1, 3, 8, 8]),
            },
        )
    }

    fn relu(name: &str) -> Operation {
        Operation::weightless(
            name,
            OpAttrs::Activation {
                kind: Activation::Relu,
            },
        )
    }

    #[test]
    fn build_and_query_chain() {
        let mut g = ModelGraph::new("m", ModelFamily::Custom);
        let a = g.add_op(input());
        let b = g.add_op(relu("r1"));
        let c = g.add_op(relu("r2"));
        g.add_edge(a, b).unwrap();
        g.add_edge(b, c).unwrap();
        assert_eq!(g.op_count(), 3);
        assert_eq!(g.edge_count(), 2);
        assert_eq!(g.predecessors(c), vec![b]);
        assert_eq!(g.successors(a), vec![b]);
        assert_eq!(g.inputs(), vec![a]);
        assert_eq!(g.outputs(), vec![c]);
        assert_eq!(g.topo_order().unwrap(), vec![a, b, c]);
        assert!(g.validate().is_ok());
    }

    #[test]
    fn cycle_is_detected() {
        let mut g = ModelGraph::new("m", ModelFamily::Custom);
        let a = g.add_op(input());
        let b = g.add_op(relu("r1"));
        let c = g.add_op(relu("r2"));
        g.add_edge(a, b).unwrap();
        g.add_edge(b, c).unwrap();
        g.add_edge(c, b).unwrap();
        assert_eq!(g.topo_order(), Err(ModelError::CycleDetected));
        assert_eq!(g.validate(), Err(ModelError::CycleDetected));
    }

    #[test]
    fn self_loop_and_duplicate_edges_rejected() {
        let mut g = ModelGraph::new("m", ModelFamily::Custom);
        let a = g.add_op(input());
        let b = g.add_op(relu("r"));
        assert!(matches!(
            g.add_edge(a, a),
            Err(ModelError::InvalidEdge { .. })
        ));
        g.add_edge(a, b).unwrap();
        assert!(matches!(
            g.add_edge(a, b),
            Err(ModelError::InvalidEdge { .. })
        ));
        assert!(matches!(
            g.add_edge(a, OpId(99)),
            Err(ModelError::UnknownOp(OpId(99)))
        ));
    }

    #[test]
    fn remove_op_drops_incident_edges() {
        let mut g = ModelGraph::new("m", ModelFamily::Custom);
        let a = g.add_op(input());
        let b = g.add_op(relu("r1"));
        let c = g.add_op(relu("r2"));
        g.add_edge(a, b).unwrap();
        g.add_edge(b, c).unwrap();
        g.remove_op(b).unwrap();
        assert_eq!(g.edge_count(), 0);
        assert_eq!(g.op_count(), 2);
        assert!(g.remove_op(b).is_err());
    }

    #[test]
    fn ids_are_not_reused() {
        let mut g = ModelGraph::new("m", ModelFamily::Custom);
        let a = g.add_op(input());
        g.remove_op(a).unwrap();
        let b = g.add_op(input());
        assert_ne!(a, b);
    }

    #[test]
    fn missing_input_fails_validation() {
        let mut g = ModelGraph::new("m", ModelFamily::Custom);
        g.add_op(relu("r"));
        assert_eq!(g.validate(), Err(ModelError::MissingInput));
    }

    #[test]
    fn structural_equality_ignores_insertion_order() {
        let mut g1 = ModelGraph::new("a", ModelFamily::Custom);
        let i1 = g1.add_op(input());
        let r1 = g1.add_op(relu("r1"));
        g1.add_edge(i1, r1).unwrap();

        let mut g2 = ModelGraph::new("b", ModelFamily::Custom);
        let r2 = g2.add_op(relu("r1"));
        let i2 = g2.add_op(input());
        g2.add_edge(i2, r2).unwrap();

        assert!(g1.structurally_equal(&g2));
    }

    #[test]
    fn structural_equality_detects_weight_difference() {
        let conv = |seed| {
            Operation::with_seeded_weights(
                "c",
                OpAttrs::Conv2d {
                    in_channels: 3,
                    out_channels: 4,
                    kernel: (3, 3),
                    stride: (1, 1),
                    padding: crate::Padding::Same,
                    groups: 1,
                    bias: true,
                },
                seed,
            )
        };
        let mut g1 = ModelGraph::new("a", ModelFamily::Custom);
        let i = g1.add_op(input());
        let c = g1.add_op(conv(1));
        g1.add_edge(i, c).unwrap();
        let mut g2 = g1.clone();
        assert!(g1.structurally_equal(&g2));
        g2.op_mut(c).unwrap().weights = conv(2).weights;
        assert!(!g1.structurally_equal(&g2));
    }

    #[test]
    fn group_by_kind() {
        let mut g = ModelGraph::new("m", ModelFamily::Custom);
        let a = g.add_op(input());
        let b = g.add_op(relu("r1"));
        let c = g.add_op(relu("r2"));
        g.add_edge(a, b).unwrap();
        g.add_edge(b, c).unwrap();
        let groups = g.ops_by_kind();
        assert_eq!(groups[&OpKind::Activation], vec![b, c]);
        assert_eq!(groups[&OpKind::Input], vec![a]);
    }

    #[test]
    fn param_count_sums_ops() {
        let mut g = ModelGraph::new("m", ModelFamily::Custom);
        let i = g.add_op(input());
        g.append_after(
            i,
            "c1",
            OpAttrs::Conv2d {
                in_channels: 3,
                out_channels: 8,
                kernel: (3, 3),
                stride: (1, 1),
                padding: crate::Padding::Same,
                groups: 1,
                bias: true,
            },
            7,
        )
        .unwrap();
        assert_eq!(g.param_count(), 8 * 3 * 9 + 8);
        assert_eq!(g.byte_size(), g.param_count() * 4);
        assert_eq!(g.weighted_op_count(), 1);
    }

    #[test]
    fn content_hash_ignores_name_but_tracks_content() {
        let build = |name: &str, seed: u64| {
            let mut g = ModelGraph::new(name, ModelFamily::Custom);
            let i = g.add_op(input());
            g.append_after(
                i,
                "c1",
                OpAttrs::Conv2d {
                    in_channels: 3,
                    out_channels: 8,
                    kernel: (3, 3),
                    stride: (1, 1),
                    padding: crate::Padding::Same,
                    groups: 1,
                    bias: true,
                },
                seed,
            )
            .unwrap();
            g
        };
        let a = build("a", 7);
        // Renaming does not change the content identity…
        assert_eq!(a.content_hash(), build("b", 7).content_hash());
        // …but different weights or structure do.
        assert_ne!(a.content_hash(), build("a", 8).content_hash());
        let mut c = build("a", 7);
        let out = c.outputs()[0];
        c.append_after(
            out,
            "relu",
            OpAttrs::Activation {
                kind: crate::Activation::Relu,
            },
            0,
        )
        .unwrap();
        assert_ne!(a.content_hash(), c.content_hash());
    }
}
