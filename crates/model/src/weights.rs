//! Deterministic, lazily materialisable weight tensors.
//!
//! Zoo models can have hundreds of millions of parameters (VGG16 has
//! 138.4 M), so the IR does not eagerly store every float. Instead each
//! weight tensor is a [`WeightSpec`]: a shape plus a deterministic
//! initialiser. Tests and the forward-pass engine can *materialise* a spec
//! into real `f32` data on demand; everything else (cost models, planners,
//! Tetris-style sharing) works off shapes and content ids.

use serde::{Deserialize, Serialize};

use crate::shape::TensorShape;
use crate::tensor::Tensor;

/// Content identity of a weight set.
///
/// Two weight sets with the same `WeightId` hold identical values. This is
/// what Tetris-style tensor sharing compares ("operations of the same type,
/// size, and weight" — §2.1), and what the `Replace` meta-operator checks to
/// decide whether weights actually need rewriting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct WeightId(pub u64);

/// How a weight tensor's values are produced.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum WeightInit {
    /// All zeros (used for padding regions created by `Reshape`).
    Zeros,
    /// Deterministic pseudo-random values derived from a seed.
    ///
    /// The same seed and shape always produce the same values, so models are
    /// reproducible across runs without storing data.
    Seeded(u64),
    /// Explicitly materialised values (small tests and transformed weights).
    Dense(Vec<f32>),
    /// A crop-and-zero-pad view of another weight tensor — the semantics of
    /// the `Reshape` meta-operator: the overlapping hyper-rectangle of the
    /// source is preserved, new positions are zero.
    ///
    /// The target shape lives in the enclosing [`WeightSpec::shape`]; the
    /// boxed spec carries the source shape and values. Materialisation is
    /// lazy, so reshaping a 100 M-parameter operation costs nothing until a
    /// test or the forward-pass engine actually reads the values.
    CropPad(Box<WeightSpec>),
}

/// One weight tensor of an operation (e.g. a convolution kernel or a bias).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WeightSpec {
    /// Tensor shape.
    pub shape: TensorShape,
    /// Value initialiser.
    pub init: WeightInit,
}

impl WeightSpec {
    /// A seeded spec with the given shape.
    pub fn seeded(shape: impl Into<TensorShape>, seed: u64) -> Self {
        WeightSpec {
            shape: shape.into(),
            init: WeightInit::Seeded(seed),
        }
    }

    /// An all-zeros spec with the given shape.
    pub fn zeros(shape: impl Into<TensorShape>) -> Self {
        WeightSpec {
            shape: shape.into(),
            init: WeightInit::Zeros,
        }
    }

    /// A spec with explicit values.
    ///
    /// # Panics
    ///
    /// Panics if `data.len()` does not match the shape's element count.
    pub fn dense(shape: impl Into<TensorShape>, data: Vec<f32>) -> Self {
        let shape = shape.into();
        assert_eq!(
            shape.numel(),
            data.len(),
            "dense weight data must match shape"
        );
        WeightSpec {
            shape,
            init: WeightInit::Dense(data),
        }
    }

    /// Number of scalar parameters in this tensor.
    pub fn count(&self) -> usize {
        self.shape.numel()
    }

    /// A crop-and-zero-pad spec reshaping `src` into `shape` (the `Reshape`
    /// meta-operator's weight semantics).
    pub fn crop_pad_of(src: WeightSpec, shape: impl Into<TensorShape>) -> Self {
        WeightSpec {
            shape: shape.into(),
            init: WeightInit::CropPad(Box::new(src)),
        }
    }

    /// Materialise the tensor values.
    ///
    /// Seeded values come from a splitmix64 stream mapped to roughly
    /// `N(0, 0.05)` via a cheap triangular approximation — good enough for
    /// forward-pass smoke tests, deterministic by construction.
    pub fn materialize(&self) -> Tensor {
        let n = self.count();
        let data = match &self.init {
            WeightInit::Zeros => vec![0.0; n],
            WeightInit::Dense(d) => d.clone(),
            WeightInit::CropPad(src) => {
                return crop_pad(&src.materialize(), &self.shape);
            }
            WeightInit::Seeded(seed) => {
                let mut state = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
                (0..n)
                    .map(|_| {
                        let a = splitmix64(&mut state);
                        let b = splitmix64(&mut state);
                        let u = (a >> 40) as f32 / (1u64 << 24) as f32;
                        let v = (b >> 40) as f32 / (1u64 << 24) as f32;
                        (u + v - 1.0) * 0.1
                    })
                    .collect()
            }
        };
        Tensor::new(self.shape.clone(), data)
    }

    /// Stable content fingerprint of this tensor (shape + initialiser).
    ///
    /// Two specs with the same fingerprint materialise to identical values
    /// — the per-tensor analogue of [`Weights::id`], and the basis of
    /// `optimus-store`'s content-addressed chunk ids. The hash is a pure
    /// function of the spec (never of host state), so it is stable across
    /// processes and across a serialize/deserialize round trip.
    pub fn fingerprint(&self) -> u64 {
        let mut acc: u64 = 0xCBF2_9CE4_8422_2325;
        self.content_hash(&mut acc);
        acc
    }

    /// Stable content hash of this tensor (shape + initialiser).
    fn content_hash(&self, acc: &mut u64) {
        mix(acc, 0x5348_4150); // "SHAP"
        for &d in self.shape.dims() {
            mix(acc, d as u64);
        }
        match &self.init {
            WeightInit::Zeros => mix(acc, 0x5A45_524F), // "ZERO"
            WeightInit::Seeded(s) => {
                mix(acc, 0x5345_4544); // "SEED"
                mix(acc, *s);
            }
            WeightInit::Dense(d) => {
                mix(acc, 0x4445_4E53); // "DENS"
                for v in d {
                    mix(acc, v.to_bits() as u64);
                }
            }
            WeightInit::CropPad(src) => {
                mix(acc, 0x4352_4F50); // "CROP"
                src.content_hash(acc);
            }
        }
    }
}

/// Crop-and-zero-pad `src` into `target` shape: positions present in both
/// shapes keep the source value, new positions are zero. Ranks may differ;
/// the shorter rank is right-aligned is *not* attempted — extra leading
/// dimensions are treated as size-1 on the shorter side.
fn crop_pad(src: &Tensor, target: &TensorShape) -> Tensor {
    let rank = src.shape().rank().max(target.rank());
    let pad_dims = |s: &TensorShape| -> Vec<usize> {
        let mut d = vec![1; rank - s.rank()];
        d.extend_from_slice(s.dims());
        d
    };
    let sd = pad_dims(src.shape());
    let td = pad_dims(target);
    let mut out = Tensor::zeros(target.clone());
    // Iterate the overlap region in row-major order.
    let overlap: Vec<usize> = sd.iter().zip(&td).map(|(a, b)| *a.min(b)).collect();
    if overlap.contains(&0) {
        return out;
    }
    let mut idx = vec![0usize; rank];
    loop {
        // Compute flat offsets in src and target.
        let (mut so, mut to) = (0usize, 0usize);
        for k in 0..rank {
            so = so * sd[k] + idx[k];
            to = to * td[k] + idx[k];
        }
        out.data_mut()[to] = src.data()[so];
        // Odometer increment over the overlap region.
        let mut k = rank;
        loop {
            if k == 0 {
                return out;
            }
            k -= 1;
            idx[k] += 1;
            if idx[k] < overlap[k] {
                break;
            }
            idx[k] = 0;
        }
    }
}

/// The complete weight set of one operation (kernel + bias + norm stats…).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct Weights {
    /// Individual tensors, in a fixed per-kind order (e.g. `[kernel, bias]`).
    pub tensors: Vec<WeightSpec>,
}

impl Weights {
    /// Weight set from tensors.
    pub fn new(tensors: Vec<WeightSpec>) -> Self {
        Weights { tensors }
    }

    /// Total scalar parameter count.
    pub fn count(&self) -> usize {
        self.tensors.iter().map(WeightSpec::count).sum()
    }

    /// Total size in bytes at `f32` precision.
    pub fn byte_size(&self) -> usize {
        self.count() * 4
    }

    /// Deterministic content identity (see [`WeightId`]).
    pub fn id(&self) -> WeightId {
        let mut acc: u64 = 0xCBF2_9CE4_8422_2325;
        for t in &self.tensors {
            t.content_hash(&mut acc);
        }
        WeightId(acc)
    }

    /// `true` when this set holds no tensors.
    pub fn is_empty(&self) -> bool {
        self.tensors.is_empty()
    }

    /// Per-tensor content fingerprints (see [`WeightSpec::fingerprint`]).
    pub fn tensor_fingerprints(&self) -> Vec<u64> {
        self.tensors.iter().map(WeightSpec::fingerprint).collect()
    }
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn mix(acc: &mut u64, v: u64) {
    // FNV-1a style mixing with an avalanche step.
    *acc ^= v;
    *acc = acc.wrapping_mul(0x1000_0000_01B3);
    *acc ^= *acc >> 29;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_materialization_is_deterministic() {
        let a = WeightSpec::seeded([2, 3], 42).materialize();
        let b = WeightSpec::seeded([2, 3], 42).materialize();
        assert_eq!(a.data(), b.data());
        let c = WeightSpec::seeded([2, 3], 43).materialize();
        assert_ne!(a.data(), c.data());
    }

    #[test]
    fn seeded_values_are_small_and_centered() {
        let t = WeightSpec::seeded([64, 64], 7).materialize();
        let mean: f32 = t.data().iter().sum::<f32>() / t.data().len() as f32;
        assert!(mean.abs() < 0.01, "mean {mean} should be near zero");
        assert!(t.data().iter().all(|v| v.abs() <= 0.1));
    }

    #[test]
    fn weight_id_reflects_content() {
        let w1 = Weights::new(vec![WeightSpec::seeded([3, 3], 1)]);
        let w2 = Weights::new(vec![WeightSpec::seeded([3, 3], 1)]);
        let w3 = Weights::new(vec![WeightSpec::seeded([3, 3], 2)]);
        let w4 = Weights::new(vec![WeightSpec::seeded([3, 4], 1)]);
        assert_eq!(w1.id(), w2.id());
        assert_ne!(w1.id(), w3.id());
        assert_ne!(w1.id(), w4.id());
    }

    #[test]
    fn fingerprint_reflects_content_and_matches_id_semantics() {
        let a = WeightSpec::seeded([3, 3], 1);
        let b = WeightSpec::seeded([3, 3], 1);
        let c = WeightSpec::seeded([3, 3], 2);
        let d = WeightSpec::seeded([3, 4], 1);
        assert_eq!(a.fingerprint(), b.fingerprint());
        assert_ne!(a.fingerprint(), c.fingerprint());
        assert_ne!(a.fingerprint(), d.fingerprint());
        // A single-tensor weight set's id equals the tensor fingerprint
        // (both start from the same FNV offset basis).
        assert_eq!(Weights::new(vec![a.clone()]).id().0, a.fingerprint());
        let w = Weights::new(vec![a, c]);
        assert_eq!(w.tensor_fingerprints().len(), 2);
    }

    #[test]
    fn counts_and_bytes() {
        let w = Weights::new(vec![
            WeightSpec::seeded([16, 8, 3, 3], 0),
            WeightSpec::zeros([16]),
        ]);
        assert_eq!(w.count(), 16 * 8 * 9 + 16);
        assert_eq!(w.byte_size(), w.count() * 4);
        assert!(!w.is_empty());
    }

    #[test]
    #[should_panic(expected = "dense weight data must match shape")]
    fn dense_mismatch_panics() {
        let _ = WeightSpec::dense([2, 2], vec![1.0; 3]);
    }

    #[test]
    fn zeros_materialize_to_zero() {
        let t = WeightSpec::zeros([4]).materialize();
        assert_eq!(t.data(), &[0.0; 4]);
    }

    #[test]
    fn crop_pad_grows_with_zero_padding() {
        // 2x2 kernel -> 3x3: original values in the top-left corner.
        let src = WeightSpec::dense([2, 2], vec![1.0, 2.0, 3.0, 4.0]);
        let grown = WeightSpec::crop_pad_of(src, [3, 3]).materialize();
        assert_eq!(grown.data(), &[1.0, 2.0, 0.0, 3.0, 4.0, 0.0, 0.0, 0.0, 0.0]);
    }

    #[test]
    fn crop_pad_shrinks_by_cropping() {
        let src = WeightSpec::dense([3, 3], (1..=9).map(|v| v as f32).collect());
        let cropped = WeightSpec::crop_pad_of(src, [2, 2]).materialize();
        assert_eq!(cropped.data(), &[1.0, 2.0, 4.0, 5.0]);
    }

    #[test]
    fn crop_pad_handles_rank_change() {
        // [4] -> [2, 3]: the vector is treated as [1, 4].
        let src = WeightSpec::dense([4], vec![1.0, 2.0, 3.0, 4.0]);
        let t = WeightSpec::crop_pad_of(src, [2, 3]).materialize();
        assert_eq!(t.data(), &[1.0, 2.0, 3.0, 0.0, 0.0, 0.0]);
    }

    #[test]
    fn crop_pad_identity_preserves_values() {
        let src = WeightSpec::seeded([4, 3, 3, 3], 5);
        let orig = src.materialize();
        let same = WeightSpec::crop_pad_of(src, [4, 3, 3, 3]).materialize();
        assert_eq!(orig.data(), same.data());
    }

    #[test]
    fn crop_pad_ids_differ_from_source() {
        let src = WeightSpec::seeded([3, 3], 5);
        let w1 = Weights::new(vec![src.clone()]);
        let w2 = Weights::new(vec![WeightSpec::crop_pad_of(src, [3, 3])]);
        assert_ne!(w1.id(), w2.id(), "CropPad is a distinct content identity");
    }
}
