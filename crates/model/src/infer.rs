//! Minimal forward-pass engine.
//!
//! The paper's third pipeline step is "inference computation" (§3.1). This
//! engine executes a [`ModelGraph`] on real tensors so tests, examples and
//! the transformation executor can verify that a graph — in particular a
//! *transformed* graph — is actually runnable and produces finite outputs.
//!
//! It is deliberately naive (nested-loop convolutions, no SIMD): it exists
//! for correctness validation of small models, not for throughput. The
//! simulated platform accounts for inference *latency* through the cost
//! model in `optimus-profile` instead.

use std::collections::HashMap;

use crate::error::ModelError;
use crate::graph::{ModelGraph, OpId};
use crate::op::{Activation, OpAttrs, OpKind, Padding, PoolKind};
use crate::tensor::Tensor;

/// Execute the graph on a single input tensor.
///
/// The tensor is fed to the graph's (single) `Input` op; every other op is
/// evaluated in topological order; the output of the (single) sink op is
/// returned.
///
/// # Errors
///
/// Returns [`ModelError`] on invalid graphs, shape mismatches, or operations
/// the engine does not implement.
pub fn run(graph: &ModelGraph, input: Tensor) -> Result<Tensor, ModelError> {
    let inputs = graph.inputs();
    if inputs.len() != 1 {
        return Err(ModelError::MissingInput);
    }
    let outputs = run_multi(graph, &[(inputs[0], input)])?;
    let sinks = graph.outputs();
    let sink = *sinks.first().ok_or(ModelError::MissingInput)?;
    outputs
        .into_iter()
        .find(|(id, _)| *id == sink)
        .map(|(_, t)| t)
        .ok_or(ModelError::UnknownOp(sink))
}

/// Execute the graph with explicit per-input tensors, returning every sink
/// op's output.
///
/// # Errors
///
/// Returns [`ModelError`] on invalid graphs, shape mismatches, or operations
/// the engine does not implement.
pub fn run_multi(
    graph: &ModelGraph,
    inputs: &[(OpId, Tensor)],
) -> Result<Vec<(OpId, Tensor)>, ModelError> {
    graph.validate()?;
    let order = graph.topo_order()?;
    let mut values: HashMap<OpId, Tensor> = HashMap::new();
    for (id, t) in inputs {
        values.insert(*id, t.clone());
    }
    for id in order {
        let op = graph.op(id).expect("topo ids exist");
        if op.kind() == OpKind::Input {
            if !values.contains_key(&id) {
                return Err(ModelError::ShapeMismatch {
                    op: id,
                    detail: "no tensor supplied for Input op".into(),
                });
            }
            continue;
        }
        let preds = graph.predecessors(id);
        let mut args: Vec<&Tensor> = Vec::with_capacity(preds.len());
        for p in &preds {
            args.push(values.get(p).ok_or(ModelError::UnknownOp(*p))?);
        }
        let out = eval_op(graph, id, &preds, &args)?;
        values.insert(id, out);
    }
    Ok(graph
        .outputs()
        .into_iter()
        .filter_map(|id| values.remove(&id).map(|t| (id, t)))
        .collect())
}

fn arity(op: OpId, args: &[&Tensor], expected: usize) -> Result<(), ModelError> {
    if args.len() == expected {
        Ok(())
    } else {
        Err(ModelError::ArityMismatch {
            op,
            expected,
            actual: args.len(),
        })
    }
}

fn eval_op(
    graph: &ModelGraph,
    id: OpId,
    preds: &[OpId],
    args: &[&Tensor],
) -> Result<Tensor, ModelError> {
    let op = graph.op(id).expect("caller validated id");
    match &op.attrs {
        OpAttrs::Input { .. } => unreachable!("inputs handled by caller"),
        OpAttrs::Conv2d {
            in_channels,
            out_channels,
            kernel,
            stride,
            padding,
            groups,
            bias,
        } => {
            arity(id, args, 1)?;
            conv2d(
                id,
                args[0],
                op.weights.as_ref().expect("validated weights"),
                *in_channels,
                *out_channels,
                *kernel,
                *stride,
                *padding,
                *groups,
                *bias,
            )
        }
        OpAttrs::Dense {
            in_features,
            out_features,
            bias,
        } => {
            arity(id, args, 1)?;
            dense(
                id,
                args[0],
                op.weights.as_ref().expect("validated weights"),
                *in_features,
                *out_features,
                *bias,
            )
        }
        OpAttrs::BatchNorm { features } => {
            arity(id, args, 1)?;
            batchnorm(
                id,
                args[0],
                op.weights.as_ref().expect("validated"),
                *features,
            )
        }
        OpAttrs::LayerNorm { features } => {
            arity(id, args, 1)?;
            layernorm(
                id,
                args[0],
                op.weights.as_ref().expect("validated"),
                *features,
            )
        }
        OpAttrs::Activation { kind } => {
            arity(id, args, 1)?;
            Ok(activation(args[0], *kind))
        }
        OpAttrs::Pool2d {
            kind,
            size,
            stride,
            padding,
        } => {
            arity(id, args, 1)?;
            pool2d(id, args[0], *kind, *size, *stride, *padding)
        }
        OpAttrs::GlobalPool { kind } => {
            arity(id, args, 1)?;
            global_pool(id, args[0], *kind)
        }
        OpAttrs::Add => {
            if args.is_empty() {
                return Err(ModelError::ArityMismatch {
                    op: id,
                    expected: 2,
                    actual: 0,
                });
            }
            let mut out = args[0].clone();
            for t in &args[1..] {
                if t.shape() != out.shape() {
                    return Err(ModelError::ShapeMismatch {
                        op: id,
                        detail: format!("add inputs {} vs {}", out.shape(), t.shape()),
                    });
                }
                for (o, v) in out.data_mut().iter_mut().zip(t.data()) {
                    *o += v;
                }
            }
            Ok(out)
        }
        OpAttrs::Concat => concat(id, args),
        OpAttrs::Flatten => {
            arity(id, args, 1)?;
            let t = args[0].clone();
            let d = t.shape().dims().to_vec();
            let batch = d.first().copied().unwrap_or(1);
            let rest: usize = d.iter().skip(1).product();
            Ok(t.reshaped([batch, rest]))
        }
        OpAttrs::Dropout { .. } => {
            arity(id, args, 1)?;
            Ok(args[0].clone())
        }
        OpAttrs::ZeroPad { pad } => {
            arity(id, args, 1)?;
            zeropad(id, args[0], *pad)
        }
        OpAttrs::Softmax => {
            arity(id, args, 1)?;
            Ok(softmax_last_axis(args[0]))
        }
        OpAttrs::Embedding { vocab, hidden } => {
            arity(id, args, 1)?;
            embedding(
                id,
                args[0],
                op.weights.as_ref().expect("validated"),
                *vocab,
                *hidden,
            )
        }
        OpAttrs::PosEmbedding { max_len, hidden } => {
            arity(id, args, 1)?;
            pos_embedding(
                id,
                args[0],
                op.weights.as_ref().expect("validated"),
                *max_len,
                *hidden,
            )
        }
        OpAttrs::Query { hidden, .. }
        | OpAttrs::Key { hidden, .. }
        | OpAttrs::Value { hidden, .. }
        | OpAttrs::AttnOutput { hidden } => {
            arity(id, args, 1)?;
            // All four are hidden→hidden affine maps over the last axis.
            dense_last_axis(
                id,
                args[0],
                op.weights.as_ref().expect("validated"),
                *hidden,
            )
        }
        OpAttrs::Logit { heads } => {
            arity(id, args, 2)?;
            let (q, k) = pick_by_kind(graph, preds, args, OpKind::Query, OpKind::Key, id)?;
            logit(id, q, k, *heads)
        }
        OpAttrs::Attend { heads } => {
            arity(id, args, 2)?;
            let (probs, v) = pick_attend_inputs(graph, preds, args, id)?;
            attend(id, probs, v, *heads)
        }
        OpAttrs::Lstm { input, hidden } => {
            arity(id, args, 1)?;
            recurrent(
                id,
                args[0],
                op.weights.as_ref().expect("validated weights"),
                *input,
                *hidden,
                RnnKind::Lstm,
            )
        }
        OpAttrs::Gru { input, hidden } => {
            arity(id, args, 1)?;
            recurrent(
                id,
                args[0],
                op.weights.as_ref().expect("validated weights"),
                *input,
                *hidden,
                RnnKind::Gru,
            )
        }
    }
}

#[derive(Clone, Copy, PartialEq)]
enum RnnKind {
    Lstm,
    Gru,
}

/// Sequential recurrent forward pass over `[B, S, in] -> [B, S, hidden]`.
fn recurrent(
    id: OpId,
    x: &Tensor,
    weights: &crate::weights::Weights,
    input: usize,
    hidden: usize,
    kind: RnnKind,
) -> Result<Tensor, ModelError> {
    let d = x.shape().dims();
    if d.len() != 3 || d[2] != input {
        return Err(ModelError::ShapeMismatch {
            op: id,
            detail: format!("rnn expects [B,S,{input}], got {}", x.shape()),
        });
    }
    let (batch, seq) = (d[0], d[1]);
    let gates = match kind {
        RnnKind::Lstm => 4,
        RnnKind::Gru => 3,
    };
    let w = weights.tensors[0].materialize(); // [gates*h, in]
    let u = weights.tensors[1].materialize(); // [gates*h, h]
    let bias = weights.tensors[2].materialize(); // [gates*h]
    let sigmoid = |v: f32| 1.0 / (1.0 + (-v).exp());
    let mut out = Tensor::zeros([batch, seq, hidden]);
    for b in 0..batch {
        let mut h = vec![0.0f32; hidden];
        let mut c = vec![0.0f32; hidden]; // cell state (LSTM only)
        for t in 0..seq {
            let xt = &x.data()[(b * seq + t) * input..(b * seq + t + 1) * input];
            // Pre-activations for all gates: z = W·x + U·h + b.
            let mut z = vec![0.0f32; gates * hidden];
            for (g, zg) in z.iter_mut().enumerate() {
                let mut acc = bias.data()[g];
                for (i, &xv) in xt.iter().enumerate() {
                    acc += w.data()[g * input + i] * xv;
                }
                for (j, &hv) in h.iter().enumerate() {
                    acc += u.data()[g * hidden + j] * hv;
                }
                *zg = acc;
            }
            match kind {
                RnnKind::Lstm => {
                    // Gate order: input, forget, cell candidate, output.
                    for j in 0..hidden {
                        let ig = sigmoid(z[j]);
                        let fg = sigmoid(z[hidden + j]);
                        let gg = z[2 * hidden + j].tanh();
                        let og = sigmoid(z[3 * hidden + j]);
                        c[j] = fg * c[j] + ig * gg;
                        h[j] = og * c[j].tanh();
                    }
                }
                RnnKind::Gru => {
                    // Gate order: update, reset, candidate. The candidate
                    // uses the reset-scaled recurrent term; our stacked
                    // formulation applies the reset gate post-hoc, a common
                    // simplification adequate for smoke-testing.
                    for j in 0..hidden {
                        let zg = sigmoid(z[j]);
                        let rg = sigmoid(z[hidden + j]);
                        let ng = (z[2 * hidden + j] * rg).tanh();
                        h[j] = (1.0 - zg) * ng + zg * h[j];
                    }
                }
            }
            out.data_mut()[(b * seq + t) * hidden..(b * seq + t + 1) * hidden].copy_from_slice(&h);
        }
    }
    Ok(out)
}

/// For two-input attention ops: pick the argument produced by `first_kind`
/// as the first result.
fn pick_by_kind<'a>(
    graph: &ModelGraph,
    preds: &[OpId],
    args: &[&'a Tensor],
    first_kind: OpKind,
    second_kind: OpKind,
    id: OpId,
) -> Result<(&'a Tensor, &'a Tensor), ModelError> {
    let mut first = None;
    let mut second = None;
    for (p, a) in preds.iter().zip(args) {
        let k = graph.op(*p).map(|o| o.kind());
        if k == Some(first_kind) {
            first = Some(*a);
        } else if k == Some(second_kind) {
            second = Some(*a);
        }
    }
    match (first, second) {
        (Some(f), Some(s)) => Ok((f, s)),
        _ => Err(ModelError::ShapeMismatch {
            op: id,
            detail: format!("expected {first_kind} and {second_kind} producers"),
        }),
    }
}

fn pick_attend_inputs<'a>(
    graph: &ModelGraph,
    preds: &[OpId],
    args: &[&'a Tensor],
    id: OpId,
) -> Result<(&'a Tensor, &'a Tensor), ModelError> {
    let mut probs = None;
    let mut value = None;
    for (p, a) in preds.iter().zip(args) {
        match graph.op(*p).map(|o| o.kind()) {
            Some(OpKind::Value) => value = Some(*a),
            Some(OpKind::Softmax) | Some(OpKind::Logit) => probs = Some(*a),
            _ => {}
        }
    }
    match (probs, value) {
        (Some(p), Some(v)) => Ok((p, v)),
        _ => Err(ModelError::ShapeMismatch {
            op: id,
            detail: "attend expects a probs producer and a Value producer".into(),
        }),
    }
}

#[allow(clippy::too_many_arguments)]
fn conv2d(
    id: OpId,
    x: &Tensor,
    weights: &crate::weights::Weights,
    in_channels: usize,
    out_channels: usize,
    kernel: (usize, usize),
    stride: (usize, usize),
    padding: Padding,
    groups: usize,
    bias: bool,
) -> Result<Tensor, ModelError> {
    let d = x.shape().dims();
    if d.len() != 4 || d[1] != in_channels {
        return Err(ModelError::ShapeMismatch {
            op: id,
            detail: format!("conv2d expects [N,{in_channels},H,W], got {}", x.shape()),
        });
    }
    let (n, h, w) = (d[0], d[2], d[3]);
    let (kh, kw) = kernel;
    let (sh, sw) = stride;
    let (ph, pw) = match padding {
        Padding::Valid => (0usize, 0usize),
        Padding::Same => ((kh.saturating_sub(1)) / 2, (kw.saturating_sub(1)) / 2),
    };
    if kh > h + 2 * ph || kw > w + 2 * pw {
        return Err(ModelError::ShapeMismatch {
            op: id,
            detail: format!("kernel {kh}x{kw} larger than padded input {h}x{w}"),
        });
    }
    let (oh, ow) = match padding {
        Padding::Valid => ((h - kh) / sh + 1, (w - kw) / sw + 1),
        Padding::Same => (h.div_ceil(sh), w.div_ceil(sw)),
    };
    let kernel_t = weights.tensors[0].materialize();
    let bias_t = if bias {
        Some(weights.tensors[1].materialize())
    } else {
        None
    };
    let cin_per_group = in_channels / groups.max(1);
    let cout_per_group = out_channels / groups.max(1);
    let mut out = Tensor::zeros([n, out_channels, oh, ow]);
    for b in 0..n {
        for oc in 0..out_channels {
            let g = oc / cout_per_group.max(1);
            for oy in 0..oh {
                for ox in 0..ow {
                    let mut acc = bias_t.as_ref().map_or(0.0, |t| t.data()[oc]);
                    for ic in 0..cin_per_group {
                        for ky in 0..kh {
                            for kx in 0..kw {
                                let iy = (oy * sh + ky) as isize - ph as isize;
                                let ix = (ox * sw + kx) as isize - pw as isize;
                                if iy < 0 || ix < 0 || iy >= h as isize || ix >= w as isize {
                                    continue;
                                }
                                let xin =
                                    x.at4(b, g * cin_per_group + ic, iy as usize, ix as usize);
                                let kv = kernel_t.at4(oc, ic, ky, kx);
                                acc += xin * kv;
                            }
                        }
                    }
                    *out.at4_mut(b, oc, oy, ox) = acc;
                }
            }
        }
    }
    Ok(out)
}

fn dense(
    id: OpId,
    x: &Tensor,
    weights: &crate::weights::Weights,
    in_features: usize,
    out_features: usize,
    bias: bool,
) -> Result<Tensor, ModelError> {
    // Dense applies over the last axis: [.., in] -> [.., out]. Transformer
    // feed-forward layers feed [B, S, H] tensors through the same op kind.
    let d = x.shape().dims();
    if d.is_empty() || *d.last().expect("non-empty") != in_features {
        return Err(ModelError::ShapeMismatch {
            op: id,
            detail: format!("dense expects [.., {in_features}], got {}", x.shape()),
        });
    }
    let n: usize = d[..d.len() - 1].iter().product();
    let wt = weights.tensors[0].materialize();
    let bt = if bias {
        Some(weights.tensors[1].materialize())
    } else {
        None
    };
    let mut out_shape = d.to_vec();
    *out_shape.last_mut().expect("non-empty") = out_features;
    let mut out = Tensor::zeros(out_shape);
    for b in 0..n {
        for o in 0..out_features {
            let mut acc = bt.as_ref().map_or(0.0, |t| t.data()[o]);
            for i in 0..in_features {
                acc += x.data()[b * in_features + i] * wt.data()[o * in_features + i];
            }
            out.data_mut()[b * out_features + o] = acc;
        }
    }
    Ok(out)
}

/// Affine map over the last axis of a `[B, S, H]` tensor (Q/K/V/O
/// projections).
fn dense_last_axis(
    id: OpId,
    x: &Tensor,
    weights: &crate::weights::Weights,
    hidden: usize,
) -> Result<Tensor, ModelError> {
    let d = x.shape().dims();
    if d.last() != Some(&hidden) {
        return Err(ModelError::ShapeMismatch {
            op: id,
            detail: format!("projection expects last dim {hidden}, got {}", x.shape()),
        });
    }
    let rows: usize = d[..d.len() - 1].iter().product();
    let wt = weights.tensors[0].materialize();
    let bt = weights.tensors[1].materialize();
    let mut out = Tensor::zeros(d.to_vec());
    for r in 0..rows {
        for o in 0..hidden {
            let mut acc = bt.data()[o];
            for i in 0..hidden {
                acc += x.data()[r * hidden + i] * wt.data()[o * hidden + i];
            }
            out.data_mut()[r * hidden + o] = acc;
        }
    }
    Ok(out)
}

fn batchnorm(
    id: OpId,
    x: &Tensor,
    weights: &crate::weights::Weights,
    features: usize,
) -> Result<Tensor, ModelError> {
    let d = x.shape().dims();
    if d.len() != 4 || d[1] != features {
        return Err(ModelError::ShapeMismatch {
            op: id,
            detail: format!("batchnorm expects [N,{features},H,W], got {}", x.shape()),
        });
    }
    let gamma = weights.tensors[0].materialize();
    let beta = weights.tensors[1].materialize();
    let mean = weights.tensors[2].materialize();
    let var = weights.tensors[3].materialize();
    let mut out = x.clone();
    let (n, h, w) = (d[0], d[2], d[3]);
    for b in 0..n {
        for c in 0..features {
            // Running variance is stored as an arbitrary seeded tensor;
            // take |v| + eps to keep the denominator positive.
            let denom = (var.data()[c].abs() + 1e-3).sqrt();
            for y in 0..h {
                for xw in 0..w {
                    let v = x.at4(b, c, y, xw);
                    *out.at4_mut(b, c, y, xw) =
                        gamma.data()[c] * (v - mean.data()[c]) / denom + beta.data()[c];
                }
            }
        }
    }
    Ok(out)
}

fn layernorm(
    id: OpId,
    x: &Tensor,
    weights: &crate::weights::Weights,
    features: usize,
) -> Result<Tensor, ModelError> {
    let d = x.shape().dims();
    if d.last() != Some(&features) {
        return Err(ModelError::ShapeMismatch {
            op: id,
            detail: format!("layernorm expects last dim {features}, got {}", x.shape()),
        });
    }
    let gamma = weights.tensors[0].materialize();
    let beta = weights.tensors[1].materialize();
    let rows: usize = d[..d.len() - 1].iter().product();
    let mut out = x.clone();
    for r in 0..rows {
        let row = &x.data()[r * features..(r + 1) * features];
        let mean: f32 = row.iter().sum::<f32>() / features as f32;
        let var: f32 = row.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / features as f32;
        let denom = (var + 1e-5).sqrt();
        for (i, &v) in row.iter().enumerate() {
            out.data_mut()[r * features + i] =
                gamma.data()[i] * (v - mean) / denom + beta.data()[i];
        }
    }
    Ok(out)
}

fn activation(x: &Tensor, kind: Activation) -> Tensor {
    let mut out = x.clone();
    match kind {
        Activation::Relu => out.data_mut().iter_mut().for_each(|v| *v = v.max(0.0)),
        Activation::Relu6 => out
            .data_mut()
            .iter_mut()
            .for_each(|v| *v = v.clamp(0.0, 6.0)),
        Activation::Sigmoid => out
            .data_mut()
            .iter_mut()
            .for_each(|v| *v = 1.0 / (1.0 + (-*v).exp())),
        Activation::Tanh => out.data_mut().iter_mut().for_each(|v| *v = v.tanh()),
        Activation::Gelu => out.data_mut().iter_mut().for_each(|v| {
            let x = *v;
            *v = 0.5 * x * (1.0 + (0.797_884_6 * (x + 0.044_715 * x * x * x)).tanh());
        }),
        Activation::Swish => out
            .data_mut()
            .iter_mut()
            .for_each(|v| *v = *v / (1.0 + (-*v).exp())),
        Activation::Softmax => return softmax_last_axis(x),
    }
    out
}

fn softmax_last_axis(x: &Tensor) -> Tensor {
    let d = x.shape().dims();
    let last = *d.last().unwrap_or(&1);
    let rows: usize = d[..d.len().saturating_sub(1)].iter().product();
    let mut out = x.clone();
    for r in 0..rows {
        let row = &mut out.data_mut()[r * last..(r + 1) * last];
        let m = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let mut sum = 0.0;
        for v in row.iter_mut() {
            *v = (*v - m).exp();
            sum += *v;
        }
        for v in row.iter_mut() {
            *v /= sum;
        }
    }
    out
}

fn pool2d(
    id: OpId,
    x: &Tensor,
    kind: PoolKind,
    size: (usize, usize),
    stride: (usize, usize),
    padding: Padding,
) -> Result<Tensor, ModelError> {
    let d = x.shape().dims();
    if d.len() != 4 {
        return Err(ModelError::ShapeMismatch {
            op: id,
            detail: format!("pool2d expects 4-D input, got {}", x.shape()),
        });
    }
    let (n, c, h, w) = (d[0], d[1], d[2], d[3]);
    let (kh, kw) = size;
    let (sh, sw) = stride;
    let (oh, ow) = match padding {
        Padding::Valid => {
            if kh > h || kw > w {
                return Err(ModelError::ShapeMismatch {
                    op: id,
                    detail: format!("pool window {kh}x{kw} larger than input {h}x{w}"),
                });
            }
            ((h - kh) / sh + 1, (w - kw) / sw + 1)
        }
        Padding::Same => (h.div_ceil(sh), w.div_ceil(sw)),
    };
    let (ph, pw) = match padding {
        Padding::Valid => (0usize, 0usize),
        Padding::Same => ((kh - 1) / 2, (kw - 1) / 2),
    };
    let mut out = Tensor::zeros([n, c, oh, ow]);
    for b in 0..n {
        for ch in 0..c {
            for oy in 0..oh {
                for ox in 0..ow {
                    let mut acc = match kind {
                        PoolKind::Max => f32::NEG_INFINITY,
                        PoolKind::Avg => 0.0,
                    };
                    let mut count = 0usize;
                    for ky in 0..kh {
                        for kx in 0..kw {
                            let iy = (oy * sh + ky) as isize - ph as isize;
                            let ix = (ox * sw + kx) as isize - pw as isize;
                            if iy < 0 || ix < 0 || iy >= h as isize || ix >= w as isize {
                                continue;
                            }
                            let v = x.at4(b, ch, iy as usize, ix as usize);
                            match kind {
                                PoolKind::Max => acc = acc.max(v),
                                PoolKind::Avg => acc += v,
                            }
                            count += 1;
                        }
                    }
                    *out.at4_mut(b, ch, oy, ox) = match kind {
                        PoolKind::Max => acc,
                        PoolKind::Avg => acc / count.max(1) as f32,
                    };
                }
            }
        }
    }
    Ok(out)
}

fn global_pool(id: OpId, x: &Tensor, kind: PoolKind) -> Result<Tensor, ModelError> {
    let d = x.shape().dims();
    if d.len() != 4 {
        return Err(ModelError::ShapeMismatch {
            op: id,
            detail: format!("global pool expects 4-D input, got {}", x.shape()),
        });
    }
    let (n, c, h, w) = (d[0], d[1], d[2], d[3]);
    let mut out = Tensor::zeros([n, c, 1, 1]);
    for b in 0..n {
        for ch in 0..c {
            let mut acc = match kind {
                PoolKind::Max => f32::NEG_INFINITY,
                PoolKind::Avg => 0.0,
            };
            for y in 0..h {
                for xw in 0..w {
                    let v = x.at4(b, ch, y, xw);
                    match kind {
                        PoolKind::Max => acc = acc.max(v),
                        PoolKind::Avg => acc += v,
                    }
                }
            }
            *out.at4_mut(b, ch, 0, 0) = match kind {
                PoolKind::Max => acc,
                PoolKind::Avg => acc / (h * w) as f32,
            };
        }
    }
    Ok(out)
}

fn concat(id: OpId, args: &[&Tensor]) -> Result<Tensor, ModelError> {
    if args.is_empty() {
        return Err(ModelError::ArityMismatch {
            op: id,
            expected: 2,
            actual: 0,
        });
    }
    let d0 = args[0].shape().dims().to_vec();
    if d0.len() != 4 {
        return Err(ModelError::ShapeMismatch {
            op: id,
            detail: "concat expects 4-D inputs".into(),
        });
    }
    let (n, h, w) = (d0[0], d0[2], d0[3]);
    let mut total_c = 0;
    for t in args {
        let d = t.shape().dims();
        if d.len() != 4 || d[0] != n || d[2] != h || d[3] != w {
            return Err(ModelError::ShapeMismatch {
                op: id,
                detail: format!(
                    "concat inputs disagree: {} vs {}",
                    args[0].shape(),
                    t.shape()
                ),
            });
        }
        total_c += d[1];
    }
    let mut out = Tensor::zeros([n, total_c, h, w]);
    for b in 0..n {
        let mut c_off = 0;
        for t in args {
            let c = t.shape().dims()[1];
            for ch in 0..c {
                for y in 0..h {
                    for xw in 0..w {
                        *out.at4_mut(b, c_off + ch, y, xw) = t.at4(b, ch, y, xw);
                    }
                }
            }
            c_off += c;
        }
    }
    Ok(out)
}

fn zeropad(id: OpId, x: &Tensor, pad: (usize, usize)) -> Result<Tensor, ModelError> {
    let d = x.shape().dims();
    if d.len() != 4 {
        return Err(ModelError::ShapeMismatch {
            op: id,
            detail: "zeropad expects 4-D input".into(),
        });
    }
    let (n, c, h, w) = (d[0], d[1], d[2], d[3]);
    let (ph, pw) = pad;
    let mut out = Tensor::zeros([n, c, h + 2 * ph, w + 2 * pw]);
    for b in 0..n {
        for ch in 0..c {
            for y in 0..h {
                for xw in 0..w {
                    *out.at4_mut(b, ch, y + ph, xw + pw) = x.at4(b, ch, y, xw);
                }
            }
        }
    }
    Ok(out)
}

fn embedding(
    id: OpId,
    ids: &Tensor,
    weights: &crate::weights::Weights,
    vocab: usize,
    hidden: usize,
) -> Result<Tensor, ModelError> {
    let d = ids.shape().dims();
    if d.len() != 2 {
        return Err(ModelError::ShapeMismatch {
            op: id,
            detail: format!("embedding expects [B,S] token ids, got {}", ids.shape()),
        });
    }
    let (b, s) = (d[0], d[1]);
    let table = weights.tensors[0].materialize();
    let mut out = Tensor::zeros([b, s, hidden]);
    for bi in 0..b {
        for si in 0..s {
            let tok = ids.data()[bi * s + si] as usize % vocab.max(1);
            let src = &table.data()[tok * hidden..(tok + 1) * hidden];
            out.data_mut()[(bi * s + si) * hidden..(bi * s + si + 1) * hidden].copy_from_slice(src);
        }
    }
    Ok(out)
}

fn pos_embedding(
    id: OpId,
    x: &Tensor,
    weights: &crate::weights::Weights,
    max_len: usize,
    hidden: usize,
) -> Result<Tensor, ModelError> {
    let d = x.shape().dims();
    if d.len() != 3 || d[2] != hidden {
        return Err(ModelError::ShapeMismatch {
            op: id,
            detail: format!("pos embedding expects [B,S,{hidden}], got {}", x.shape()),
        });
    }
    let (b, s) = (d[0], d[1]);
    if s > max_len {
        return Err(ModelError::ShapeMismatch {
            op: id,
            detail: format!("sequence length {s} exceeds max_len {max_len}"),
        });
    }
    let table = weights.tensors[0].materialize();
    let mut out = x.clone();
    for bi in 0..b {
        for si in 0..s {
            for hix in 0..hidden {
                out.data_mut()[(bi * s + si) * hidden + hix] += table.data()[si * hidden + hix];
            }
        }
    }
    Ok(out)
}

fn logit(id: OpId, q: &Tensor, k: &Tensor, heads: usize) -> Result<Tensor, ModelError> {
    let d = q.shape().dims();
    if d.len() != 3 || k.shape().dims() != d {
        return Err(ModelError::ShapeMismatch {
            op: id,
            detail: format!(
                "logit expects matching [B,S,H]: {} vs {}",
                q.shape(),
                k.shape()
            ),
        });
    }
    let (b, s, hdn) = (d[0], d[1], d[2]);
    if heads == 0 || hdn % heads != 0 {
        return Err(ModelError::ShapeMismatch {
            op: id,
            detail: format!("hidden {hdn} not divisible by {heads} heads"),
        });
    }
    let dk = hdn / heads;
    let scale = 1.0 / (dk as f32).sqrt();
    let mut out = Tensor::zeros([b, heads, s, s]);
    for bi in 0..b {
        for hd in 0..heads {
            for i in 0..s {
                for j in 0..s {
                    let mut acc = 0.0;
                    for t in 0..dk {
                        let qi = q.data()[(bi * s + i) * hdn + hd * dk + t];
                        let kj = k.data()[(bi * s + j) * hdn + hd * dk + t];
                        acc += qi * kj;
                    }
                    out.data_mut()[((bi * heads + hd) * s + i) * s + j] = acc * scale;
                }
            }
        }
    }
    Ok(out)
}

fn attend(id: OpId, probs: &Tensor, v: &Tensor, heads: usize) -> Result<Tensor, ModelError> {
    let dp = probs.shape().dims();
    let dv = v.shape().dims();
    if dp.len() != 4 || dv.len() != 3 || dp[1] != heads {
        return Err(ModelError::ShapeMismatch {
            op: id,
            detail: format!(
                "attend expects probs [B,heads,S,S] and value [B,S,H]: {} / {}",
                probs.shape(),
                v.shape()
            ),
        });
    }
    let (b, s, hdn) = (dv[0], dv[1], dv[2]);
    if hdn % heads != 0 || dp[0] != b || dp[2] != s || dp[3] != s {
        return Err(ModelError::ShapeMismatch {
            op: id,
            detail: "attend dimension mismatch".into(),
        });
    }
    let dk = hdn / heads;
    let mut out = Tensor::zeros([b, s, hdn]);
    for bi in 0..b {
        for hd in 0..heads {
            for i in 0..s {
                for t in 0..dk {
                    let mut acc = 0.0;
                    for j in 0..s {
                        let p = probs.data()[((bi * heads + hd) * s + i) * s + j];
                        let vv = v.data()[(bi * s + j) * hdn + hd * dk + t];
                        acc += p * vv;
                    }
                    out.data_mut()[(bi * s + i) * hdn + hd * dk + t] = acc;
                }
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;
    use crate::weights::{WeightSpec, Weights};
    use crate::ModelFamily;

    #[test]
    fn identity_conv_passes_through() {
        // 1x1 conv with identity kernel and zero bias.
        let mut b = GraphBuilder::new("id");
        let i = b.input([1, 1, 2, 2]);
        let c = b.conv2d_after(i, 1, 1, (1, 1), (1, 1), 1);
        let mut g = b.finish_unchecked();
        g.op_mut(c).unwrap().weights = Some(Weights::new(vec![
            WeightSpec::dense([1, 1, 1, 1], vec![1.0]),
            WeightSpec::zeros([1]),
        ]));
        g.validate().unwrap();
        let x = Tensor::new([1, 1, 2, 2], vec![1.0, 2.0, 3.0, 4.0]);
        let y = run(&g, x.clone()).unwrap();
        assert_eq!(y.data(), x.data());
    }

    #[test]
    fn conv_same_padding_preserves_spatial_dims() {
        let mut b = GraphBuilder::new("same");
        let i = b.input([1, 3, 8, 8]);
        let _ = b.conv2d_after(i, 3, 4, (3, 3), (1, 1), 1);
        let g = b.finish().unwrap();
        let y = run(&g, Tensor::zeros([1, 3, 8, 8])).unwrap();
        assert_eq!(y.shape().dims(), &[1, 4, 8, 8]);
    }

    #[test]
    fn conv_stride_halves_dims() {
        let mut b = GraphBuilder::new("stride");
        let i = b.input([1, 3, 8, 8]);
        let _ = b.conv2d_after(i, 3, 4, (3, 3), (2, 2), 1);
        let g = b.finish().unwrap();
        let y = run(&g, Tensor::zeros([1, 3, 8, 8])).unwrap();
        assert_eq!(y.shape().dims(), &[1, 4, 4, 4]);
    }

    #[test]
    fn relu_clamps_negatives() {
        let mut b = GraphBuilder::new("relu");
        let i = b.input([1, 4]);
        // Build a graph that is just input -> activation via generic op API.
        let a = b.after(
            i,
            "relu",
            OpAttrs::Activation {
                kind: Activation::Relu,
            },
        );
        let _ = a;
        let g = b.finish().unwrap();
        let y = run(&g, Tensor::new([1, 4], vec![-1.0, 0.5, -0.2, 2.0])).unwrap();
        assert_eq!(y.data(), &[0.0, 0.5, 0.0, 2.0]);
    }

    #[test]
    fn softmax_rows_sum_to_one() {
        let t = softmax_last_axis(&Tensor::new([2, 3], vec![1.0, 2.0, 3.0, 0.0, 0.0, 0.0]));
        let s1: f32 = t.data()[..3].iter().sum();
        let s2: f32 = t.data()[3..].iter().sum();
        assert!((s1 - 1.0).abs() < 1e-5);
        assert!((s2 - 1.0).abs() < 1e-5);
        assert!(t.data()[2] > t.data()[1] && t.data()[1] > t.data()[0]);
    }

    #[test]
    fn residual_add_runs() {
        let mut b = GraphBuilder::new("res");
        let i = b.input([1, 2, 4, 4]);
        let c = b.conv2d_after(i, 2, 2, (3, 3), (1, 1), 1);
        let s = b.add_of(&[i, c]);
        let _ = b.activation_after(s, Activation::Relu);
        let g = b.finish().unwrap();
        let y = run(&g, Tensor::zeros([1, 2, 4, 4])).unwrap();
        assert_eq!(y.shape().dims(), &[1, 2, 4, 4]);
        assert!(y.data().iter().all(|v| v.is_finite()));
    }

    #[test]
    fn max_pool_picks_max() {
        let mut b = GraphBuilder::new("pool");
        let i = b.input([1, 1, 2, 2]);
        let _ = b.pool_after(i, PoolKind::Max, (2, 2), (2, 2));
        let g = b.finish().unwrap();
        let y = run(&g, Tensor::new([1, 1, 2, 2], vec![1.0, 5.0, 3.0, 2.0])).unwrap();
        assert_eq!(y.data(), &[5.0]);
    }

    #[test]
    fn global_avg_pool_averages() {
        let mut b = GraphBuilder::new("gap");
        let i = b.input([1, 1, 2, 2]);
        let _ = b.global_avg_pool_after(i);
        let g = b.finish().unwrap();
        let y = run(&g, Tensor::new([1, 1, 2, 2], vec![1.0, 2.0, 3.0, 6.0])).unwrap();
        assert_eq!(y.data(), &[3.0]);
    }

    #[test]
    fn flatten_then_dense_classifier() {
        let mut b = GraphBuilder::new("clf");
        let i = b.input([1, 2, 2, 2]);
        let f = b.flatten_after(i);
        let _ = b.dense_after(f, 8, 3);
        let g = b.finish().unwrap();
        let y = run(&g, Tensor::zeros([1, 2, 2, 2])).unwrap();
        assert_eq!(y.shape().dims(), &[1, 3]);
    }

    #[test]
    fn tiny_attention_block_runs() {
        // embedding -> (Q,K,V) -> logit -> softmax -> attend -> output proj
        let mut b = GraphBuilder::new("attn").family(ModelFamily::Bert);
        let i = b.input([1, 4]);
        let emb = b.after(
            i,
            "emb",
            OpAttrs::Embedding {
                vocab: 16,
                hidden: 8,
            },
        );
        let q = b.after(
            emb,
            "q",
            OpAttrs::Query {
                hidden: 8,
                heads: 2,
            },
        );
        let k = b.after(
            emb,
            "k",
            OpAttrs::Key {
                hidden: 8,
                heads: 2,
            },
        );
        let v = b.after(
            emb,
            "v",
            OpAttrs::Value {
                hidden: 8,
                heads: 2,
            },
        );
        let l = b.merge(&[q, k], "logit", OpAttrs::Logit { heads: 2 });
        let sm = b.after(l, "softmax", OpAttrs::Softmax);
        let at = b.merge(&[sm, v], "attend", OpAttrs::Attend { heads: 2 });
        let _ = b.after(at, "out", OpAttrs::AttnOutput { hidden: 8 });
        let g = b.finish().unwrap();
        let ids = Tensor::new([1, 4], vec![1.0, 2.0, 3.0, 4.0]);
        let y = run(&g, ids).unwrap();
        assert_eq!(y.shape().dims(), &[1, 4, 8]);
        assert!(y.data().iter().all(|v| v.is_finite()));
    }

    #[test]
    fn shape_mismatch_is_reported() {
        let mut b = GraphBuilder::new("bad");
        let i = b.input([1, 3, 8, 8]);
        let _ = b.conv2d_after(i, 4, 4, (3, 3), (1, 1), 1); // expects 4 in-channels
        let g = b.finish().unwrap();
        let err = run(&g, Tensor::zeros([1, 3, 8, 8])).unwrap_err();
        assert!(matches!(err, ModelError::ShapeMismatch { .. }));
    }

    #[test]
    fn concat_stacks_channels() {
        let mut b = GraphBuilder::new("cat");
        let i = b.input([1, 2, 4, 4]);
        let c1 = b.conv2d_after(i, 2, 3, (1, 1), (1, 1), 1);
        let c2 = b.conv2d_after(i, 2, 5, (1, 1), (1, 1), 1);
        let _ = b.concat_of(&[c1, c2]);
        let g = b.finish().unwrap();
        let y = run(&g, Tensor::zeros([1, 2, 4, 4])).unwrap();
        assert_eq!(y.shape().dims(), &[1, 8, 4, 4]);
    }

    #[test]
    fn depthwise_conv_runs() {
        let mut b = GraphBuilder::new("dw");
        let i = b.input([1, 4, 6, 6]);
        let _ = b.conv2d_after(i, 4, 4, (3, 3), (1, 1), 4);
        let g = b.finish().unwrap();
        let y = run(&g, Tensor::zeros([1, 4, 6, 6])).unwrap();
        assert_eq!(y.shape().dims(), &[1, 4, 6, 6]);
    }

    #[test]
    fn batchnorm_and_layernorm_finite() {
        let mut b = GraphBuilder::new("norm");
        let i = b.input([1, 3, 4, 4]);
        let c = b.conv2d_after(i, 3, 3, (3, 3), (1, 1), 1);
        let _ = b.batchnorm_after(c, 3);
        let g = b.finish().unwrap();
        let y = run(
            &g,
            Tensor::new([1, 3, 4, 4], (0..48).map(|v| v as f32).collect()),
        )
        .unwrap();
        assert!(y.data().iter().all(|v| v.is_finite()));
    }
}

#[cfg(test)]
mod rnn_tests {
    use super::*;
    use crate::builder::GraphBuilder;
    use crate::op::OpAttrs;

    fn rnn_model(kind: &str) -> crate::ModelGraph {
        let mut b = GraphBuilder::new(format!("rnn-{kind}"));
        let i = b.input([1, 6]);
        let emb = b.after(
            i,
            "emb",
            OpAttrs::Embedding {
                vocab: 32,
                hidden: 8,
            },
        );
        let attrs = if kind == "lstm" {
            OpAttrs::Lstm {
                input: 8,
                hidden: 12,
            }
        } else {
            OpAttrs::Gru {
                input: 8,
                hidden: 12,
            }
        };
        let r = b.after(emb, kind, attrs);
        let _ = b.after(
            r,
            "clf",
            OpAttrs::Dense {
                in_features: 12,
                out_features: 3,
                bias: true,
            },
        );
        b.finish().unwrap()
    }

    #[test]
    fn lstm_and_gru_forward_finite() {
        for kind in ["lstm", "gru"] {
            let g = rnn_model(kind);
            let ids = Tensor::new([1, 6], vec![1.0, 5.0, 2.0, 8.0, 0.0, 3.0]);
            let y = run(&g, ids).unwrap();
            assert_eq!(y.shape().dims(), &[1, 6, 3], "{kind}");
            assert!(y.data().iter().all(|v| v.is_finite()), "{kind}");
        }
    }

    #[test]
    fn lstm_output_depends_on_sequence_order() {
        let g = rnn_model("lstm");
        let a = run(&g, Tensor::new([1, 6], vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0])).unwrap();
        let b = run(&g, Tensor::new([1, 6], vec![6.0, 5.0, 4.0, 3.0, 2.0, 1.0])).unwrap();
        assert!(
            a.max_abs_diff(&b) > 1e-6,
            "recurrence must be order-sensitive"
        );
    }

    #[test]
    fn rnn_weight_shapes_are_gate_stacked() {
        let lstm = OpAttrs::Lstm {
            input: 8,
            hidden: 12,
        };
        let shapes = lstm.weight_shapes();
        assert_eq!(shapes[0].dims(), &[48, 8]);
        assert_eq!(shapes[1].dims(), &[48, 12]);
        assert_eq!(shapes[2].dims(), &[48]);
        let gru = OpAttrs::Gru {
            input: 8,
            hidden: 12,
        };
        assert_eq!(gru.weight_shapes()[0].dims(), &[36, 8]);
        assert!(OpKind::Lstm.has_weights() && OpKind::Gru.has_weights());
    }
}
