//! Fluent builder for constructing model graphs.
//!
//! The zoo crates build hundreds of architectures; this builder keeps that
//! code terse while guaranteeing well-formed graphs. Seeds for weight
//! initialisation are derived deterministically from the model name and a
//! per-op counter so the same builder program always yields the same model.

use crate::error::ModelError;
use crate::graph::{ModelGraph, OpId};
use crate::op::{Activation, OpAttrs, Operation, Padding, PoolKind};
use crate::shape::TensorShape;
use crate::ModelFamily;

/// Fluent graph builder.
///
/// ```
/// use optimus_model::{GraphBuilder, Activation};
/// let mut b = GraphBuilder::new("demo");
/// let x = b.input([1, 3, 32, 32]);
/// let x = b.conv2d_after(x, 3, 16, (3, 3), (1, 1), 1);
/// let x = b.batchnorm_after(x, 16);
/// let x = b.activation_after(x, Activation::Relu);
/// let x = b.global_avg_pool_after(x);
/// let x = b.flatten_after(x);
/// let _ = b.dense_after(x, 16, 10);
/// let model = b.finish().unwrap();
/// assert_eq!(model.op_count(), 7);
/// ```
pub struct GraphBuilder {
    graph: ModelGraph,
    seed_base: u64,
    op_counter: u64,
    /// Optional weight-variant salt so two models can share structure but
    /// differ in weights (Figure 11's diagonal case).
    weight_variant: u64,
}

impl GraphBuilder {
    /// Start building a model with the given name (family defaults to
    /// [`ModelFamily::Custom`]; set it with [`GraphBuilder::family`]).
    pub fn new(name: impl Into<String>) -> Self {
        let name = name.into();
        let seed_base = fnv1a(name.as_bytes());
        GraphBuilder {
            graph: ModelGraph::new(name, ModelFamily::Custom),
            seed_base,
            op_counter: 0,
            weight_variant: 0,
        }
    }

    /// Set the family tag.
    pub fn family(mut self, family: ModelFamily) -> Self {
        self.graph.set_family(family);
        self
    }

    /// Set a weight-variant salt: same structure, different weights.
    pub fn weight_variant(mut self, variant: u64) -> Self {
        self.weight_variant = variant;
        self
    }

    /// Derive the weight seed stream from `group` instead of the model
    /// name. Models built in the same group (with the same variant salt)
    /// produce identical tensor content op-for-op wherever their shapes
    /// agree — the weight sharing between size/context siblings that
    /// inter-model transformation exploits. By default the group is the
    /// model name, i.e. no cross-model sharing.
    pub fn seed_group(mut self, group: impl AsRef<[u8]>) -> Self {
        self.seed_base = fnv1a(group.as_ref());
        self
    }

    fn next_seed(&mut self) -> u64 {
        self.op_counter += 1;
        self.seed_base
            .wrapping_mul(0x100_0000_01B3)
            .wrapping_add(self.op_counter)
            .wrapping_add(self.weight_variant.wrapping_mul(0x9E37_79B9))
    }

    fn auto_name(&self, prefix: &str) -> String {
        format!("{prefix}_{}", self.op_counter)
    }

    /// Add a free-standing op (no edges) with seeded weights.
    pub fn op(&mut self, name: impl Into<String>, attrs: OpAttrs) -> OpId {
        let seed = self.next_seed();
        self.graph
            .add_op(Operation::with_seeded_weights(name, attrs, seed))
    }

    /// Add an op and connect it after `prev`.
    ///
    /// # Panics
    ///
    /// Panics if `prev` is not a valid id from this builder (programming
    /// error in architecture code).
    pub fn after(&mut self, prev: OpId, name: impl Into<String>, attrs: OpAttrs) -> OpId {
        let id = self.op(name, attrs);
        self.graph
            .add_edge(prev, id)
            .expect("builder ids are always valid");
        id
    }

    /// Add an op consuming several predecessors (merge points).
    ///
    /// # Panics
    ///
    /// Panics on invalid predecessor ids.
    pub fn merge(&mut self, prevs: &[OpId], name: impl Into<String>, attrs: OpAttrs) -> OpId {
        let id = self.op(name, attrs);
        for &p in prevs {
            self.graph
                .add_edge(p, id)
                .expect("builder ids are always valid");
        }
        id
    }

    /// Add an `Input` op.
    pub fn input(&mut self, shape: impl Into<TensorShape>) -> OpId {
        self.op_counter += 1;
        let name = self.auto_name("input");
        self.graph.add_op(Operation::weightless(
            name,
            OpAttrs::Input {
                shape: shape.into(),
            },
        ))
    }

    /// Conv2d with `Same` padding and bias, after `prev`.
    pub fn conv2d_after(
        &mut self,
        prev: OpId,
        in_channels: usize,
        out_channels: usize,
        kernel: (usize, usize),
        stride: (usize, usize),
        groups: usize,
    ) -> OpId {
        let seed = self.next_seed();
        let name = self.auto_name("conv");
        let id = self.graph.add_op(Operation::with_seeded_weights(
            name,
            OpAttrs::Conv2d {
                in_channels,
                out_channels,
                kernel,
                stride,
                padding: Padding::Same,
                groups,
                bias: true,
            },
            seed,
        ));
        self.graph
            .add_edge(prev, id)
            .expect("builder ids are always valid");
        id
    }

    /// Dense layer after `prev`.
    pub fn dense_after(&mut self, prev: OpId, in_features: usize, out_features: usize) -> OpId {
        let seed = self.next_seed();
        let name = self.auto_name("dense");
        let id = self.graph.add_op(Operation::with_seeded_weights(
            name,
            OpAttrs::Dense {
                in_features,
                out_features,
                bias: true,
            },
            seed,
        ));
        self.graph
            .add_edge(prev, id)
            .expect("builder ids are always valid");
        id
    }

    /// Batch-norm after `prev`.
    pub fn batchnorm_after(&mut self, prev: OpId, features: usize) -> OpId {
        let seed = self.next_seed();
        let name = self.auto_name("bn");
        let id = self.graph.add_op(Operation::with_seeded_weights(
            name,
            OpAttrs::BatchNorm { features },
            seed,
        ));
        self.graph
            .add_edge(prev, id)
            .expect("builder ids are always valid");
        id
    }

    /// Layer-norm after `prev`.
    pub fn layernorm_after(&mut self, prev: OpId, features: usize) -> OpId {
        let seed = self.next_seed();
        let name = self.auto_name("ln");
        let id = self.graph.add_op(Operation::with_seeded_weights(
            name,
            OpAttrs::LayerNorm { features },
            seed,
        ));
        self.graph
            .add_edge(prev, id)
            .expect("builder ids are always valid");
        id
    }

    /// Activation after `prev`.
    pub fn activation_after(&mut self, prev: OpId, kind: Activation) -> OpId {
        self.op_counter += 1;
        let name = self.auto_name("act");
        let id = self
            .graph
            .add_op(Operation::weightless(name, OpAttrs::Activation { kind }));
        self.graph
            .add_edge(prev, id)
            .expect("builder ids are always valid");
        id
    }

    /// Windowed pooling after `prev` (valid padding).
    pub fn pool_after(
        &mut self,
        prev: OpId,
        kind: PoolKind,
        size: (usize, usize),
        stride: (usize, usize),
    ) -> OpId {
        self.op_counter += 1;
        let name = self.auto_name("pool");
        let id = self.graph.add_op(Operation::weightless(
            name,
            OpAttrs::Pool2d {
                kind,
                size,
                stride,
                padding: Padding::Valid,
            },
        ));
        self.graph
            .add_edge(prev, id)
            .expect("builder ids are always valid");
        id
    }

    /// Global average pool after `prev`.
    pub fn global_avg_pool_after(&mut self, prev: OpId) -> OpId {
        self.op_counter += 1;
        let name = self.auto_name("gap");
        let id = self.graph.add_op(Operation::weightless(
            name,
            OpAttrs::GlobalPool {
                kind: PoolKind::Avg,
            },
        ));
        self.graph
            .add_edge(prev, id)
            .expect("builder ids are always valid");
        id
    }

    /// Flatten after `prev`.
    pub fn flatten_after(&mut self, prev: OpId) -> OpId {
        self.op_counter += 1;
        let name = self.auto_name("flatten");
        let id = self
            .graph
            .add_op(Operation::weightless(name, OpAttrs::Flatten));
        self.graph
            .add_edge(prev, id)
            .expect("builder ids are always valid");
        id
    }

    /// Element-wise add of several branches.
    pub fn add_of(&mut self, branches: &[OpId]) -> OpId {
        self.op_counter += 1;
        let name = self.auto_name("add");
        self.merge_weightless(branches, name, OpAttrs::Add)
    }

    /// Concat of several branches.
    pub fn concat_of(&mut self, branches: &[OpId]) -> OpId {
        self.op_counter += 1;
        let name = self.auto_name("concat");
        self.merge_weightless(branches, name, OpAttrs::Concat)
    }

    fn merge_weightless(&mut self, prevs: &[OpId], name: String, attrs: OpAttrs) -> OpId {
        let id = self.graph.add_op(Operation::weightless(name, attrs));
        for &p in prevs {
            self.graph
                .add_edge(p, id)
                .expect("builder ids are always valid");
        }
        id
    }

    /// Finish and validate.
    ///
    /// # Errors
    ///
    /// Propagates validation failures ([`ModelGraph::validate`]).
    pub fn finish(self) -> Result<ModelGraph, ModelError> {
        self.graph.validate()?;
        Ok(self.graph)
    }

    /// Finish without validating (tests of invalid graphs).
    pub fn finish_unchecked(self) -> ModelGraph {
        self.graph
    }
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01B3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_is_deterministic() {
        let build = || {
            let mut b = GraphBuilder::new("det");
            let i = b.input([1, 3, 8, 8]);
            let c = b.conv2d_after(i, 3, 4, (3, 3), (1, 1), 1);
            let _ = b.activation_after(c, Activation::Relu);
            b.finish().unwrap()
        };
        let g1 = build();
        let g2 = build();
        assert!(g1.structurally_equal(&g2));
    }

    #[test]
    fn weight_variant_changes_weights_not_structure() {
        let build = |v| {
            let mut b = GraphBuilder::new("var").weight_variant(v);
            let i = b.input([1, 3, 8, 8]);
            let _ = b.conv2d_after(i, 3, 4, (3, 3), (1, 1), 1);
            b.finish().unwrap()
        };
        let g1 = build(0);
        let g2 = build(1);
        assert!(!g1.structurally_equal(&g2));
        // Same attrs, different weight ids.
        let w1: Vec<_> = g1.ops().filter_map(|(_, o)| o.weights.clone()).collect();
        let w2: Vec<_> = g2.ops().filter_map(|(_, o)| o.weights.clone()).collect();
        assert_ne!(w1[0].id(), w2[0].id());
    }

    #[test]
    fn branches_merge_correctly() {
        let mut b = GraphBuilder::new("res");
        let i = b.input([1, 4, 8, 8]);
        let c1 = b.conv2d_after(i, 4, 4, (3, 3), (1, 1), 1);
        let sum = b.add_of(&[i, c1]);
        let _ = b.activation_after(sum, Activation::Relu);
        let g = b.finish().unwrap();
        assert_eq!(g.predecessors(sum).len(), 2);
        assert!(g.validate().is_ok());
    }

    #[test]
    fn different_names_give_different_weights() {
        let gw = |name: &str| {
            let mut b = GraphBuilder::new(name);
            let i = b.input([1, 3, 8, 8]);
            let _ = b.conv2d_after(i, 3, 4, (3, 3), (1, 1), 1);
            let g = b.finish().unwrap();
            let id = g
                .ops()
                .filter_map(|(_, o)| o.weights.as_ref().map(|w| w.id()))
                .next()
                .unwrap();
            id
        };
        assert_ne!(gw("model-a"), gw("model-b"));
    }
}
