//! KV-cache state of decoder-style (causal-attention) models.
//!
//! A GPT-style decoder serving a request is not stateless between tokens:
//! every attention layer keeps the keys and values of all previously
//! processed positions — the **KV cache** — so decoding token `t+1` costs
//! one position of attention instead of re-running the whole prefix. For
//! inter-function transformation this matters because a transform between
//! decoder siblings (same weights modulo context length / head layout)
//! can *carry* the attention state across instead of dropping it, the
//! same way it carries weight tensors (per the `resize_kv_cache` stage in
//! TensorRT-LLM's auto-deploy pipeline; see SNIPPETS.md).
//!
//! [`KvCacheSpec`] is the shape side: `layers × 2 (K and V) × heads ×
//! context × head_dim` elements. [`KvCache`] adds the dynamic fill level
//! (how many positions hold live state). The meta-operators that move a
//! cache between sibling shapes live in `optimus-core::kv`.

use serde::{Deserialize, Serialize};

use crate::graph::ModelGraph;
use crate::op::OpAttrs;

/// Bytes per cached element (fp16 activations, the serving default).
pub const KV_ELEMENT_BYTES: u64 = 2;

/// Shape of a decoder's KV cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct KvCacheSpec {
    /// Attention layers holding a K and a V tensor each.
    pub layers: usize,
    /// Attention heads per layer.
    pub heads: usize,
    /// Per-head dimension (`d_model / heads`).
    pub head_dim: usize,
    /// Maximum context length (cached positions).
    pub context: usize,
    /// Bytes per element (see [`KV_ELEMENT_BYTES`]).
    pub element_bytes: u64,
}

impl KvCacheSpec {
    /// Spec with the serving-default element width.
    pub fn new(layers: usize, heads: usize, head_dim: usize, context: usize) -> Self {
        KvCacheSpec {
            layers,
            heads,
            head_dim,
            context,
            element_bytes: KV_ELEMENT_BYTES,
        }
    }

    /// Derive the KV-cache spec of a decoder graph: one (K, V) pair per
    /// attention layer, head layout from the `Query` projections, context
    /// from the positional embedding. Returns `None` for graphs without
    /// attention (CNNs) or without a positional embedding.
    pub fn of_model(model: &ModelGraph) -> Option<KvCacheSpec> {
        let mut layers = 0usize;
        let mut heads = 0usize;
        let mut hidden = 0usize;
        let mut context = 0usize;
        for (_, op) in model.ops() {
            match op.attrs {
                OpAttrs::Query {
                    hidden: h,
                    heads: n,
                } => {
                    layers += 1;
                    heads = n;
                    hidden = h;
                }
                OpAttrs::PosEmbedding { max_len, .. } => context = context.max(max_len),
                _ => {}
            }
        }
        if layers == 0 || heads == 0 || context == 0 || !hidden.is_multiple_of(heads) {
            return None;
        }
        Some(KvCacheSpec::new(layers, heads, hidden / heads, context))
    }

    /// `d_model` implied by the head layout.
    pub fn hidden(&self) -> usize {
        self.heads * self.head_dim
    }

    /// Cached elements at full context: `layers × 2 × heads × context ×
    /// head_dim` (K and V).
    pub fn element_count(&self) -> u64 {
        2 * self.layers as u64 * self.heads as u64 * self.context as u64 * self.head_dim as u64
    }

    /// Total cache bytes at full context.
    pub fn byte_size(&self) -> u64 {
        self.element_count() * self.element_bytes
    }

    /// Bytes held by `positions` filled context slots (≤ full context).
    pub fn bytes_at(&self, positions: usize) -> u64 {
        let p = positions.min(self.context) as u64;
        2 * self.layers as u64 * self.heads as u64 * p * self.head_dim as u64 * self.element_bytes
    }

    /// Whether a per-position state row is layout-compatible with
    /// `other`'s (same layers and same `d_model` split): exactly the
    /// pairs whose caches a transform can carry without recomputation.
    pub fn row_compatible(&self, other: &KvCacheSpec) -> bool {
        self.layers == other.layers
            && self.hidden() == other.hidden()
            && self.element_bytes == other.element_bytes
    }
}

/// A KV cache instance: a spec plus its fill level.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct KvCache {
    /// Shape of the cache.
    pub spec: KvCacheSpec,
    /// Context positions currently holding live state (≤ `spec.context`).
    pub filled: usize,
}

impl KvCache {
    /// Empty cache of the given shape.
    pub fn empty(spec: KvCacheSpec) -> Self {
        KvCache { spec, filled: 0 }
    }

    /// Cache with `filled` live positions (clamped to the context).
    pub fn filled(spec: KvCacheSpec, filled: usize) -> Self {
        KvCache {
            spec,
            filled: filled.min(spec.context),
        }
    }

    /// Bytes of live state.
    pub fn live_bytes(&self) -> u64 {
        self.spec.bytes_at(self.filled)
    }

    /// Bytes reserved for the full context window.
    pub fn reserved_bytes(&self) -> u64 {
        self.spec.byte_size()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn byte_size_counts_k_and_v() {
        let spec = KvCacheSpec::new(2, 4, 8, 16);
        // 2 layers × 2 (K,V) × 4 heads × 16 ctx × 8 dim × 2 B.
        assert_eq!(spec.element_count(), 2 * 2 * 4 * 16 * 8);
        assert_eq!(spec.byte_size(), spec.element_count() * KV_ELEMENT_BYTES);
        assert_eq!(spec.hidden(), 32);
    }

    #[test]
    fn bytes_at_clamps_to_context() {
        let spec = KvCacheSpec::new(1, 2, 4, 8);
        assert_eq!(spec.bytes_at(0), 0);
        assert_eq!(spec.bytes_at(8), spec.byte_size());
        assert_eq!(spec.bytes_at(100), spec.byte_size());
        assert_eq!(spec.bytes_at(4) * 2, spec.byte_size());
    }

    #[test]
    fn row_compatibility_is_head_layout_invariant() {
        let a = KvCacheSpec::new(4, 8, 64, 1024);
        let b = KvCacheSpec::new(4, 16, 32, 2048); // same d_model, re-split
        let c = KvCacheSpec::new(4, 8, 32, 1024); // smaller d_model
        assert!(a.row_compatible(&b));
        assert!(!a.row_compatible(&c));
    }

    #[test]
    fn cache_tracks_fill_level() {
        let spec = KvCacheSpec::new(2, 2, 4, 8);
        let c = KvCache::filled(spec, 3);
        assert_eq!(c.live_bytes(), spec.bytes_at(3));
        assert!(c.live_bytes() < c.reserved_bytes());
        assert_eq!(KvCache::empty(spec).live_bytes(), 0);
        assert_eq!(KvCache::filled(spec, 99).filled, 8);
    }
}
