//! Model statistics: parameter counts, op histograms, family summaries.
//!
//! These back the paper's Figure 2c table (params / size per model) and the
//! §4.4 observation that most operations carry no weights.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use crate::graph::ModelGraph;
use crate::op::OpKind;

/// Histogram of operation kinds within a model.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize, Default)]
pub struct OpHistogram {
    /// Count per kind (kinds with zero count are omitted).
    pub counts: BTreeMap<OpKind, usize>,
}

impl OpHistogram {
    /// Build from a graph.
    pub fn of(graph: &ModelGraph) -> Self {
        let mut counts = BTreeMap::new();
        for (_, op) in graph.ops() {
            *counts.entry(op.kind()).or_insert(0) += 1;
        }
        OpHistogram { counts }
    }

    /// Count for one kind.
    pub fn count(&self, kind: OpKind) -> usize {
        self.counts.get(&kind).copied().unwrap_or(0)
    }

    /// Total ops.
    pub fn total(&self) -> usize {
        self.counts.values().sum()
    }

    /// L1 distance to another histogram — a quick structural-similarity
    /// proxy used by the load balancer's coarse pre-filter.
    pub fn l1_distance(&self, other: &OpHistogram) -> usize {
        let mut dist = 0usize;
        for kind in OpKind::ALL {
            let a = self.count(kind);
            let b = other.count(kind);
            dist += a.abs_diff(b);
        }
        dist
    }
}

/// Summary statistics of one model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModelStats {
    /// Model name.
    pub name: String,
    /// Operation count.
    pub ops: usize,
    /// Operations carrying weights.
    pub weighted_ops: usize,
    /// Edge count.
    pub edges: usize,
    /// Scalar parameter count.
    pub params: usize,
    /// Serialized size in bytes (f32).
    pub bytes: usize,
    /// Op-kind histogram.
    pub histogram: OpHistogram,
}

impl ModelStats {
    /// Compute stats for a graph.
    pub fn of(graph: &ModelGraph) -> Self {
        ModelStats {
            name: graph.name().to_string(),
            ops: graph.op_count(),
            weighted_ops: graph.weighted_op_count(),
            edges: graph.edge_count(),
            params: graph.param_count(),
            bytes: graph.byte_size(),
            histogram: OpHistogram::of(graph),
        }
    }

    /// Parameters in millions (the paper's "Params" row, e.g. 138.4M).
    pub fn params_millions(&self) -> f64 {
        self.params as f64 / 1.0e6
    }

    /// Size in MiB (the paper's "Size (MB)" row).
    pub fn size_mib(&self) -> f64 {
        self.bytes as f64 / (1024.0 * 1024.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;
    use crate::op::Activation;

    fn sample() -> ModelGraph {
        let mut b = GraphBuilder::new("s");
        let i = b.input([1, 3, 8, 8]);
        let c = b.conv2d_after(i, 3, 4, (3, 3), (1, 1), 1);
        let a = b.activation_after(c, Activation::Relu);
        let c2 = b.conv2d_after(a, 4, 4, (3, 3), (1, 1), 1);
        let _ = b.activation_after(c2, Activation::Relu);
        b.finish().unwrap()
    }

    #[test]
    fn histogram_counts_kinds() {
        let h = OpHistogram::of(&sample());
        assert_eq!(h.count(OpKind::Conv2d), 2);
        assert_eq!(h.count(OpKind::Activation), 2);
        assert_eq!(h.count(OpKind::Input), 1);
        assert_eq!(h.total(), 5);
    }

    #[test]
    fn l1_distance_is_symmetric_and_zero_on_self() {
        let h1 = OpHistogram::of(&sample());
        let mut b = GraphBuilder::new("t");
        let i = b.input([1, 3, 8, 8]);
        let _ = b.conv2d_after(i, 3, 4, (3, 3), (1, 1), 1);
        let h2 = OpHistogram::of(&b.finish().unwrap());
        assert_eq!(h1.l1_distance(&h1), 0);
        assert_eq!(h1.l1_distance(&h2), h2.l1_distance(&h1));
        assert_eq!(h1.l1_distance(&h2), 3); // conv+act+act missing... 1 conv + 2 act
    }

    #[test]
    fn stats_fields_consistent() {
        let g = sample();
        let s = ModelStats::of(&g);
        assert_eq!(s.ops, g.op_count());
        assert_eq!(s.params, g.param_count());
        assert_eq!(s.bytes, s.params * 4);
        assert_eq!(s.weighted_ops, 2);
        assert!((s.params_millions() - s.params as f64 / 1e6).abs() < 1e-12);
    }
}
