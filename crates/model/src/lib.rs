//! # optimus-model — computational-graph model IR
//!
//! This crate provides the model substrate the Optimus system operates on:
//! a computational graph (DAG) whose nodes are typed ML *operations*
//! (convolutions, dense layers, attention projections, …) and whose edges
//! are data flows, mirroring the paper's §3.2 decomposition of a model into
//! layers and operations.
//!
//! The IR plays the role that `tf.keras` layer objects play in the paper's
//! prototype: Optimus' in-container transformation meta-operators edit these
//! graphs in place, and the planner reasons about them as a graph-edit
//! problem.
//!
//! Main types:
//! - [`ModelGraph`] — a named DAG of [`Operation`]s with mutation APIs used
//!   by the transformation executor.
//! - [`OpAttrs`] / [`OpKind`] — the operation taxonomy covering the CNN
//!   operations of §3.2 and the transformer operations of §5.2.
//! - [`Weights`] — lazily materialisable, deterministic weight tensors, so
//!   transformation semantics are observable without storing every float of
//!   every zoo model.
//! - [`infer`] — a minimal forward-pass engine used to check that
//!   transformed graphs are actually runnable.
//!
//! ```
//! use optimus_model::{GraphBuilder, Activation};
//!
//! let mut b = GraphBuilder::new("tiny-cnn");
//! let input = b.input([1, 3, 8, 8]);
//! let conv = b.conv2d_after(input, 3, 4, (3, 3), (1, 1), 1);
//! let _act = b.activation_after(conv, Activation::Relu);
//! let model = b.finish().unwrap();
//! assert_eq!(model.op_count(), 3);
//! assert!(model.validate().is_ok());
//! ```

mod builder;
mod error;
mod graph;
mod intern;
mod kv;
mod op;
mod shape;
mod stats;
mod weights;

pub mod dot;
pub mod infer;
pub mod serialize;
pub mod signature;
pub mod tensor;

pub use builder::GraphBuilder;
pub use error::ModelError;
pub use graph::{Edge, ModelGraph, OpId};
pub use intern::{FunctionId, InternKey, Interner, ModelId};
pub use kv::{KvCache, KvCacheSpec, KV_ELEMENT_BYTES};
pub use op::{Activation, OpAttrs, OpKind, Operation, Padding, PoolKind};
pub use shape::TensorShape;
pub use stats::{ModelStats, OpHistogram};
pub use weights::{WeightId, WeightInit, WeightSpec, Weights};

/// Model family tags used by the zoo and by family-aware experiments
/// (e.g. Figure 11 groups the transformation matrix by family).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, serde::Serialize, serde::Deserialize,
)]
pub enum ModelFamily {
    /// VGG image classifiers (Simonyan & Zisserman).
    Vgg,
    /// Residual networks (He et al.).
    ResNet,
    /// Densely connected networks.
    DenseNet,
    /// MobileNet efficient CNNs.
    MobileNet,
    /// Xception (depthwise-separable convolutions).
    Xception,
    /// Inception / GoogLeNet style.
    Inception,
    /// BERT transformer encoders.
    Bert,
    /// GPT-style causal decoder transformers.
    Gpt,
    /// NAS-Bench-201 cell-search-space models.
    NasBench,
    /// Anything else (hand-built or test models).
    Custom,
}

impl ModelFamily {
    /// `true` for transformer families, `false` for CNN families.
    ///
    /// The paper observes (§8.2) that CNN↔transformer transformations always
    /// cost more than loading from scratch, so the safeguard rejects them;
    /// this predicate lets schedulers short-circuit that case.
    pub fn is_transformer(self) -> bool {
        matches!(self, ModelFamily::Bert | ModelFamily::Gpt)
    }

    /// Human-readable family name.
    pub fn name(self) -> &'static str {
        match self {
            ModelFamily::Vgg => "VGG",
            ModelFamily::ResNet => "ResNet",
            ModelFamily::DenseNet => "DenseNet",
            ModelFamily::MobileNet => "MobileNet",
            ModelFamily::Xception => "Xception",
            ModelFamily::Inception => "Inception",
            ModelFamily::Bert => "BERT",
            ModelFamily::Gpt => "GPT",
            ModelFamily::NasBench => "NASBench",
            ModelFamily::Custom => "Custom",
        }
    }
}

impl std::fmt::Display for ModelFamily {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}
