//! Error type for model construction, validation and execution.

use crate::graph::OpId;

/// Errors produced by graph construction, validation, serialization and the
/// forward-pass engine.
#[derive(Debug, Clone, PartialEq)]
pub enum ModelError {
    /// An edge references an operation id that is not present in the graph.
    UnknownOp(OpId),
    /// An edge was added twice or connects an op to itself.
    InvalidEdge {
        /// Source operation.
        from: OpId,
        /// Destination operation.
        to: OpId,
        /// Human-readable reason.
        reason: &'static str,
    },
    /// The graph contains a cycle, so it is not a valid computational DAG.
    CycleDetected,
    /// The graph has no `Input` operation.
    MissingInput,
    /// Shape mismatch detected during validation or inference.
    ShapeMismatch {
        /// Operation at which the mismatch was detected.
        op: OpId,
        /// Human-readable description of the expected/actual shapes.
        detail: String,
    },
    /// The forward-pass engine does not implement this operation kind.
    UnsupportedOp {
        /// Operation that could not be executed.
        op: OpId,
        /// Kind name.
        kind: &'static str,
    },
    /// An operation's weights do not match the shapes implied by its
    /// attributes.
    WeightShapeMismatch {
        /// Offending operation.
        op: OpId,
        /// Human-readable description.
        detail: String,
    },
    /// Serialization / deserialization failure.
    Serde(String),
    /// An operation received the wrong number of inputs at execution time.
    ArityMismatch {
        /// Offending operation.
        op: OpId,
        /// Number of inputs the op expects.
        expected: usize,
        /// Number of inputs the graph supplies.
        actual: usize,
    },
}

impl std::fmt::Display for ModelError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ModelError::UnknownOp(id) => write!(f, "unknown operation id {id:?}"),
            ModelError::InvalidEdge { from, to, reason } => {
                write!(f, "invalid edge {from:?} -> {to:?}: {reason}")
            }
            ModelError::CycleDetected => write!(f, "graph contains a cycle"),
            ModelError::MissingInput => write!(f, "graph has no Input operation"),
            ModelError::ShapeMismatch { op, detail } => {
                write!(f, "shape mismatch at {op:?}: {detail}")
            }
            ModelError::UnsupportedOp { op, kind } => {
                write!(f, "operation {op:?} of kind {kind} is not executable")
            }
            ModelError::WeightShapeMismatch { op, detail } => {
                write!(f, "weight shape mismatch at {op:?}: {detail}")
            }
            ModelError::Serde(msg) => write!(f, "serialization error: {msg}"),
            ModelError::ArityMismatch {
                op,
                expected,
                actual,
            } => write!(
                f,
                "operation {op:?} expects {expected} input(s) but got {actual}"
            ),
        }
    }
}

impl std::error::Error for ModelError {}
