//! Graphviz DOT export for model graphs.
//!
//! Handy for inspecting zoo architectures and for eyeballing what a
//! transformation did to a container's model:
//!
//! ```sh
//! cargo run --bin optimus-cli -- inspect resnet18   # stats
//! # …or render a graph:
//! # optimus::model::dot::to_dot(&graph) | dot -Tsvg > model.svg
//! ```

use crate::graph::ModelGraph;
use crate::op::OpKind;

/// Render the graph as Graphviz DOT.
///
/// Weight-bearing operations are drawn as boxes with their parameter
/// counts; weight-free operations as ellipses. The output is deterministic
/// (stable id order).
pub fn to_dot(graph: &ModelGraph) -> String {
    let mut out = String::new();
    out.push_str(&format!("digraph \"{}\" {{\n", escape(graph.name())));
    out.push_str("  rankdir=TB;\n  node [fontsize=10];\n");
    for (id, op) in graph.ops() {
        let (shape, extra) = if op.weights.is_some() {
            ("box", format!("\\n{} params", op.weight_count()))
        } else {
            ("ellipse", String::new())
        };
        let color = match op.kind() {
            OpKind::Conv2d => "lightblue",
            OpKind::Dense => "lightsalmon",
            OpKind::BatchNorm | OpKind::LayerNorm => "lightyellow",
            OpKind::Input => "lightgreen",
            k if k.is_attention() => "plum",
            OpKind::Lstm | OpKind::Gru => "lightcyan",
            _ => "white",
        };
        out.push_str(&format!(
            "  n{} [label=\"{}\\n[{}]{}\", shape={}, style=filled, fillcolor={}];\n",
            id.0,
            escape(&op.name),
            op.kind(),
            extra,
            shape,
            color
        ));
    }
    for e in graph.edges() {
        out.push_str(&format!("  n{} -> n{};\n", e.from.0, e.to.0));
    }
    out.push_str("}\n");
    out
}

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;
    use crate::op::Activation;

    #[test]
    fn dot_contains_all_nodes_and_edges() {
        let mut b = GraphBuilder::new("dot-test");
        let i = b.input([1, 3, 8, 8]);
        let c = b.conv2d_after(i, 3, 4, (3, 3), (1, 1), 1);
        let _ = b.activation_after(c, Activation::Relu);
        let g = b.finish().unwrap();
        let dot = to_dot(&g);
        assert!(dot.starts_with("digraph \"dot-test\""));
        assert_eq!(dot.matches("label=").count(), g.op_count());
        assert_eq!(dot.matches(" -> ").count(), g.edge_count());
        assert!(dot.contains("box"), "weighted ops are boxes");
        assert!(dot.contains("ellipse"), "weight-free ops are ellipses");
        assert!(dot.ends_with("}\n"));
    }

    #[test]
    fn dot_escapes_quotes() {
        let mut b = GraphBuilder::new("has\"quote");
        let _ = b.input([1, 2]);
        let g = b.finish_unchecked();
        let dot = to_dot(&g);
        assert!(dot.contains("has\\\"quote"));
    }

    #[test]
    fn dot_is_deterministic() {
        let g = {
            let mut b = GraphBuilder::new("det");
            let i = b.input([1, 3, 8, 8]);
            let _ = b.conv2d_after(i, 3, 4, (3, 3), (1, 1), 1);
            b.finish().unwrap()
        };
        assert_eq!(to_dot(&g), to_dot(&g));
    }
}
