//! Tensor shape helper.

use serde::{Deserialize, Serialize};

/// A tensor shape: a small vector of dimension sizes.
///
/// Shapes follow the NCHW convention for image tensors
/// (`[batch, channels, height, width]`) and `[batch, seq, hidden]` for
/// transformer activations.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize, Default)]
pub struct TensorShape(pub Vec<usize>);

impl TensorShape {
    /// Create a shape from dimension sizes.
    pub fn new(dims: impl Into<Vec<usize>>) -> Self {
        TensorShape(dims.into())
    }

    /// Number of dimensions.
    pub fn rank(&self) -> usize {
        self.0.len()
    }

    /// Total number of elements (product of dimensions; 1 for scalars).
    pub fn numel(&self) -> usize {
        self.0.iter().product()
    }

    /// Dimension sizes as a slice.
    pub fn dims(&self) -> &[usize] {
        &self.0
    }
}

impl From<Vec<usize>> for TensorShape {
    fn from(v: Vec<usize>) -> Self {
        TensorShape(v)
    }
}

impl<const N: usize> From<[usize; N]> for TensorShape {
    fn from(v: [usize; N]) -> Self {
        TensorShape(v.to_vec())
    }
}

impl std::fmt::Display for TensorShape {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[")?;
        for (i, d) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, "x")?;
            }
            write!(f, "{d}")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn numel_and_rank() {
        let s = TensorShape::from([2, 3, 4]);
        assert_eq!(s.rank(), 3);
        assert_eq!(s.numel(), 24);
        assert_eq!(s.to_string(), "[2x3x4]");
    }

    #[test]
    fn empty_shape_is_scalar() {
        let s = TensorShape::new(Vec::new());
        assert_eq!(s.rank(), 0);
        assert_eq!(s.numel(), 1);
    }
}
