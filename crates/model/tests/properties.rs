//! Property-based tests of the model IR: serialization, weight
//! reshaping, graph invariants, and the forward-pass engine.

use optimus_model::{
    infer, serialize, tensor::Tensor, Activation, GraphBuilder, ModelGraph, PoolKind, WeightSpec,
};
use proptest::prelude::*;

fn arb_chain() -> impl Strategy<Value = Vec<(usize, usize, bool)>> {
    prop::collection::vec(
        (
            prop::sample::select(vec![2usize, 4, 8, 12]),
            prop::sample::select(vec![1usize, 3, 5]),
            any::<bool>(),
        ),
        1..5,
    )
}

fn build(name: &str, spec: &[(usize, usize, bool)]) -> ModelGraph {
    let mut b = GraphBuilder::new(name);
    let mut x = b.input([1, 3, 16, 16]);
    let mut ch = 3;
    for &(c, k, pool) in spec {
        x = b.conv2d_after(x, ch, c, (k, k), (1, 1), 1);
        x = b.activation_after(x, Activation::Relu);
        if pool {
            x = b.pool_after(x, PoolKind::Max, (2, 2), (2, 2));
        }
        ch = c;
    }
    b.finish().unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// JSON serialization round-trips structure, weights and metadata.
    #[test]
    fn serialization_roundtrip(spec in arb_chain()) {
        let g = build("prop", &spec);
        let json = serialize::to_json(&g).unwrap();
        let back = serialize::from_json(&json).unwrap();
        prop_assert!(g.structurally_equal(&back));
        prop_assert_eq!(g.name(), back.name());
        prop_assert_eq!(g.param_count(), back.param_count());
        prop_assert_eq!(g.edge_count(), back.edge_count());
    }

    /// Save/load preserves weight *content identity*: every operation's
    /// `WeightId` and every tensor's content fingerprint survive the JSON
    /// round trip — the prerequisite for content-addressed chunk storage
    /// (`optimus-store` derives chunk ids from these fingerprints).
    #[test]
    fn serialization_preserves_weight_identity(spec in arb_chain()) {
        let g = build("wid", &spec);
        let back = serialize::from_json(&serialize::to_json(&g).unwrap()).unwrap();
        for (id, op) in g.ops() {
            let round = back.op(id).expect("op ids survive the round trip");
            match (&op.weights, &round.weights) {
                (Some(a), Some(b)) => {
                    prop_assert_eq!(a.id(), b.id(), "WeightId changed for {}", id);
                    prop_assert_eq!(
                        a.tensor_fingerprints(),
                        b.tensor_fingerprints(),
                        "tensor fingerprint changed for {}", id
                    );
                }
                (None, None) => {}
                _ => prop_assert!(false, "weight presence changed for {}", id),
            }
        }
    }

    /// Crop/zero-pad preserves exactly the overlap region for arbitrary
    /// source/target kernel shapes.
    #[test]
    fn crop_pad_preserves_overlap(
        sh in 1usize..6, sw in 1usize..6,
        th in 1usize..6, tw in 1usize..6,
        seed in any::<u64>(),
    ) {
        let src = WeightSpec::seeded([2, 3, sh, sw], seed);
        let orig = src.materialize();
        let padded = WeightSpec::crop_pad_of(src, [2, 3, th, tw]).materialize();
        for oc in 0..2 {
            for ic in 0..3 {
                for y in 0..th {
                    for x in 0..tw {
                        let got = padded.at4(oc, ic, y, x);
                        if y < sh && x < sw {
                            prop_assert_eq!(got, orig.at4(oc, ic, y, x));
                        } else {
                            prop_assert_eq!(got, 0.0);
                        }
                    }
                }
            }
        }
    }

    /// Topological order is a valid linearisation: every edge goes
    /// forward, every op appears exactly once.
    #[test]
    fn topological_order_is_valid(spec in arb_chain()) {
        let g = build("topo", &spec);
        let order = g.topo_order().unwrap();
        prop_assert_eq!(order.len(), g.op_count());
        let pos: std::collections::HashMap<_, _> =
            order.iter().enumerate().map(|(i, id)| (*id, i)).collect();
        for e in g.edges() {
            prop_assert!(pos[&e.from] < pos[&e.to], "edge goes backwards");
        }
    }

    /// The forward pass of any generated chain produces finite outputs of
    /// positive size.
    #[test]
    fn forward_pass_is_finite(spec in arb_chain()) {
        let g = build("fwd", &spec);
        let y = infer::run(&g, Tensor::zeros([1, 3, 16, 16])).unwrap();
        prop_assert!(y.shape().numel() > 0);
        prop_assert!(y.data().iter().all(|v| v.is_finite()));
    }

    /// Structural equality is reflexive and survives op-insertion-order
    /// permutation via the serialize/deserialize path.
    #[test]
    fn structural_equality_reflexive(spec in arb_chain()) {
        let g = build("eq", &spec);
        prop_assert!(g.structurally_equal(&g.clone()));
        // A genuinely different graph compares unequal.
        let mut other_spec = spec.clone();
        other_spec[0].0 += 2;
        let h = build("eq", &other_spec);
        prop_assert!(!g.structurally_equal(&h));
    }

    /// Removing any single non-input op keeps the graph valid except for
    /// op-count bookkeeping (edges to/from it disappear).
    #[test]
    fn remove_op_cleans_edges(spec in arb_chain(), pick in any::<prop::sample::Index>()) {
        let mut g = build("rm", &spec);
        let ids = g.op_ids();
        let victim = ids[pick.index(ids.len())];
        let before_edges = g.edge_count();
        let incident = g.predecessors(victim).len() + g.successors(victim).len();
        g.remove_op(victim).unwrap();
        prop_assert_eq!(g.edge_count(), before_edges - incident);
        prop_assert!(g.op(victim).is_none());
    }
}
