//! Property-based tests of the cost model: monotonicity, positivity, and
//! the relations the planner relies on.

use optimus_model::{OpAttrs, Padding};
use optimus_profile::{CostModel, CostProvider, Environment};
use proptest::prelude::*;

fn conv(out: usize, k: usize) -> OpAttrs {
    OpAttrs::Conv2d {
        in_channels: 64,
        out_channels: out,
        kernel: (k, k),
        stride: (1, 1),
        padding: Padding::Same,
        groups: 1,
        bias: true,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Structure cost grows with weight size within a kind.
    #[test]
    fn structure_cost_monotone_in_weights(
        a in 8usize..512, b in 8usize..512, k in 1usize..8,
    ) {
        let m = CostModel::default();
        let (small, large) = (a.min(b), a.max(b));
        prop_assume!(small < large);
        prop_assert!(m.structure_cost(&conv(small, k)) < m.structure_cost(&conv(large, k)));
    }

    /// All cost components are strictly positive and finite.
    #[test]
    fn costs_are_positive_and_finite(out in 1usize..1024, k in 1usize..8) {
        for env in [Environment::Cpu, Environment::Gpu] {
            let m = CostModel::new(env);
            let attrs = conv(out, k);
            for v in [
                m.structure_cost(&attrs),
                m.assign_cost(&attrs),
                m.replace_cost(&attrs),
                m.reduce_cost(&attrs),
                m.add_cost(&attrs),
                m.edge_cost(),
            ] {
                prop_assert!(v.is_finite() && v >= 0.0, "cost {v}");
            }
            prop_assert!(m.structure_cost(&attrs) > 0.0);
        }
    }

    /// Reshape is always defined within a kind, never across kinds, and
    /// never beats a free identity: reshape(x, x) > 0.
    #[test]
    fn reshape_domain(out1 in 8usize..256, out2 in 8usize..256, k in 1usize..6) {
        let m = CostModel::default();
        let a = conv(out1, k);
        let b = conv(out2, k);
        prop_assert!(m.reshape_cost(&a, &b).is_some());
        prop_assert!(m.reshape_cost(&a, &a).unwrap() > 0.0);
        let dense = OpAttrs::Dense {
            in_features: out1,
            out_features: out2,
            bias: true,
        };
        prop_assert!(m.reshape_cost(&a, &dense).is_none());
    }

    /// Add always costs at least as much as Reshape+Replace to the same
    /// destination — otherwise the substitution path would be pointless.
    #[test]
    fn add_dominates_substitution(
        src_out in 8usize..256, dst_out in 8usize..256, k in 1usize..6,
    ) {
        let m = CostModel::default();
        let src = conv(src_out, k);
        let dst = conv(dst_out, k);
        let substitution = m.reshape_cost(&src, &dst).unwrap() + m.replace_cost(&dst);
        // Not universally true for tiny dst with huge src shrink? Verify:
        // substitution must at least be cheaper than add for same-or-larger
        // destinations, the paper's reuse case.
        if dst_out >= src_out {
            prop_assert!(
                substitution < m.add_cost(&dst),
                "substitute {substitution} !< add {}",
                m.add_cost(&dst)
            );
        }
    }

    /// GPU uniformly scales structure costs up and assign costs down
    /// relative to CPU.
    #[test]
    fn gpu_scaling_is_uniform(out in 8usize..512, k in 1usize..8) {
        let cpu = CostModel::new(Environment::Cpu);
        let gpu = CostModel::new(Environment::Gpu);
        let attrs = conv(out, k);
        let s_ratio = gpu.structure_cost(&attrs) / cpu.structure_cost(&attrs);
        prop_assert!((s_ratio - Environment::Gpu.load_multiplier()).abs() < 1e-9);
        let a_ratio = gpu.assign_cost(&attrs) / cpu.assign_cost(&attrs);
        prop_assert!((a_ratio - Environment::Gpu.assign_multiplier()).abs() < 1e-9);
    }

    /// Model load cost decomposes exactly into the breakdown parts.
    #[test]
    fn load_breakdown_sums(channels in prop::collection::vec(4usize..32, 1..5)) {
        let m = CostModel::default();
        let mut b = optimus_model::GraphBuilder::new("prop");
        let mut x = b.input([1, 3, 16, 16]);
        let mut ch = 3;
        for &c in &channels {
            x = b.conv2d_after(x, ch, c, (3, 3), (1, 1), 1);
            ch = c;
        }
        let _ = x;
        let g = b.finish().unwrap();
        let breakdown = m.load_breakdown(&g);
        prop_assert!((breakdown.total() - m.model_load_cost(&g)).abs() < 1e-12);
        prop_assert!(
            (breakdown.structure_fraction() + breakdown.assign_fraction()
                + breakdown.deserialize / breakdown.total()
                - 1.0)
                .abs()
                < 1e-9
        );
    }
}
