//! Calibration integration tests: the cost model must reproduce the
//! paper's measured invariants over real zoo models (Insights 1–2,
//! Figures 2–4).

use optimus_profile::{CostModel, CostProvider, Environment, PlatformProfile};
use optimus_zoo::{resnet, vgg};

#[test]
fn insight1_model_loading_dominates_request_latency() {
    // Figure 2: model loading accounts for more than half the total request
    // time for both families; for VGG16 more than 74% of *startup*
    // (init + load) is model loading (Figure 1).
    let cost = CostModel::default();
    let plat = PlatformProfile::new(Environment::Cpu);
    for model in [vgg::vgg16(), resnet::resnet50(), resnet::resnet152()] {
        let load = cost.model_load_cost(&model);
        let init = plat.cold_init();
        let compute = plat.compute_cost(&model);
        let total = init + load + compute;
        assert!(
            load / total > 0.5,
            "{}: load fraction {:.2}",
            model.name(),
            load / total
        );
    }
    let vgg16 = vgg::vgg16();
    let load = cost.model_load_cost(&vgg16);
    let startup = plat.cold_init() + load;
    assert!(
        load / startup > 0.67,
        "VGG16 load is {:.0}% of startup, paper says >74%",
        100.0 * load / startup
    );
}

#[test]
fn insight1_loading_scales_with_layers_not_params() {
    // ResNet101 has ~2x the layers of ResNet50 and loads ~2x slower;
    // ResNet family loads about as slowly as VGG despite 5x fewer params.
    let cost = CostModel::default();
    let r50 = cost.model_load_cost(&resnet::resnet50());
    let r101 = cost.model_load_cost(&resnet::resnet101());
    let ratio = r101 / r50;
    assert!(
        (1.5..=2.5).contains(&ratio),
        "r101/r50 load ratio {ratio:.2}"
    );

    let v16 = cost.model_load_cost(&vgg::vgg16());
    let family_ratio = r50 / v16;
    assert!(
        (0.5..=2.0).contains(&family_ratio),
        "resnet50/vgg16 load ratio {family_ratio:.2} — families should load comparably"
    );
}

#[test]
fn insight2_structure_loading_dominates_model_loading() {
    // Figure 3: structure ≈ 89.66% of loading on average over the zoo;
    // weights ≈ 10.28%; deserialization negligible.
    let cost = CostModel::default();
    let models = [
        vgg::vgg11(),
        vgg::vgg16(),
        resnet::resnet18(),
        resnet::resnet50(),
        resnet::resnet101(),
        optimus_zoo::densenet::densenet121(),
        optimus_zoo::mobilenet::mobilenet_v1(1.0, 0),
        optimus_zoo::mobilenet::mobilenet_v2(1.0, 0),
        optimus_zoo::inception::inception_v1(),
        optimus_zoo::xception::xception(),
    ];
    let mut structure_frac = 0.0;
    let mut deser_frac = 0.0;
    for m in &models {
        let b = cost.load_breakdown(m);
        structure_frac += b.structure_fraction();
        deser_frac += b.deserialize / b.total();
    }
    structure_frac /= models.len() as f64;
    deser_frac /= models.len() as f64;
    assert!(
        (0.80..=0.97).contains(&structure_frac),
        "mean structure fraction {structure_frac:.3}, paper: 0.8966"
    );
    assert!(deser_frac < 0.02, "deserialize fraction {deser_frac:.4}");
}

#[test]
fn gpu_requests_are_slower_end_to_end_but_compute_faster() {
    // Figure 16: GPU cold requests are slower than CPU cold requests
    // because of runtime init + load overhead, despite faster compute.
    let model = resnet::resnet50();
    let (mut totals, mut computes) = (Vec::new(), Vec::new());
    for env in [Environment::Cpu, Environment::Gpu] {
        let cost = CostModel::new(env);
        let plat = PlatformProfile::new(env);
        let compute = plat.compute_cost(&model);
        totals.push(plat.cold_init() + cost.model_load_cost(&model) + compute);
        computes.push(compute);
    }
    assert!(
        totals[1] > totals[0],
        "GPU total {} !> CPU {}",
        totals[1],
        totals[0]
    );
    assert!(computes[1] < computes[0]);
}

#[test]
fn same_structure_weight_swap_saves_about_80_percent() {
    // Figure 5a: replacing only the weights of an identical structure cuts
    // serving latency by ~79.83% versus a cold start.
    let cost = CostModel::default();
    let plat = PlatformProfile::new(Environment::Cpu);
    let mut savings = Vec::new();
    for m in [vgg::vgg16(), resnet::resnet50(), resnet::resnet101()] {
        let cold = plat.cold_init() + cost.model_load_cost(&m) + plat.compute_cost(&m);
        // Weight swap: replace every weighted op's weights in a warm
        // container; no init, no structure loading.
        let swap: f64 = m
            .ops()
            .filter(|(_, op)| op.weights.is_some())
            .map(|(_, op)| cost.replace_cost(&op.attrs))
            .sum();
        let warm_serve = plat.repurpose_overhead + swap + plat.compute_cost(&m);
        savings.push(1.0 - warm_serve / cold);
    }
    let mean = savings.iter().sum::<f64>() / savings.len() as f64;
    assert!(
        (0.65..=0.95).contains(&mean),
        "mean saving {mean:.3}, paper reports 0.7983"
    );
}
