//! Offline profiling of operations and meta-operators (§4.4 Module 1).
//!
//! The profiler sweeps a model population and tabulates, per operation
//! kind, the loading and meta-operator execution latencies the cost model
//! predicts — exactly the tables the paper's Figures 4 and 8 report and the
//! planner consumes. Keeping profiling as an explicit step (rather than
//! querying [`CostModel`] inline everywhere) mirrors the paper's separation
//! of offline profiling from online execution and gives experiments a
//! single artifact to print.

use std::collections::BTreeMap;

use optimus_model::{ModelGraph, OpKind};
use serde::{Deserialize, Serialize};

use crate::cost::CostProvider;

/// Profiled statistics for one operation kind.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub struct OpKindProfile {
    /// Number of operations sampled.
    pub samples: usize,
    /// Mean structure-loading latency (s).
    pub mean_structure: f64,
    /// Mean weight-assignment latency (s).
    pub mean_assign: f64,
    /// Min/max structure-loading latency (s).
    pub min_structure: f64,
    /// Max structure-loading latency (s).
    pub max_structure: f64,
}

/// Profiled statistics for the meta-operators over one op kind.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub struct MetaOpProfile {
    /// Mean `Replace` latency (s).
    pub replace: f64,
    /// Mean same-kind `Reshape` latency (s), if any pair was sampled.
    pub reshape: f64,
    /// Mean `Reduce` latency (s).
    pub reduce: f64,
    /// Mean `Add` latency (s).
    pub add: f64,
    /// `Edge` latency (s).
    pub edge: f64,
}

/// Offline profiler: sweeps models and produces per-kind tables.
pub struct Profiler<'a, C: CostProvider> {
    cost: &'a C,
}

impl<'a, C: CostProvider> Profiler<'a, C> {
    /// Profiler over a cost provider.
    pub fn new(cost: &'a C) -> Self {
        Profiler { cost }
    }

    /// Profile operation-loading latency per kind over the given models
    /// (the paper's Figure 4, generalised to a model population).
    pub fn profile_ops(&self, models: &[&ModelGraph]) -> BTreeMap<OpKind, OpKindProfile> {
        let mut out: BTreeMap<OpKind, OpKindProfile> = BTreeMap::new();
        for model in models {
            for (_, op) in model.ops() {
                let s = self.cost.structure_cost(&op.attrs);
                let a = self.cost.assign_cost(&op.attrs);
                let e = out.entry(op.kind()).or_insert(OpKindProfile {
                    samples: 0,
                    mean_structure: 0.0,
                    mean_assign: 0.0,
                    min_structure: f64::INFINITY,
                    max_structure: 0.0,
                });
                e.samples += 1;
                e.mean_structure += s;
                e.mean_assign += a;
                e.min_structure = e.min_structure.min(s);
                e.max_structure = e.max_structure.max(s);
            }
        }
        for p in out.values_mut() {
            if p.samples > 0 {
                p.mean_structure /= p.samples as f64;
                p.mean_assign /= p.samples as f64;
            }
        }
        out
    }

    /// Profile meta-operator latency per kind over the given models (the
    /// paper's Figure 8): `Replace`/`Reduce`/`Add` averaged over every op
    /// of the kind, `Reshape` averaged over every same-kind op pair drawn
    /// from different models.
    pub fn profile_meta_ops(&self, models: &[&ModelGraph]) -> BTreeMap<OpKind, MetaOpProfile> {
        let mut per_kind: BTreeMap<OpKind, (MetaOpProfile, usize, usize)> = BTreeMap::new();
        for model in models {
            for (_, op) in model.ops() {
                let e = per_kind
                    .entry(op.kind())
                    .or_insert((MetaOpProfile::default(), 0, 0));
                e.0.replace += self.cost.replace_cost(&op.attrs);
                e.0.reduce += self.cost.reduce_cost(&op.attrs);
                e.0.add += self.cost.add_cost(&op.attrs);
                e.1 += 1;
            }
        }
        // Reshape pairs: first op of each kind in each model, all ordered
        // cross-model pairs (a bounded, deterministic sample).
        for (i, a) in models.iter().enumerate() {
            for (j, b) in models.iter().enumerate() {
                if i == j {
                    continue;
                }
                let mut seen_kind: BTreeMap<OpKind, ()> = BTreeMap::new();
                for (_, src) in a.ops() {
                    if seen_kind.contains_key(&src.kind()) {
                        continue;
                    }
                    if let Some((_, dst)) = b.ops().find(|(_, o)| o.kind() == src.kind()) {
                        if let Some(c) = self.cost.reshape_cost(&src.attrs, &dst.attrs) {
                            let e = per_kind.entry(src.kind()).or_insert((
                                MetaOpProfile::default(),
                                0,
                                0,
                            ));
                            e.0.reshape += c;
                            e.2 += 1;
                            seen_kind.insert(src.kind(), ());
                        }
                    }
                }
            }
        }
        per_kind
            .into_iter()
            .map(|(k, (mut p, n, r))| {
                if n > 0 {
                    p.replace /= n as f64;
                    p.reduce /= n as f64;
                    p.add /= n as f64;
                }
                if r > 0 {
                    p.reshape /= r as f64;
                }
                p.edge = self.cost.edge_cost();
                (k, p)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::CostModel;

    #[test]
    fn profiles_resnet50_op_kinds() {
        let model = optimus_zoo::resnet::resnet50();
        let cost = CostModel::default();
        let prof = Profiler::new(&cost).profile_ops(&[&model]);
        // Figure 4's headline facts reproduced on the profiled table.
        let conv = prof[&OpKind::Conv2d];
        let act = prof[&OpKind::Activation];
        assert!(conv.mean_structure > 8.0 * act.mean_structure);
        assert!(conv.mean_assign > 0.0);
        assert_eq!(act.mean_assign, 0.0);
        assert!(conv.max_structure > conv.min_structure);
    }

    #[test]
    fn meta_op_profile_ordering_matches_figure8() {
        let a = optimus_zoo::resnet::resnet50();
        let b = optimus_zoo::resnet::resnet101();
        let cost = CostModel::default();
        let prof = Profiler::new(&cost).profile_meta_ops(&[&a, &b]);
        let conv = prof[&OpKind::Conv2d];
        // Add (scratch) > Reshape > Replace path ordering for heavy kinds;
        // Reduce constant; Edge negligible.
        assert!(
            conv.add > conv.reshape,
            "add {} reshape {}",
            conv.add,
            conv.reshape
        );
        assert!(conv.add > conv.replace);
        assert!(conv.edge < conv.reduce);
    }
}
