//! Execution environments and platform-level latency profiles.

use optimus_model::ModelGraph;
use serde::{Deserialize, Serialize};

/// Hardware environment of a worker node (§8.1 / §8.5).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Environment {
    /// CPU-only server.
    Cpu,
    /// GPU-enabled server (NVIDIA Container Toolkit in the paper).
    ///
    /// Figure 16's finding: end-to-end latency is *longer* than CPU because
    /// of the high overhead of GPU runtime initialization and model loading
    /// onto the device, even though inference compute itself is faster.
    Gpu,
}

impl Environment {
    /// Multiplier on structure-loading costs (device placement overhead).
    pub fn load_multiplier(self) -> f64 {
        match self {
            Environment::Cpu => 1.0,
            Environment::Gpu => 1.35,
        }
    }

    /// Multiplier on weight-assignment costs (device memcpy bandwidth).
    pub fn assign_multiplier(self) -> f64 {
        match self {
            Environment::Cpu => 1.0,
            Environment::Gpu => 0.8,
        }
    }

    /// Multiplier on inference compute.
    pub fn compute_multiplier(self) -> f64 {
        match self {
            Environment::Cpu => 1.0,
            Environment::Gpu => 0.22,
        }
    }
}

/// Platform-level latencies that are not per-operation: container and
/// runtime initialization, and the inference-computation model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PlatformProfile {
    /// Environment these latencies describe.
    pub env: Environment,
    /// Creating a container sandbox from scratch (cold start, step 1 of
    /// Figure 1).
    pub sandbox_init: f64,
    /// Initializing the ML runtime inside the sandbox (framework import,
    /// and CUDA context creation on GPU).
    pub runtime_init: f64,
    /// Re-purposing a warm idle container for another function (Pagurus /
    /// Optimus path): no sandbox creation, only function-code swap.
    pub repurpose_overhead: f64,
    /// Base inference latency per request (request handling, batching=1).
    pub compute_base: f64,
    /// Inference latency per model parameter (a throughput proxy).
    pub compute_per_param: f64,
}

impl PlatformProfile {
    /// Calibrated profile for an environment.
    ///
    /// CPU: sandbox ≈ 0.5 s, runtime ≈ 0.55 s — so a VGG16 cold start is
    /// ≈ 1.05 s init + ≈ 2.6 s model load, putting model loading above 70 %
    /// of startup (Figure 1/2). GPU adds CUDA context creation to runtime
    /// init, making GPU cold starts slower end-to-end (Figure 16).
    pub fn new(env: Environment) -> Self {
        match env {
            Environment::Cpu => PlatformProfile {
                env,
                sandbox_init: 0.5,
                runtime_init: 0.55,
                repurpose_overhead: 0.12,
                compute_base: 0.02,
                compute_per_param: 1.6e-9,
            },
            Environment::Gpu => PlatformProfile {
                env,
                sandbox_init: 0.5,
                runtime_init: 3.2,
                repurpose_overhead: 0.12,
                compute_base: 0.01,
                compute_per_param: 1.6e-9 * Environment::Gpu.compute_multiplier(),
            },
        }
    }

    /// Full cold-start initialization latency (sandbox + runtime).
    pub fn cold_init(&self) -> f64 {
        self.sandbox_init + self.runtime_init
    }

    /// Inference-computation latency of one request on a model.
    pub fn compute_cost(&self, model: &ModelGraph) -> f64 {
        self.compute_base + self.compute_per_param * model.param_count() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gpu_runtime_init_dominates() {
        let cpu = PlatformProfile::new(Environment::Cpu);
        let gpu = PlatformProfile::new(Environment::Gpu);
        assert!(gpu.cold_init() > 2.0 * cpu.cold_init());
    }

    #[test]
    fn repurpose_is_much_cheaper_than_cold_init() {
        let p = PlatformProfile::new(Environment::Cpu);
        assert!(p.repurpose_overhead < p.cold_init() / 5.0);
    }

    #[test]
    fn gpu_compute_is_faster() {
        let cpu = PlatformProfile::new(Environment::Cpu);
        let gpu = PlatformProfile::new(Environment::Gpu);
        // Any model: per-param rate is strictly smaller on GPU.
        assert!(gpu.compute_per_param < cpu.compute_per_param);
    }
}
