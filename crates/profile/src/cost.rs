//! The parametric latency cost model.

use optimus_model::{ModelGraph, OpAttrs, OpKind, Operation};
use serde::{Deserialize, Serialize};

use crate::env::Environment;

/// Version of the calibrated cost model.
///
/// Persisted plan artifacts embed this number: a plan computed against one
/// calibration must not be replayed against another, so loaders reject
/// artifacts whose cost-model version differs (the same contract as
/// `SNAPSHOT_VERSION` for repository snapshots). Bump whenever
/// [`CostParams`] defaults or the cost formulas change.
pub const COST_MODEL_VERSION: u32 = 1;

/// Cost interface consumed by the planner and the simulator.
///
/// All costs are in seconds of simulated latency. Implementations must be
/// deterministic: the planner caches plans computed offline from these
/// numbers (§4.4 Module 3).
pub trait CostProvider {
    /// Latency to instantiate an operation's *structure* (graph-node
    /// creation and variable allocation, without assigning weight values).
    fn structure_cost(&self, attrs: &OpAttrs) -> f64;

    /// Latency to assign an operation's weight values into an existing
    /// structure (the memcpy-like final step of loading).
    fn assign_cost(&self, attrs: &OpAttrs) -> f64;

    /// `Replace` meta-operator: overwrite weights in place.
    fn replace_cost(&self, dst: &OpAttrs) -> f64;

    /// `Reshape` meta-operator: morph `src` into `dst`'s shape.
    ///
    /// Returns `None` when the pair is not reshape-compatible (different
    /// kinds — §4.4's first observation: cross-kind transformation either
    /// is impossible or costs more than loading from scratch).
    fn reshape_cost(&self, src: &OpAttrs, dst: &OpAttrs) -> Option<f64>;

    /// `Reduce` meta-operator: delete an operation (constant — Figure 8).
    fn reduce_cost(&self, src: &OpAttrs) -> f64;

    /// `Add` meta-operator: create a destination op from scratch
    /// (structure + weight assignment).
    fn add_cost(&self, dst: &OpAttrs) -> f64 {
        self.structure_cost(dst) + self.assign_cost(dst)
    }

    /// `Edge` meta-operator: rewire one data-flow edge (negligible).
    fn edge_cost(&self) -> f64;

    /// Latency to deserialize a model file (negligible — Figure 3).
    fn deserialize_cost(&self, model: &ModelGraph) -> f64;

    /// Full scratch-load latency of a model:
    /// deserialize + Σ structure + Σ assign.
    fn model_load_cost(&self, model: &ModelGraph) -> f64 {
        self.load_breakdown(model).total()
    }

    /// Loading latency split into the paper's Figure 3 components.
    fn load_breakdown(&self, model: &ModelGraph) -> LoadBreakdown {
        let mut structure = 0.0;
        let mut assign = 0.0;
        for (_, op) in model.ops() {
            structure += self.structure_cost(&op.attrs);
            assign += self.assign_cost(&op.attrs);
        }
        LoadBreakdown {
            deserialize: self.deserialize_cost(model),
            structure,
            assign,
        }
    }

    /// The cheapest way to turn `src` into a structurally/weight-identical
    /// copy of `dst` *in place*: free when identical, `Replace` when only
    /// weights differ, `Reshape`+`Replace` when shapes differ within a
    /// kind, `None` across kinds.
    fn substitute_cost(&self, src: &Operation, dst: &Operation) -> Option<f64> {
        if src.kind() != dst.kind() {
            return None;
        }
        if src.attrs == dst.attrs {
            let same_weights = match (&src.weights, &dst.weights) {
                (None, None) => true,
                (Some(a), Some(b)) => a.id() == b.id(),
                _ => false,
            };
            if same_weights {
                // Identical operation: nothing to do (cost of a lookup).
                return Some(0.0);
            }
            if src.kind().has_weights() {
                return Some(self.replace_cost(&dst.attrs));
            }
            return Some(0.0);
        }
        let reshape = self.reshape_cost(&src.attrs, &dst.attrs)?;
        let replace = if dst.kind().has_weights() {
            self.replace_cost(&dst.attrs)
        } else {
            0.0
        };
        Some(reshape + replace)
    }
}

/// Calibrated parameters of the cost model. All times in seconds, all
/// per-byte rates in seconds/byte.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CostParams {
    /// Per-kind structure-instantiation constant for heavy, weight-bearing
    /// kinds (CONV).
    pub k_conv: f64,
    /// Structure constant for dense/projection kinds.
    pub k_dense: f64,
    /// Structure constant for normalisation kinds.
    pub k_norm: f64,
    /// Structure constant for embeddings.
    pub k_embedding: f64,
    /// Structure constant for weight-free kinds (activation, pool, add…).
    pub k_light: f64,
    /// Structure cost per weight byte (variable allocation).
    pub c_struct: f64,
    /// Weight-assignment cost per byte (memcpy-like).
    pub c_assign: f64,
    /// `Replace` fixed overhead.
    pub k_replace: f64,
    /// `Reshape` fixed overhead.
    pub k_reshape: f64,
    /// `Reshape` per-byte rate when the operation grows.
    pub c_reshape_grow: f64,
    /// `Reshape` per-byte rate when the operation shrinks.
    pub c_reshape_shrink: f64,
    /// `Reduce` constant.
    pub k_reduce: f64,
    /// `Edge` constant.
    pub k_edge: f64,
    /// Deserialization fixed cost.
    pub k_deser: f64,
    /// Deserialization per-byte rate.
    pub c_deser: f64,
}

impl Default for CostParams {
    fn default() -> Self {
        // Calibration. k_conv and c_struct are tied by Figure 4's
        // CONV(3x3,512) / CONV(3x3,64) = 1.7867 ratio:
        //   c_struct = 0.7867·k_conv / (w512 − 1.7867·w64) bytes
        // with w512 = 2.36M·4 B and w64 = 36.9K·4 B  ⇒  c_struct ≈
        // 0.0857·k_conv per MB. k_conv = 30 ms gives c_struct ≈ 2.57 ns/B.
        CostParams {
            k_conv: 0.030,
            k_dense: 0.035,
            k_norm: 0.015,
            k_embedding: 0.030,
            k_light: 0.003,
            c_struct: 2.57e-9,
            c_assign: 1.0e-9,
            k_replace: 0.0005,
            k_reshape: 0.002,
            c_reshape_grow: 1.2e-9,
            c_reshape_shrink: 0.4e-9,
            k_reduce: 0.001,
            k_edge: 0.00005,
            k_deser: 0.001,
            c_deser: 5.0e-11,
        }
    }
}

/// Figure 3's decomposition of model loading.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LoadBreakdown {
    /// Deserializing the model file.
    pub deserialize: f64,
    /// Loading the model structure.
    pub structure: f64,
    /// Assigning weights into the structure.
    pub assign: f64,
}

impl LoadBreakdown {
    /// Total loading latency.
    pub fn total(&self) -> f64 {
        self.deserialize + self.structure + self.assign
    }

    /// Fraction of the total spent loading structure.
    pub fn structure_fraction(&self) -> f64 {
        self.structure / self.total()
    }

    /// Fraction of the total spent assigning weights.
    pub fn assign_fraction(&self) -> f64 {
        self.assign / self.total()
    }
}

/// The calibrated cost model for one execution environment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CostModel {
    params: CostParams,
    env: Environment,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel::new(Environment::Cpu)
    }
}

impl CostModel {
    /// Cost model for an environment with default calibration.
    pub fn new(env: Environment) -> Self {
        CostModel {
            params: CostParams::default(),
            env,
        }
    }

    /// Cost model with explicit parameters.
    pub fn with_params(env: Environment, params: CostParams) -> Self {
        CostModel { params, env }
    }

    /// The environment this model describes.
    pub fn environment(&self) -> Environment {
        self.env
    }

    /// Calibrated parameters.
    pub fn params(&self) -> &CostParams {
        &self.params
    }

    fn kind_constant(&self, kind: OpKind) -> f64 {
        let p = &self.params;
        match kind {
            OpKind::Conv2d => p.k_conv,
            OpKind::Dense | OpKind::Query | OpKind::Key | OpKind::Value | OpKind::AttnOutput => {
                p.k_dense
            }
            OpKind::BatchNorm | OpKind::LayerNorm => p.k_norm,
            OpKind::Embedding | OpKind::PosEmbedding => p.k_embedding,
            // Input is a placeholder; everything else is a light op.
            OpKind::Input => p.k_light * 0.5,
            _ => p.k_light,
        }
    }

    fn weight_bytes(attrs: &OpAttrs) -> f64 {
        (attrs.weight_count() * 4) as f64
    }
}

impl CostProvider for CostModel {
    fn structure_cost(&self, attrs: &OpAttrs) -> f64 {
        let base =
            self.kind_constant(attrs.kind()) + self.params.c_struct * Self::weight_bytes(attrs);
        base * self.env.load_multiplier()
    }

    fn assign_cost(&self, attrs: &OpAttrs) -> f64 {
        self.params.c_assign * Self::weight_bytes(attrs) * self.env.assign_multiplier()
    }

    fn replace_cost(&self, dst: &OpAttrs) -> f64 {
        (self.params.k_replace + self.params.c_assign * Self::weight_bytes(dst))
            * self.env.assign_multiplier()
    }

    fn reshape_cost(&self, src: &OpAttrs, dst: &OpAttrs) -> Option<f64> {
        if src.kind() != dst.kind() {
            return None;
        }
        let sb = Self::weight_bytes(src);
        let db = Self::weight_bytes(dst);
        let rate = if db >= sb {
            self.params.c_reshape_grow
        } else {
            self.params.c_reshape_shrink
        };
        // Cost scales with the magnitude of the change plus a term for the
        // destination representation, matching Figure 8's observation that
        // Reshape depends on the destination operation's shape change.
        let magnitude = (db - sb).abs() + 0.25 * db.min(sb);
        Some((self.params.k_reshape + rate * magnitude) * self.env.load_multiplier())
    }

    fn reduce_cost(&self, _src: &OpAttrs) -> f64 {
        self.params.k_reduce * self.env.load_multiplier()
    }

    fn edge_cost(&self) -> f64 {
        self.params.k_edge
    }

    fn deserialize_cost(&self, model: &ModelGraph) -> f64 {
        self.params.k_deser + self.params.c_deser * model.byte_size() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use optimus_model::Padding;

    fn conv(inc: usize, outc: usize, k: usize) -> OpAttrs {
        OpAttrs::Conv2d {
            in_channels: inc,
            out_channels: outc,
            kernel: (k, k),
            stride: (1, 1),
            padding: Padding::Same,
            groups: 1,
            bias: false,
        }
    }

    #[test]
    fn figure4_conv_ratio_is_calibrated() {
        // CONV 3×3/512 loads 78.67% slower than CONV 3×3/64 (Figure 4).
        let m = CostModel::default();
        let small = m.structure_cost(&conv(64, 64, 3));
        let large = m.structure_cost(&conv(512, 512, 3));
        let ratio = large / small;
        assert!(
            (ratio - 1.7867).abs() < 0.02,
            "conv512/conv64 ratio {ratio:.4}, paper says 1.7867"
        );
    }

    #[test]
    fn figure4_conv_is_order_of_magnitude_slower_than_activation() {
        let m = CostModel::default();
        let act = m.structure_cost(&OpAttrs::Activation {
            kind: optimus_model::Activation::Relu,
        });
        let cv = m.structure_cost(&conv(64, 64, 3));
        let ratio = cv / act;
        assert!((8.0..=15.0).contains(&ratio), "conv/act ratio {ratio:.1}");
    }

    #[test]
    fn figure5c_reshape_is_fraction_of_scratch_load() {
        // Reshaping a CONV into another CONV costs roughly a third of
        // loading the destination from scratch (Figure 5c).
        let m = CostModel::default();
        let src = conv(64, 64, 1);
        let dst = conv(64, 64, 5);
        let reshape = m.reshape_cost(&src, &dst).unwrap();
        let scratch = m.add_cost(&dst);
        let frac = reshape / scratch;
        assert!(
            frac < 0.5,
            "reshape/add = {frac:.2}, should be well below 1"
        );
        assert!(frac > 0.05, "reshape suspiciously free: {frac:.3}");
    }

    #[test]
    fn shrinking_reshape_cheaper_than_growing() {
        // §8.2: transforming large→small is faster than small→large.
        let m = CostModel::default();
        let small = conv(64, 64, 3);
        let large = conv(512, 512, 3);
        let grow = m.reshape_cost(&small, &large).unwrap();
        let shrink = m.reshape_cost(&large, &small).unwrap();
        assert!(shrink < grow, "shrink {shrink} !< grow {grow}");
    }

    #[test]
    fn cross_kind_reshape_is_rejected() {
        let m = CostModel::default();
        let c = conv(8, 8, 3);
        let d = OpAttrs::Dense {
            in_features: 8,
            out_features: 8,
            bias: false,
        };
        assert!(m.reshape_cost(&c, &d).is_none());
        assert!(m.reshape_cost(&d, &c).is_none());
    }

    #[test]
    fn replace_scales_with_destination_bytes() {
        let m = CostModel::default();
        let small = m.replace_cost(&conv(64, 64, 3));
        let large = m.replace_cost(&conv(512, 512, 3));
        assert!(large > small * 10.0, "replace {large} vs {small}");
    }

    #[test]
    fn reduce_is_constant_and_edge_negligible() {
        let m = CostModel::default();
        assert_eq!(
            m.reduce_cost(&conv(8, 8, 1)),
            m.reduce_cost(&conv(512, 512, 7))
        );
        assert!(m.edge_cost() < m.reduce_cost(&conv(8, 8, 1)) / 5.0);
    }

    #[test]
    fn substitute_identical_ops_is_free() {
        let m = CostModel::default();
        let op = Operation::with_seeded_weights("c", conv(8, 8, 3), 7);
        assert_eq!(m.substitute_cost(&op, &op.clone()), Some(0.0));
    }

    #[test]
    fn substitute_same_shape_different_weights_is_replace() {
        let m = CostModel::default();
        let a = Operation::with_seeded_weights("c", conv(8, 8, 3), 7);
        let b = Operation::with_seeded_weights("c", conv(8, 8, 3), 8);
        let cost = m.substitute_cost(&a, &b).unwrap();
        assert!((cost - m.replace_cost(&b.attrs)).abs() < 1e-12);
    }

    #[test]
    fn substitute_cross_kind_is_none() {
        let m = CostModel::default();
        let a = Operation::with_seeded_weights("c", conv(8, 8, 3), 7);
        let b = Operation::weightless(
            "r",
            OpAttrs::Activation {
                kind: optimus_model::Activation::Relu,
            },
        );
        assert!(m.substitute_cost(&a, &b).is_none());
    }

    #[test]
    fn gpu_environment_loads_slower_but_assigns_faster() {
        let cpu = CostModel::new(Environment::Cpu);
        let gpu = CostModel::new(Environment::Gpu);
        let attrs = conv(64, 64, 3);
        assert!(gpu.structure_cost(&attrs) > cpu.structure_cost(&attrs));
        assert!(gpu.assign_cost(&attrs) < cpu.assign_cost(&attrs));
    }
}
