//! Online profiling (§6 "Online Profiling" — the paper's future work).
//!
//! Offline profiles go stale when container load or resource allocation
//! changes: "transformation plans generated based on outdated offline
//! profiling may be inefficient". [`OnlineCostModel`] wraps any base
//! [`CostProvider`] and continuously corrects it from observed execution
//! times: each observation of a meta-operator or loading step updates an
//! exponentially-weighted per-kind multiplier, so predictions track the
//! environment while staying smooth under noise.

use std::collections::HashMap;

use optimus_model::{ModelGraph, OpAttrs, OpKind};
use parking_lot::RwLock;

use crate::cost::CostProvider;

/// Which latency family an observation corrects.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ObservationKind {
    /// Structure-loading latency of an op kind.
    Structure(OpKind),
    /// Weight-assignment latency of an op kind.
    Assign(OpKind),
    /// `Replace` meta-operator latency of an op kind.
    Replace(OpKind),
    /// `Reshape` meta-operator latency of an op kind.
    Reshape(OpKind),
}

/// A [`CostProvider`] that learns per-kind correction multipliers online.
///
/// Thread-safe: the simulator can feed observations from many nodes while
/// planners read predictions.
pub struct OnlineCostModel<C: CostProvider> {
    base: C,
    /// EWMA smoothing factor in `(0, 1]`: weight of the newest sample.
    alpha: f64,
    multipliers: RwLock<HashMap<ObservationKind, f64>>,
}

impl<C: CostProvider> OnlineCostModel<C> {
    /// Wrap a base model with the given EWMA smoothing factor.
    ///
    /// # Panics
    ///
    /// Panics when `alpha` is outside `(0, 1]`.
    pub fn new(base: C, alpha: f64) -> Self {
        assert!(alpha > 0.0 && alpha <= 1.0, "alpha must be in (0, 1]");
        OnlineCostModel {
            base,
            alpha,
            multipliers: RwLock::new(HashMap::new()),
        }
    }

    /// Record an observed latency for a predicted one; updates the
    /// correction multiplier for that observation kind.
    ///
    /// Observations with non-positive predictions are ignored (nothing to
    /// scale).
    pub fn observe(&self, kind: ObservationKind, predicted: f64, observed: f64) {
        if predicted <= 0.0 || !observed.is_finite() || observed < 0.0 {
            return;
        }
        let sample = observed / predicted;
        let mut mult = self.multipliers.write();
        let m = mult.entry(kind).or_insert(1.0);
        *m = (1.0 - self.alpha) * *m + self.alpha * sample;
    }

    /// Current correction multiplier for an observation kind (1.0 when no
    /// observation has arrived yet).
    pub fn multiplier(&self, kind: ObservationKind) -> f64 {
        self.multipliers.read().get(&kind).copied().unwrap_or(1.0)
    }

    /// Number of observation kinds with learned corrections.
    pub fn learned_kinds(&self) -> usize {
        self.multipliers.read().len()
    }

    fn scaled(&self, kind: ObservationKind, value: f64) -> f64 {
        value * self.multiplier(kind)
    }
}

impl<C: CostProvider> CostProvider for OnlineCostModel<C> {
    fn structure_cost(&self, attrs: &OpAttrs) -> f64 {
        self.scaled(
            ObservationKind::Structure(attrs.kind()),
            self.base.structure_cost(attrs),
        )
    }

    fn assign_cost(&self, attrs: &OpAttrs) -> f64 {
        self.scaled(
            ObservationKind::Assign(attrs.kind()),
            self.base.assign_cost(attrs),
        )
    }

    fn replace_cost(&self, dst: &OpAttrs) -> f64 {
        self.scaled(
            ObservationKind::Replace(dst.kind()),
            self.base.replace_cost(dst),
        )
    }

    fn reshape_cost(&self, src: &OpAttrs, dst: &OpAttrs) -> Option<f64> {
        self.base
            .reshape_cost(src, dst)
            .map(|v| self.scaled(ObservationKind::Reshape(dst.kind()), v))
    }

    fn reduce_cost(&self, src: &OpAttrs) -> f64 {
        self.base.reduce_cost(src)
    }

    fn edge_cost(&self) -> f64 {
        self.base.edge_cost()
    }

    fn deserialize_cost(&self, model: &ModelGraph) -> f64 {
        self.base.deserialize_cost(model)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::CostModel;
    use optimus_model::Padding;

    fn conv() -> OpAttrs {
        OpAttrs::Conv2d {
            in_channels: 64,
            out_channels: 64,
            kernel: (3, 3),
            stride: (1, 1),
            padding: Padding::Same,
            groups: 1,
            bias: true,
        }
    }

    #[test]
    fn no_observations_means_base_predictions() {
        let online = OnlineCostModel::new(CostModel::default(), 0.3);
        let base = CostModel::default();
        assert_eq!(online.structure_cost(&conv()), base.structure_cost(&conv()));
        assert_eq!(online.learned_kinds(), 0);
    }

    #[test]
    fn converges_to_injected_drift() {
        // The environment becomes 2x slower for conv structure loading;
        // after enough observations the prediction tracks it.
        let online = OnlineCostModel::new(CostModel::default(), 0.3);
        let base = CostModel::default();
        let truth = 2.0 * base.structure_cost(&conv());
        for _ in 0..40 {
            let predicted = base.structure_cost(&conv());
            online.observe(ObservationKind::Structure(OpKind::Conv2d), predicted, truth);
        }
        let corrected = online.structure_cost(&conv());
        assert!(
            (corrected - truth).abs() / truth < 0.02,
            "corrected {corrected} vs truth {truth}"
        );
        // Other kinds are untouched.
        let act = OpAttrs::Activation {
            kind: optimus_model::Activation::Relu,
        };
        assert_eq!(online.structure_cost(&act), base.structure_cost(&act));
    }

    #[test]
    fn ewma_is_smooth_under_noise() {
        let online = OnlineCostModel::new(CostModel::default(), 0.1);
        let base = CostModel::default();
        let predicted = base.replace_cost(&conv());
        // Alternating 0.5x / 1.5x noise around the true 1.0x.
        for i in 0..100 {
            let noise = if i % 2 == 0 { 0.5 } else { 1.5 };
            online.observe(
                ObservationKind::Replace(OpKind::Conv2d),
                predicted,
                predicted * noise,
            );
        }
        let m = online.multiplier(ObservationKind::Replace(OpKind::Conv2d));
        assert!((m - 1.0).abs() < 0.15, "multiplier drifted to {m}");
    }

    #[test]
    fn invalid_observations_are_ignored() {
        let online = OnlineCostModel::new(CostModel::default(), 0.5);
        online.observe(ObservationKind::Assign(OpKind::Dense), 0.0, 1.0);
        online.observe(ObservationKind::Assign(OpKind::Dense), 1.0, f64::NAN);
        online.observe(ObservationKind::Assign(OpKind::Dense), 1.0, -1.0);
        assert_eq!(online.learned_kinds(), 0);
    }

    #[test]
    fn reshape_correction_applies() {
        let online = OnlineCostModel::new(CostModel::default(), 1.0);
        let base = CostModel::default();
        let small = conv();
        let large = OpAttrs::Conv2d {
            in_channels: 64,
            out_channels: 128,
            kernel: (5, 5),
            stride: (1, 1),
            padding: Padding::Same,
            groups: 1,
            bias: true,
        };
        let predicted = base.reshape_cost(&small, &large).unwrap();
        online.observe(
            ObservationKind::Reshape(OpKind::Conv2d),
            predicted,
            3.0 * predicted,
        );
        let corrected = online.reshape_cost(&small, &large).unwrap();
        assert!((corrected - 3.0 * predicted).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "alpha must be in")]
    fn bad_alpha_panics() {
        let _ = OnlineCostModel::new(CostModel::default(), 0.0);
    }
}
