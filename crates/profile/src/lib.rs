//! # optimus-profile — offline profiling and the latency cost model
//!
//! The paper's planner consumes *profiled costs* (§4.4 Module 1): the
//! measured execution time of loading each operation kind and of applying
//! each meta-operator. On the authors' testbed those numbers come from wall
//! clocks around a modified TensorFlow; here they come from a **parametric
//! latency model** calibrated to every quantitative observation the paper
//! reports:
//!
//! - model loading = deserialize (negligible) + structure loading (~90 %)
//!   + weight assignment (~10 %) — Insight 2 / Figure 3;
//! - per-op structure cost is dominated by a per-kind constant plus a
//!   weight-size term, so loading latency scales with *layer count*, not
//!   parameter count (ResNet loads as slowly as VGG despite 5× fewer
//!   parameters) — Insight 1 / Figure 2;
//! - a CONV loads ~10× slower than an activation, and a 3×3/512 CONV costs
//!   1.7867× a 3×3/64 CONV — Figure 4;
//! - reshaping an existing CONV costs roughly a third of loading it from
//!   scratch — Figure 5c;
//! - `Replace` scales with destination weight bytes, `Reshape` with the
//!   magnitude of the shape change (cheaper when shrinking), `Reduce` is a
//!   constant, `Edge` is negligible, `Add` pays the full scratch cost —
//!   Figure 8.
//!
//! Unit tests in this crate pin each of those invariants, so the
//! calibration cannot silently drift.
//!
//! The [`CostProvider`] trait is the interface the planner (`optimus-core`)
//! and the platform simulator (`optimus-sim`) consume; [`CostModel`] is the
//! calibrated implementation, parameterised by an [`Environment`]
//! (CPU or GPU — Figure 16).

mod cost;
mod env;
mod online;
mod profiler;

pub use cost::{CostModel, CostParams, CostProvider, LoadBreakdown, COST_MODEL_VERSION};
pub use env::{Environment, PlatformProfile};
pub use online::{ObservationKind, OnlineCostModel};
pub use profiler::{MetaOpProfile, OpKindProfile, Profiler};
