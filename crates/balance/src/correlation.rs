//! Demand-dynamics correlation (§5.1).

/// Pearson correlation coefficient of two equal-length demand histories.
///
/// This is exactly the paper's `K(A, B)` formula. Returns 0.0 for empty or
/// constant series (no co-movement information), and a value in `[-1, 1]`
/// otherwise. Low (negative) correlation means *complementary* demand —
/// the property the load balancer wants co-located functions to have.
///
/// # Panics
///
/// Panics when the series lengths differ.
pub fn pearson(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "demand histories must align");
    let n = a.len();
    if n == 0 {
        return 0.0;
    }
    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
    let (ma, mb) = (mean(a), mean(b));
    let mut cov = 0.0;
    let mut va = 0.0;
    let mut vb = 0.0;
    for i in 0..n {
        let da = a[i] - ma;
        let db = b[i] - mb;
        cov += da * db;
        va += da * da;
        vb += db * db;
    }
    if va == 0.0 || vb == 0.0 {
        return 0.0;
    }
    cov / (va.sqrt() * vb.sqrt())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_series_correlate_perfectly() {
        let a = [1.0, 2.0, 3.0, 4.0];
        assert!((pearson(&a, &a) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn opposite_series_anticorrelate() {
        let a = [1.0, 2.0, 3.0, 4.0];
        let b = [4.0, 3.0, 2.0, 1.0];
        assert!((pearson(&a, &b) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn constant_series_yield_zero() {
        let a = [5.0; 4];
        let b = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(pearson(&a, &b), 0.0);
        assert_eq!(pearson(&[], &[]), 0.0);
    }

    #[test]
    fn bounded_in_unit_interval() {
        let a = [0.1, 5.0, 2.0, 8.0, 1.0];
        let b = [2.0, 2.5, 9.0, 0.0, 4.0];
        let r = pearson(&a, &b);
        assert!((-1.0..=1.0).contains(&r));
        assert!((pearson(&a, &b) - pearson(&b, &a)).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "must align")]
    fn mismatched_lengths_panic() {
        let _ = pearson(&[1.0], &[1.0, 2.0]);
    }
}
