//! K-medoids clustering (PAM-style) over a precomputed distance matrix.
//!
//! Deterministic: greedy BUILD initialisation followed by alternating
//! assignment/update (Voronoi) iterations until fixpoint. Works on any
//! symmetric distance matrix — the load balancer feeds it the §5.1
//! edit-distance + correlation metric.

/// Result of a K-medoids run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KMedoidsResult {
    /// Indices of the chosen medoid points, one per cluster.
    pub medoids: Vec<usize>,
    /// Cluster index of every point.
    pub assignment: Vec<usize>,
}

/// Cluster `n` points into `k` clusters given an `n×n` distance matrix.
///
/// # Panics
///
/// Panics when the matrix is not square, `k == 0`, or `k > n`.
pub fn kmedoids(dist: &[Vec<f64>], k: usize, max_iter: usize) -> KMedoidsResult {
    let n = dist.len();
    assert!(k > 0, "k must be positive");
    assert!(k <= n, "k={k} exceeds point count {n}");
    for row in dist {
        assert_eq!(row.len(), n, "distance matrix must be square");
    }
    // BUILD: first medoid minimises total distance; subsequent medoids
    // greedily maximise cost reduction.
    let mut medoids: Vec<usize> = Vec::with_capacity(k);
    let first = (0..n)
        .min_by(|&a, &b| {
            let ca: f64 = (0..n).map(|j| dist[a][j]).sum();
            let cb: f64 = (0..n).map(|j| dist[b][j]).sum();
            ca.partial_cmp(&cb).expect("finite distances")
        })
        .expect("n >= k >= 1");
    medoids.push(first);
    while medoids.len() < k {
        let mut best: Option<(usize, f64)> = None;
        for cand in 0..n {
            if medoids.contains(&cand) {
                continue;
            }
            // Cost with cand added.
            let cost: f64 = (0..n)
                .map(|j| {
                    medoids
                        .iter()
                        .map(|&m| dist[m][j])
                        .chain(std::iter::once(dist[cand][j]))
                        .fold(f64::INFINITY, f64::min)
                })
                .sum();
            if best.is_none_or(|(_, bc)| cost < bc) {
                best = Some((cand, cost));
            }
        }
        medoids.push(best.expect("candidates remain").0);
    }
    // Alternate: assign points to the nearest medoid, then re-pick each
    // cluster's medoid as its cost-minimising member.
    let mut assignment = assign(dist, &medoids);
    for _ in 0..max_iter {
        let mut new_medoids = medoids.clone();
        for (c, nm) in new_medoids.iter_mut().enumerate() {
            let members: Vec<usize> = (0..n).filter(|&j| assignment[j] == c).collect();
            if members.is_empty() {
                continue;
            }
            *nm = *members
                .iter()
                .min_by(|&&a, &&b| {
                    let ca: f64 = members.iter().map(|&j| dist[a][j]).sum();
                    let cb: f64 = members.iter().map(|&j| dist[b][j]).sum();
                    ca.partial_cmp(&cb).expect("finite distances")
                })
                .expect("non-empty members");
        }
        let new_assignment = assign(dist, &new_medoids);
        if new_medoids == medoids && new_assignment == assignment {
            break;
        }
        medoids = new_medoids;
        assignment = new_assignment;
    }
    KMedoidsResult {
        medoids,
        assignment,
    }
}

fn assign(dist: &[Vec<f64>], medoids: &[usize]) -> Vec<usize> {
    (0..dist.len())
        .map(|j| {
            medoids
                .iter()
                .enumerate()
                .min_by(|(_, &a), (_, &b)| dist[a][j].partial_cmp(&dist[b][j]).expect("finite"))
                .map(|(c, _)| c)
                .expect("at least one medoid")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dist_from_points(points: &[f64]) -> Vec<Vec<f64>> {
        points
            .iter()
            .map(|a| points.iter().map(|b| (a - b).abs()).collect())
            .collect()
    }

    #[test]
    fn separates_obvious_clusters() {
        // Two tight groups on a line.
        let points = [0.0, 0.1, 0.2, 10.0, 10.1, 10.2];
        let r = kmedoids(&dist_from_points(&points), 2, 20);
        assert_eq!(r.assignment[0], r.assignment[1]);
        assert_eq!(r.assignment[1], r.assignment[2]);
        assert_eq!(r.assignment[3], r.assignment[4]);
        assert_eq!(r.assignment[4], r.assignment[5]);
        assert_ne!(r.assignment[0], r.assignment[3]);
    }

    #[test]
    fn k_equals_n_is_identity() {
        let points = [0.0, 1.0, 2.0];
        let r = kmedoids(&dist_from_points(&points), 3, 10);
        let mut clusters: Vec<usize> = r.assignment.clone();
        clusters.sort_unstable();
        clusters.dedup();
        assert_eq!(clusters.len(), 3);
    }

    #[test]
    fn k_one_groups_everything() {
        let points = [0.0, 5.0, 9.0];
        let r = kmedoids(&dist_from_points(&points), 1, 10);
        assert!(r.assignment.iter().all(|&c| c == 0));
        // Medoid of a line is the middle point.
        assert_eq!(r.medoids, vec![1]);
    }

    #[test]
    fn deterministic() {
        let points = [3.0, 1.0, 7.5, 2.2, 9.9, 0.4, 6.1];
        let d = dist_from_points(&points);
        let a = kmedoids(&d, 3, 50);
        let b = kmedoids(&d, 3, 50);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "exceeds point count")]
    fn k_larger_than_n_panics() {
        let _ = kmedoids(&dist_from_points(&[1.0]), 2, 5);
    }

    #[test]
    fn medoids_are_cluster_members() {
        let points = [0.0, 0.5, 4.0, 4.5, 8.0, 8.5];
        let r = kmedoids(&dist_from_points(&points), 3, 20);
        for (c, &m) in r.medoids.iter().enumerate() {
            assert_eq!(r.assignment[m], c, "medoid {m} not in its own cluster");
        }
    }
}
