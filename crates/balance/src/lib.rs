//! # optimus-balance — the model-sharing-aware load balancer (§5.1)
//!
//! Optimus places serverless ML functions onto worker nodes so that
//! functions on the same node have *similar model structures* (cheap
//! inter-function transformation) and *complementary demand dynamics*
//! (when one function is idle, another is busy, so idle donors exist).
//!
//! The §5.1 construction: treat each function as a point, define the
//! pairwise distance
//!
//! ```text
//! dist(A, B) = γ_d · D(A, B)  +  γ_k · K(A, B)
//! ```
//!
//! where `D` is the (normalised) model editing distance from the §4.4
//! planner and `K` is the Pearson correlation of the functions' historical
//! demand, then cluster with K-medoids and map clusters onto nodes.
//!
//! Baseline placements ([`hash_placement`], [`least_loaded_placement`])
//! reproduce the hash-based / resource-usage-based routing the paper says
//! existing systems use, for the ablation in the evaluation.

mod correlation;
mod kmedoids;
mod placement;

pub use correlation::pearson;
pub use kmedoids::{kmedoids, KMedoidsResult};
pub use placement::{
    failover_node, hash_placement, least_loaded_placement, spill_node, FunctionPoint,
    SharingAwareBalancer,
};
