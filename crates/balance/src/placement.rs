//! Function-to-node placement strategies.

use serde::{Deserialize, Serialize};

use crate::correlation::pearson;
use crate::kmedoids::kmedoids;

/// Count one placement run in the global registry
/// (`optimus_placement_total{strategy=...}`), with the number of
/// functions placed as a second counter so dashboards can distinguish
/// "ran once over 500 functions" from "ran 500 times".
fn count_placement(strategy: &str, functions: usize) {
    let registry = optimus_telemetry::global();
    registry
        .counter("optimus_placement_total", &[("strategy", strategy)])
        .inc();
    registry
        .counter(
            "optimus_placement_functions_total",
            &[("strategy", strategy)],
        )
        .add(functions as u64);
}

/// One serverless function as a clustering point: its model name plus its
/// historical demand (invocations per time slot).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FunctionPoint {
    /// Function / model name (the registry key for edit distances).
    pub name: String,
    /// Invocation counts per time slot.
    pub demand: Vec<f64>,
}

/// The §5.1 model-sharing-aware balancer.
///
/// `gamma_d` weighs the (normalised) model editing distance, `gamma_k` the
/// demand correlation; both in `[0, 1]` as in the paper.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SharingAwareBalancer {
    /// Weight of the model editing distance term.
    pub gamma_d: f64,
    /// Weight of the demand-correlation term.
    pub gamma_k: f64,
}

impl Default for SharingAwareBalancer {
    fn default() -> Self {
        SharingAwareBalancer {
            gamma_d: 0.7,
            gamma_k: 0.3,
        }
    }
}

impl SharingAwareBalancer {
    /// Pairwise distance matrix over functions.
    ///
    /// `edit_distance(a, b)` must return the transformation cost between
    /// the models of functions `a` and `b` (e.g.
    /// `ModelRepository::transform_latency`); it is normalised to `[0, 1]`
    /// by the maximum observed value. Correlation is mapped from `[-1, 1]`
    /// to `[0, 1]` so both terms share a scale.
    pub fn distance_matrix(
        &self,
        functions: &[FunctionPoint],
        edit_distance: &dyn Fn(&str, &str) -> f64,
    ) -> Vec<Vec<f64>> {
        let n = functions.len();
        let mut edit = vec![vec![0.0; n]; n];
        let mut max_edit: f64 = 0.0;
        for i in 0..n {
            for j in 0..n {
                if i != j {
                    // Symmetrise: transformation latency is asymmetric
                    // (§8.2), but a placement metric should not be.
                    let d = 0.5
                        * (edit_distance(&functions[i].name, &functions[j].name)
                            + edit_distance(&functions[j].name, &functions[i].name));
                    edit[i][j] = d;
                    max_edit = max_edit.max(d);
                }
            }
        }
        let mut dist = vec![vec![0.0; n]; n];
        for i in 0..n {
            for j in 0..n {
                if i == j {
                    continue;
                }
                let d_norm = if max_edit > 0.0 {
                    edit[i][j] / max_edit
                } else {
                    0.0
                };
                let corr = pearson(&functions[i].demand, &functions[j].demand);
                let k_norm = (corr + 1.0) / 2.0;
                dist[i][j] = self.gamma_d * d_norm + self.gamma_k * k_norm;
            }
        }
        dist
    }

    /// Place functions onto `nodes` nodes: K-medoids with `k = nodes`
    /// clusters (capped by the function count), clusters mapped to nodes.
    ///
    /// Returns the node index of every function.
    ///
    /// # Panics
    ///
    /// Panics when `nodes == 0` or `functions` is empty.
    pub fn place(
        &self,
        functions: &[FunctionPoint],
        edit_distance: &dyn Fn(&str, &str) -> f64,
        nodes: usize,
    ) -> Vec<usize> {
        assert!(nodes > 0, "need at least one node");
        assert!(!functions.is_empty(), "need at least one function");
        let k = nodes.min(functions.len());
        let dist = self.distance_matrix(functions, edit_distance);
        let result = kmedoids(&dist, k, 50);
        count_placement("sharing_aware", functions.len());
        result.assignment
    }
}

/// Hash-based placement: the routing existing serverless systems use
/// (§5.1) — a deterministic hash of the function name modulo node count.
pub fn hash_placement(functions: &[FunctionPoint], nodes: usize) -> Vec<usize> {
    assert!(nodes > 0, "need at least one node");
    count_placement("hash", functions.len());
    functions
        .iter()
        .map(|f| {
            let mut h: u64 = 0xCBF2_9CE4_8422_2325;
            for b in f.name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x100_0000_01B3);
            }
            (h % nodes as u64) as usize
        })
        .collect()
}

/// Resource-usage-based placement: greedily assign each function (heaviest
/// total demand first) to the currently least-loaded node.
pub fn least_loaded_placement(functions: &[FunctionPoint], nodes: usize) -> Vec<usize> {
    assert!(nodes > 0, "need at least one node");
    count_placement("least_loaded", functions.len());
    let mut order: Vec<usize> = (0..functions.len()).collect();
    let total = |f: &FunctionPoint| f.demand.iter().sum::<f64>();
    order.sort_by(|&a, &b| {
        total(&functions[b])
            .partial_cmp(&total(&functions[a]))
            .expect("finite demand")
            .then(functions[a].name.cmp(&functions[b].name))
    });
    let mut load = vec![0.0f64; nodes];
    let mut placement = vec![0usize; functions.len()];
    for idx in order {
        let node = (0..nodes)
            .min_by(|&a, &b| load[a].partial_cmp(&load[b]).expect("finite"))
            .expect("nodes > 0");
        placement[idx] = node;
        load[node] += total(&functions[idx]);
    }
    placement
}

/// Degraded-mode routing: pick a node for a request whose preferred node
/// may be down. Returns `preferred` when it is healthy; otherwise the
/// least-loaded healthy node (ties broken by the lower index, so the
/// choice is deterministic); `None` when the whole fleet is unhealthy and
/// the caller must queue or fail the request.
pub fn failover_node(
    preferred: usize,
    nodes: usize,
    mut healthy: impl FnMut(usize) -> bool,
    mut load: impl FnMut(usize) -> f64,
) -> Option<usize> {
    if preferred < nodes && healthy(preferred) {
        return Some(preferred);
    }
    (0..nodes)
        .filter(|&n| healthy(n))
        .map(|n| (n, load(n)))
        .min_by(|(a_node, a_load), (b_node, b_load)| {
            a_load
                .partial_cmp(b_load)
                .expect("finite load")
                .then(a_node.cmp(b_node))
        })
        .map(|(n, _)| n)
}

/// Elastic-fleet routing: like [`failover_node`], but a *saturated* home
/// node (all slots busy) spills to the least-loaded healthy unsaturated
/// node instead of queueing — the overflow path that makes freshly warmed
/// scale-out nodes absorb a flash crowd. Falls back to [`failover_node`]
/// semantics (queue at home) when every healthy node is saturated;
/// `None` when the whole fleet is unhealthy.
pub fn spill_node(
    preferred: usize,
    nodes: usize,
    mut healthy: impl FnMut(usize) -> bool,
    mut saturated: impl FnMut(usize) -> bool,
    mut load: impl FnMut(usize) -> f64,
) -> Option<usize> {
    if preferred < nodes && healthy(preferred) && !saturated(preferred) {
        return Some(preferred);
    }
    failover_node(preferred, nodes, |n| healthy(n) && !saturated(n), &mut load)
        .or_else(|| failover_node(preferred, nodes, healthy, load))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn func(name: &str, demand: &[f64]) -> FunctionPoint {
        FunctionPoint {
            name: name.into(),
            demand: demand.to_vec(),
        }
    }

    /// Edit distance that makes families {a*} and {b*} internally close.
    fn family_edit(a: &str, b: &str) -> f64 {
        if a.as_bytes()[0] == b.as_bytes()[0] {
            0.1
        } else {
            10.0
        }
    }

    #[test]
    fn clusters_by_model_family() {
        let funcs = vec![
            func("a1", &[1.0, 0.0, 1.0, 0.0]),
            func("a2", &[0.0, 1.0, 0.0, 1.0]),
            func("b1", &[1.0, 0.0, 1.0, 0.0]),
            func("b2", &[0.0, 1.0, 0.0, 1.0]),
        ];
        let balancer = SharingAwareBalancer::default();
        let placement = balancer.place(&funcs, &family_edit, 2);
        assert_eq!(placement[0], placement[1], "a-family co-located");
        assert_eq!(placement[2], placement[3], "b-family co-located");
        assert_ne!(placement[0], placement[2], "families separated");
    }

    #[test]
    fn correlation_term_separates_synchronized_functions() {
        // All same family; two demand phases. With gamma_d = 0 the balancer
        // must split by demand phase (anti-correlated together).
        let funcs = vec![
            func("a1", &[9.0, 0.0, 8.0, 0.0, 9.0, 0.1]),
            func("a2", &[9.5, 0.1, 8.2, 0.0, 9.1, 0.0]),
            func("a3", &[0.0, 9.0, 0.1, 8.0, 0.0, 9.0]),
            func("a4", &[0.1, 9.5, 0.0, 8.5, 0.0, 8.8]),
        ];
        let balancer = SharingAwareBalancer {
            gamma_d: 0.0,
            gamma_k: 1.0,
        };
        let dist = balancer.distance_matrix(&funcs, &|_, _| 1.0);
        let result = crate::kmedoids::kmedoids(&dist, 2, 50);
        // K-medoids minimises point-to-medoid distance; the chosen
        // clustering must beat the pathological one that co-locates the
        // synchronized pairs ({a1,a2} and {a3,a4} with medoids a1, a3).
        let objective = |assignment: &[usize], medoids: &[usize]| -> f64 {
            assignment
                .iter()
                .enumerate()
                .map(|(p, &c)| dist[medoids[c]][p])
                .sum()
        };
        let got = objective(&result.assignment, &result.medoids);
        let bad = objective(&[0, 0, 1, 1], &[0, 2]);
        assert!(
            got < bad,
            "correlation-aware objective {got:.3} should beat synchronized \
             co-location {bad:.3}"
        );
    }

    #[test]
    fn hash_placement_is_deterministic_and_in_range() {
        let funcs = vec![func("x", &[1.0]), func("y", &[1.0]), func("z", &[1.0])];
        let p1 = hash_placement(&funcs, 2);
        let p2 = hash_placement(&funcs, 2);
        assert_eq!(p1, p2);
        assert!(p1.iter().all(|&n| n < 2));
    }

    #[test]
    fn least_loaded_balances_total_demand() {
        let funcs = vec![
            func("heavy", &[100.0]),
            func("mid", &[50.0]),
            func("small1", &[30.0]),
            func("small2", &[20.0]),
        ];
        let p = least_loaded_placement(&funcs, 2);
        // heavy alone vs mid+small1+small2 = 100 vs 100.
        let load0: f64 = funcs
            .iter()
            .zip(&p)
            .filter(|(_, &n)| n == 0)
            .map(|(f, _)| f.demand[0])
            .sum();
        let load1: f64 = 200.0 - load0;
        assert!((load0 - load1).abs() <= 40.0, "loads {load0} vs {load1}");
    }

    #[test]
    fn failover_prefers_home_then_least_loaded_healthy() {
        let loads = [5.0, 1.0, 3.0];
        // Healthy home node wins regardless of load.
        assert_eq!(
            failover_node(0, 3, |_| true, |n| loads[n]),
            Some(0),
            "healthy preferred node is kept"
        );
        // Down home node falls over to the least-loaded healthy node.
        assert_eq!(failover_node(0, 3, |n| n != 0, |n| loads[n]), Some(1));
        // Equal loads break ties toward the lower index.
        assert_eq!(failover_node(2, 3, |n| n != 2, |_| 0.0), Some(0));
        // Whole fleet down: nothing to route to.
        assert_eq!(failover_node(1, 3, |_| false, |n| loads[n]), None);
        // Out-of-range preferred node still falls over safely.
        assert_eq!(failover_node(9, 3, |_| true, |n| loads[n]), Some(1));
    }

    #[test]
    fn spill_routes_saturated_home_to_warm_extras() {
        let loads = [8.0, 2.0, 0.0];
        // Healthy unsaturated home keeps the request.
        assert_eq!(spill_node(0, 3, |_| true, |_| false, |n| loads[n]), Some(0));
        // Saturated home spills to the least-loaded unsaturated node.
        assert_eq!(
            spill_node(0, 3, |_| true, |n| n == 0, |n| loads[n]),
            Some(2)
        );
        // Everything saturated: queue at home (failover semantics).
        assert_eq!(spill_node(0, 3, |_| true, |_| true, |n| loads[n]), Some(0));
        // Saturated home, only an unhealthy node free: spill skips it.
        assert_eq!(
            spill_node(0, 3, |n| n != 2, |n| n == 0, |n| loads[n]),
            Some(1)
        );
        // Whole fleet unhealthy.
        assert_eq!(spill_node(0, 3, |_| false, |_| false, |n| loads[n]), None);
    }

    #[test]
    fn single_node_degenerates() {
        let funcs = vec![func("a", &[1.0]), func("b", &[2.0])];
        let balancer = SharingAwareBalancer::default();
        assert!(balancer
            .place(&funcs, &|_, _| 1.0, 1)
            .iter()
            .all(|&n| n == 0));
        assert!(hash_placement(&funcs, 1).iter().all(|&n| n == 0));
        assert!(least_loaded_placement(&funcs, 1).iter().all(|&n| n == 0));
    }
}
