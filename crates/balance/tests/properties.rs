//! Property-based tests of K-medoids and the placement strategies.

use optimus_balance::{
    hash_placement, kmedoids, least_loaded_placement, pearson, FunctionPoint, SharingAwareBalancer,
};
use proptest::prelude::*;

fn arb_distance_matrix() -> impl Strategy<Value = Vec<Vec<f64>>> {
    // Random points on a line → symmetric metric matrix.
    prop::collection::vec(0.0f64..100.0, 3..20).prop_map(|points| {
        points
            .iter()
            .map(|a| points.iter().map(|b| (a - b).abs()).collect())
            .collect()
    })
}

fn arb_functions() -> impl Strategy<Value = Vec<FunctionPoint>> {
    prop::collection::vec(prop::collection::vec(0.0f64..10.0, 6), 2..15).prop_map(|demands| {
        demands
            .into_iter()
            .enumerate()
            .map(|(i, demand)| FunctionPoint {
                name: format!("f{i}"),
                demand,
            })
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// K-medoids always returns a valid clustering: every point assigned,
    /// medoids are members of their own clusters, k clusters referenced.
    #[test]
    fn kmedoids_output_is_valid(dist in arb_distance_matrix(), kk in 1usize..5) {
        let n = dist.len();
        let k = kk.min(n);
        let r = kmedoids(&dist, k, 30);
        prop_assert_eq!(r.assignment.len(), n);
        prop_assert_eq!(r.medoids.len(), k);
        prop_assert!(r.assignment.iter().all(|&c| c < k));
        for (c, &m) in r.medoids.iter().enumerate() {
            prop_assert!(m < n);
            prop_assert_eq!(r.assignment[m], c, "medoid outside its cluster");
        }
        // Every point sits with its nearest medoid.
        for p in 0..n {
            let assigned = dist[r.medoids[r.assignment[p]]][p];
            for &m in &r.medoids {
                prop_assert!(assigned <= dist[m][p] + 1e-9);
            }
        }
    }

    /// Pearson correlation is symmetric and bounded.
    #[test]
    fn pearson_symmetric_bounded(
        a in prop::collection::vec(-100.0f64..100.0, 2..50),
        b_seed in any::<u64>(),
    ) {
        let b: Vec<f64> = a
            .iter()
            .enumerate()
            .map(|(i, v)| v * ((b_seed >> (i % 60)) & 1) as f64 + i as f64)
            .collect();
        let r1 = pearson(&a, &b);
        let r2 = pearson(&b, &a);
        prop_assert!((r1 - r2).abs() < 1e-9);
        prop_assert!((-1.0 - 1e-9..=1.0 + 1e-9).contains(&r1));
    }

    /// Every placement strategy assigns all functions to valid nodes and
    /// is deterministic.
    #[test]
    fn placements_valid_and_deterministic(funcs in arb_functions(), nodes in 1usize..5) {
        let edit = |a: &str, b: &str| (a.len() as f64 - b.len() as f64).abs() + 1.0;
        let balancer = SharingAwareBalancer::default();
        let p1 = balancer.place(&funcs, &edit, nodes);
        let p2 = balancer.place(&funcs, &edit, nodes);
        prop_assert_eq!(&p1, &p2);
        prop_assert_eq!(p1.len(), funcs.len());
        prop_assert!(p1.iter().all(|&n| n < nodes));

        let h = hash_placement(&funcs, nodes);
        prop_assert!(h.iter().all(|&n| n < nodes));
        let l = least_loaded_placement(&funcs, nodes);
        prop_assert!(l.iter().all(|&n| n < nodes));
    }

    /// Least-loaded placement never leaves a node empty while another
    /// holds two or more functions... unless there are fewer functions
    /// than nodes (greedy balance property on total demand).
    #[test]
    fn least_loaded_spreads(funcs in arb_functions(), nodes in 1usize..4) {
        let p = least_loaded_placement(&funcs, nodes);
        if funcs.len() >= nodes {
            let mut counts = vec![0usize; nodes];
            for &n in &p {
                counts[n] += 1;
            }
            prop_assert!(
                counts.iter().all(|&c| c > 0),
                "empty node with {} functions on {} nodes: {counts:?}",
                funcs.len(),
                nodes
            );
        }
    }
}
