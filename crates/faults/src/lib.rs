//! # optimus-faults — deterministic fault injection + resilience primitives
//!
//! The paper's safeguard (§6.3) promises Optimus is *never worse than a
//! cold start*, but that guarantee is only meaningful if it holds when
//! things break: a node crashes mid-trace, a container is OOM-killed, a
//! transformation step fails, a weight fetch straggles or must be retried,
//! a loaded checkpoint is corrupt and has to be re-read. This crate is the
//! shared vocabulary for injecting exactly those failures — **seeded and
//! deterministic**, so a chaos sweep is as reproducible as a clean run —
//! and for describing the resilience policies (bounded retry with
//! exponential backoff) the rest of the workspace implements in response.
//!
//! Design constraints that shaped the API:
//!
//! - **Per-request draws are stateless.** [`FaultInjector::for_request`]
//!   derives every fault decision for request `i` from `(seed, i)` alone
//!   (one throwaway [`StdRng`] per request, fixed draw order). Two
//!   consequences: the same trace position sees the same faults under
//!   *every* policy — so a policy comparison at a given fault rate is
//!   apples-to-apples — and draws are independent of sweep-thread count
//!   and evaluation order, preserving the workspace's byte-identical
//!   parallel-sweep contract.
//! - **Zero-rate is the identity.** With all rates at zero,
//!   [`FaultInjector::for_request`] returns [`RequestFaults::none`], whose
//!   arithmetic (`×1.0` slowdown, `+0.0` backoff, one attempt, zero
//!   reloads) is bit-exact identity on `f64`. Callers can therefore apply
//!   fault math unconditionally on the hot path and still reproduce
//!   faults-off reports byte-for-byte.
//! - **Scheduled + stochastic.** Besides per-request rates, a
//!   [`FaultPlan`] carries an explicit schedule of node-level events
//!   ([`ScheduledFault`]) for tests that need "node 1 dies at t=300"
//!   precision; [`FaultInjector::due`] drains it in time order.
//!
//! The simulator threads [`RequestFaults`] through its event loop and
//! audits the safeguard invariant per request; the live gateway uses the
//! same injector to kill workers and force transform failures, and
//! [`RetryPolicy`] to bound its reply-channel retries. [`FaultStats`] /
//! [`FaultReport`] aggregate what was injected and what the resilience
//! machinery did about it.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Golden-ratio odd constant used to decorrelate per-request seeds.
const SEED_MIX: u64 = 0x9E37_79B9_7F4A_7C15;

/// Bounded retry with exponential backoff, used for weight fetches in the
/// simulator's transport model and for worker-reply retries in the live
/// gateway.
///
/// Attempt numbering: attempt `0` is the initial try (no backoff);
/// attempt `k ≥ 1` is the `k`-th retry, preceded by a backoff of
/// `base_backoff_seconds × backoff_multiplier^(k-1)`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RetryPolicy {
    /// Total attempts allowed (initial try + retries). Must be ≥ 1.
    pub max_attempts: u32,
    /// Backoff before the first retry, in seconds.
    pub base_backoff_seconds: f64,
    /// Multiplier applied to the backoff for each subsequent retry.
    pub backoff_multiplier: f64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 3,
            base_backoff_seconds: 0.05,
            backoff_multiplier: 2.0,
        }
    }
}

impl RetryPolicy {
    /// Backoff (seconds) slept *before* attempt `attempt`. Attempt 0 is
    /// the initial try and sleeps nothing.
    #[must_use]
    pub fn backoff_before(&self, attempt: u32) -> f64 {
        if attempt == 0 {
            0.0
        } else {
            self.base_backoff_seconds * self.backoff_multiplier.powi(attempt as i32 - 1)
        }
    }

    /// Total backoff accumulated across `attempts` attempts (the sum of
    /// [`Self::backoff_before`] for attempts `0..attempts`). One attempt
    /// — the success-first-try case — accumulates `0.0` exactly.
    #[must_use]
    pub fn total_backoff(&self, attempts: u32) -> f64 {
        let mut total = 0.0;
        for attempt in 1..attempts {
            total += self.backoff_before(attempt);
        }
        total
    }

    /// Check invariants: at least one attempt, non-negative base backoff,
    /// multiplier ≥ 1 (backoffs never shrink).
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated invariant.
    pub fn validate(&self) -> Result<(), String> {
        if self.max_attempts < 1 {
            return Err("retry.max_attempts must be >= 1".to_string());
        }
        if !self.base_backoff_seconds.is_finite() || self.base_backoff_seconds < 0.0 {
            return Err("retry.base_backoff_seconds must be finite and >= 0".to_string());
        }
        if !self.backoff_multiplier.is_finite() || self.backoff_multiplier < 1.0 {
            return Err("retry.backoff_multiplier must be finite and >= 1".to_string());
        }
        Ok(())
    }
}

/// Rates and magnitudes of the injected faults, plus the retry policy the
/// resilience machinery answers them with. `Copy` so it can ride inside
/// sim/serve config structs without ceremony.
///
/// All `*_rate` fields are per-request probabilities in `[0, 1]`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FaultSpec {
    /// Seed for every stochastic draw. Same seed ⇒ same faults.
    pub seed: u64,
    /// Probability a request's home node crashes at its arrival instant.
    pub node_crash_rate: f64,
    /// Seconds a crashed node stays down before rejoining the fleet.
    pub recovery_seconds: f64,
    /// Probability a warm container on the routed node is killed just
    /// before the request is served (OOM-killer stand-in).
    pub container_kill_rate: f64,
    /// Probability a transformation step fails mid-flight, forcing the
    /// safeguard to escalate the request to a from-scratch load.
    pub transform_failure_rate: f64,
    /// Seconds of transform work wasted before a failure is detected
    /// (the abort cost the escalated request still pays).
    pub transform_abort_seconds: f64,
    /// Probability a weight fetch straggles (slow network/disk path).
    pub fetch_straggler_rate: f64,
    /// Transport-time multiplier applied to a straggling fetch (≥ 1).
    pub straggler_slowdown: f64,
    /// Probability a single fetch attempt fails outright and must be
    /// retried under [`FaultSpec::retry`].
    pub fetch_failure_rate: f64,
    /// Probability a loaded checkpoint is corrupt and must be re-read
    /// (each re-read pays the load cost again).
    pub load_corruption_rate: f64,
    /// Bounded-retry policy for failed fetches and dead-worker retries.
    pub retry: RetryPolicy,
}

impl Default for FaultSpec {
    fn default() -> Self {
        FaultSpec {
            seed: 42,
            node_crash_rate: 0.0,
            recovery_seconds: 30.0,
            container_kill_rate: 0.0,
            transform_failure_rate: 0.0,
            transform_abort_seconds: 0.05,
            fetch_straggler_rate: 0.0,
            straggler_slowdown: 4.0,
            fetch_failure_rate: 0.0,
            load_corruption_rate: 0.0,
            retry: RetryPolicy::default(),
        }
    }
}

impl FaultSpec {
    /// A spec that injects nothing (all rates zero) under `seed`.
    #[must_use]
    pub fn off(seed: u64) -> Self {
        FaultSpec {
            seed,
            ..FaultSpec::default()
        }
    }

    /// A spec where one knob scales every fault class together — the
    /// shape the `exp_chaos` sweep uses. `rate` is the probability of the
    /// most common faults (transform failure, fetch straggler); rarer and
    /// more destructive classes are scaled down from it so a 20% sweep
    /// point doesn't spend the whole trace with every node dead.
    #[must_use]
    pub fn uniform(seed: u64, rate: f64) -> Self {
        FaultSpec {
            seed,
            node_crash_rate: rate * 0.02,
            container_kill_rate: rate * 0.5,
            transform_failure_rate: rate,
            fetch_straggler_rate: rate,
            fetch_failure_rate: rate * 0.5,
            load_corruption_rate: rate * 0.25,
            ..FaultSpec::default()
        }
    }

    /// True when every stochastic rate is exactly zero — the injector is
    /// guaranteed to return [`RequestFaults::none`] for every request.
    #[must_use]
    pub fn is_quiet(&self) -> bool {
        self.node_crash_rate == 0.0
            && self.container_kill_rate == 0.0
            && self.transform_failure_rate == 0.0
            && self.fetch_straggler_rate == 0.0
            && self.fetch_failure_rate == 0.0
            && self.load_corruption_rate == 0.0
    }

    /// Check invariants: rates in `[0, 1]`, magnitudes finite and
    /// non-negative, slowdown ≥ 1, and a valid [`RetryPolicy`].
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated invariant.
    pub fn validate(&self) -> Result<(), String> {
        let rates = [
            ("node_crash_rate", self.node_crash_rate),
            ("container_kill_rate", self.container_kill_rate),
            ("transform_failure_rate", self.transform_failure_rate),
            ("fetch_straggler_rate", self.fetch_straggler_rate),
            ("fetch_failure_rate", self.fetch_failure_rate),
            ("load_corruption_rate", self.load_corruption_rate),
        ];
        for (name, rate) in rates {
            if !rate.is_finite() || !(0.0..=1.0).contains(&rate) {
                return Err(format!("{name} must be within [0, 1], got {rate}"));
            }
        }
        if !self.recovery_seconds.is_finite() || self.recovery_seconds < 0.0 {
            return Err("recovery_seconds must be finite and >= 0".to_string());
        }
        if !self.transform_abort_seconds.is_finite() || self.transform_abort_seconds < 0.0 {
            return Err("transform_abort_seconds must be finite and >= 0".to_string());
        }
        if !self.straggler_slowdown.is_finite() || self.straggler_slowdown < 1.0 {
            return Err("straggler_slowdown must be finite and >= 1".to_string());
        }
        self.retry.validate()
    }
}

/// The class of a scheduled (non-stochastic) fault event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FaultKind {
    /// The whole node goes down: containers lost, volatile store tiers
    /// wiped, requests re-routed until it recovers.
    NodeCrash,
    /// One warm container on the node is killed (its chunks released).
    ContainerKill,
}

/// One scheduled fault: `kind` strikes `node` at simulated time `at`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ScheduledFault {
    /// Simulated time (seconds) at which the fault strikes.
    pub at: f64,
    /// Target node index.
    pub node: usize,
    /// What happens to it.
    pub kind: FaultKind,
}

/// A complete, serializable description of the faults a run will see:
/// stochastic rates ([`FaultSpec`]) plus an explicit event schedule.
/// Lives inside `SimConfig` / `GatewayConfig`; `None` there means the
/// fault layer is fully disabled (not even identity math is audited).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    /// Stochastic per-request fault rates and magnitudes.
    pub spec: FaultSpec,
    /// Deterministic node-level events, drained in time order.
    pub schedule: Vec<ScheduledFault>,
}

impl FaultPlan {
    /// A plan with stochastic faults only (empty schedule).
    #[must_use]
    pub fn from_spec(spec: FaultSpec) -> Self {
        FaultPlan {
            spec,
            schedule: Vec::new(),
        }
    }

    /// True when the plan injects nothing: quiet spec and empty schedule.
    #[must_use]
    pub fn is_quiet(&self) -> bool {
        self.spec.is_quiet() && self.schedule.is_empty()
    }

    /// Validate the spec and every scheduled event (finite, non-negative
    /// timestamps).
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated invariant.
    pub fn validate(&self) -> Result<(), String> {
        self.spec.validate()?;
        for event in &self.schedule {
            if !event.at.is_finite() || event.at < 0.0 {
                return Err(format!(
                    "scheduled fault time must be finite and >= 0, got {}",
                    event.at
                ));
            }
        }
        Ok(())
    }
}

/// Every fault decision affecting one request, drawn up front so the
/// serving path can consume it without touching the RNG again. The
/// transport/load magnitudes (slowdown, backoff, reload count) are baked
/// in at draw time, making the struct self-contained and `Copy`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RequestFaults {
    /// The request's home node crashes at its arrival instant.
    pub node_crash: bool,
    /// A warm container on the routed node is killed before serving.
    pub container_kill: bool,
    /// Uniform draw in `[0, 1)` selecting *which* container dies.
    pub kill_pick: f64,
    /// The transformation step for this request fails mid-flight.
    pub transform_failure: bool,
    /// Fetch attempts performed (1 = clean first try).
    pub fetch_attempts: u32,
    /// Transport-time multiplier (1.0 unless this fetch straggles).
    pub fetch_slowdown: f64,
    /// Total retry backoff accumulated by the fetch, in seconds.
    pub fetch_backoff: f64,
    /// Times a corrupt checkpoint forces the load to be repeated.
    pub load_reloads: u32,
}

impl RequestFaults {
    /// The identity element: no faults, and every magnitude is exact
    /// identity math (`×1.0`, `+0.0`, one attempt, zero reloads), so
    /// applying it to a latency leaves the bits unchanged.
    #[must_use]
    pub fn none() -> Self {
        RequestFaults {
            node_crash: false,
            container_kill: false,
            kill_pick: 0.0,
            transform_failure: false,
            fetch_attempts: 1,
            fetch_slowdown: 1.0,
            fetch_backoff: 0.0,
            load_reloads: 0,
        }
    }

    /// Transport time after faults: each attempt re-pays the (possibly
    /// straggling) base transfer, plus accumulated retry backoff. A zero
    /// base stays exactly zero — nothing was fetched, so nothing can
    /// straggle or fail — and with no faults the result is bit-identical
    /// to `base`.
    #[must_use]
    pub fn transport_seconds(&self, base: f64) -> f64 {
        if base <= 0.0 {
            return base;
        }
        base * self.fetch_slowdown * f64::from(self.fetch_attempts) + self.fetch_backoff
    }

    /// Multiplier on the from-scratch load cost: 1 + one extra full load
    /// per corrupt read. Exactly `1.0` when nothing was corrupted.
    #[must_use]
    pub fn load_multiplier(&self) -> f64 {
        1.0 + f64::from(self.load_reloads)
    }

    /// Retries performed by the fetch (attempts beyond the first).
    #[must_use]
    pub fn fetch_retries(&self) -> u32 {
        self.fetch_attempts.saturating_sub(1)
    }

    /// True when this request's fetch drew the straggler slowdown.
    #[must_use]
    pub fn is_straggler(&self) -> bool {
        self.fetch_slowdown > 1.0
    }

    /// Map [`Self::kill_pick`] onto an index into a container list of
    /// length `len` (uniform; clamped so it is always in range).
    #[must_use]
    pub fn victim_index(&self, len: usize) -> usize {
        if len == 0 {
            return 0;
        }
        let idx = (self.kill_pick * len as f64) as usize;
        idx.min(len - 1)
    }
}

/// Draws per-request faults and drains the scheduled-event timeline.
///
/// Cloneable and cheap; the sim builds one per run, the gateway keeps one
/// behind its request-sequence counter. Only [`Self::due`] carries state
/// (the schedule cursor) — per-request draws are pure functions of
/// `(seed, index)`.
#[derive(Debug, Clone)]
pub struct FaultInjector {
    spec: FaultSpec,
    schedule: Vec<ScheduledFault>,
    cursor: usize,
}

impl FaultInjector {
    /// Build an injector from a plan. The schedule is sorted by time
    /// (ties broken by node then kind) so [`Self::due`] drains it in a
    /// deterministic order regardless of how the plan listed events.
    #[must_use]
    pub fn new(plan: &FaultPlan) -> Self {
        let mut schedule = plan.schedule.clone();
        schedule.sort_by(|a, b| {
            a.at.total_cmp(&b.at).then(a.node.cmp(&b.node)).then(
                (a.kind == FaultKind::ContainerKill).cmp(&(b.kind == FaultKind::ContainerKill)),
            )
        });
        FaultInjector {
            spec: plan.spec,
            schedule,
            cursor: 0,
        }
    }

    /// The stochastic spec this injector draws from.
    #[must_use]
    pub fn spec(&self) -> &FaultSpec {
        &self.spec
    }

    /// Draw every fault decision for request `index`. Pure in
    /// `(spec.seed, index)`: the same request position gets the same
    /// faults under any policy, thread count, or call order. With a quiet
    /// spec this is exactly [`RequestFaults::none`].
    #[must_use]
    pub fn for_request(&self, index: u64) -> RequestFaults {
        if self.spec.is_quiet() {
            return RequestFaults::none();
        }
        let mut rng = StdRng::seed_from_u64(self.spec.seed ^ index.wrapping_mul(SEED_MIX));
        // Fixed draw order; changing it changes every seeded outcome.
        let node_crash = rng.gen_bool(self.spec.node_crash_rate);
        let container_kill = rng.gen_bool(self.spec.container_kill_rate);
        let kill_pick: f64 = rng.gen();
        let transform_failure = rng.gen_bool(self.spec.transform_failure_rate);
        let straggler = rng.gen_bool(self.spec.fetch_straggler_rate);
        let mut fetch_attempts = 1u32;
        while fetch_attempts < self.spec.retry.max_attempts
            && rng.gen_bool(self.spec.fetch_failure_rate)
        {
            fetch_attempts += 1;
        }
        let mut load_reloads = 0u32;
        while load_reloads + 1 < self.spec.retry.max_attempts
            && rng.gen_bool(self.spec.load_corruption_rate)
        {
            load_reloads += 1;
        }
        RequestFaults {
            node_crash,
            container_kill,
            kill_pick,
            transform_failure,
            fetch_attempts,
            fetch_slowdown: if straggler {
                self.spec.straggler_slowdown
            } else {
                1.0
            },
            fetch_backoff: self.spec.retry.total_backoff(fetch_attempts),
            load_reloads,
        }
    }

    /// Scheduled faults that have become due at or before `now`, in time
    /// order. Each event is returned exactly once; the cursor advances.
    pub fn due(&mut self, now: f64) -> &[ScheduledFault] {
        let start = self.cursor;
        while self.cursor < self.schedule.len() && self.schedule[self.cursor].at <= now {
            self.cursor += 1;
        }
        &self.schedule[start..self.cursor]
    }

    /// Rewind the schedule cursor so the timeline can be replayed.
    pub fn reset(&mut self) {
        self.cursor = 0;
    }
}

/// Counters for what was injected and what the resilience machinery did
/// about it. Aggregated per run (sim) or served live at `/metrics`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultStats {
    /// Node crashes applied (stochastic + scheduled).
    pub node_crashes: u64,
    /// Containers killed directly (stochastic + scheduled kills).
    pub container_kills: u64,
    /// Containers lost as collateral of a node crash.
    pub crash_container_evictions: u64,
    /// Transformation steps that failed mid-flight.
    pub transform_failures: u64,
    /// Requests the safeguard escalated to a from-scratch load.
    pub safeguard_escalations: u64,
    /// Requests re-routed away from a down node.
    pub reroutes: u64,
    /// Fetches that drew the straggler slowdown.
    pub fetch_stragglers: u64,
    /// Fetch retry attempts performed (beyond each first try).
    pub fetch_retries: u64,
    /// Corrupt-checkpoint reloads performed.
    pub load_corruptions: u64,
}

impl FaultStats {
    /// Accumulate another stats block into this one.
    pub fn merge(&mut self, other: &FaultStats) {
        self.node_crashes += other.node_crashes;
        self.container_kills += other.container_kills;
        self.crash_container_evictions += other.crash_container_evictions;
        self.transform_failures += other.transform_failures;
        self.safeguard_escalations += other.safeguard_escalations;
        self.reroutes += other.reroutes;
        self.fetch_stragglers += other.fetch_stragglers;
        self.fetch_retries += other.fetch_retries;
        self.load_corruptions += other.load_corruptions;
    }
}

/// Per-run fault summary attached to a sim report when the fault layer is
/// enabled.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct FaultReport {
    /// What was injected / how the system responded.
    pub stats: FaultStats,
    /// Worst observed `optimus_latency − cold_equivalent_latency` over
    /// all Optimus-served requests (≤ 0 means the §6.3 safeguard held on
    /// every single request; 0.0 when no request was audited).
    pub max_over_cold: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn loud_spec(seed: u64) -> FaultSpec {
        FaultSpec::uniform(seed, 0.3)
    }

    #[test]
    fn quiet_spec_draws_identity() {
        let injector = FaultInjector::new(&FaultPlan::from_spec(FaultSpec::off(7)));
        for i in 0..256 {
            assert_eq!(injector.for_request(i), RequestFaults::none());
        }
    }

    #[test]
    fn draws_are_deterministic_and_seed_sensitive() {
        let a = FaultInjector::new(&FaultPlan::from_spec(loud_spec(1)));
        let b = FaultInjector::new(&FaultPlan::from_spec(loud_spec(1)));
        let c = FaultInjector::new(&FaultPlan::from_spec(loud_spec(2)));
        let mut diverged = false;
        for i in 0..512 {
            assert_eq!(a.for_request(i), b.for_request(i));
            diverged |= a.for_request(i) != c.for_request(i);
        }
        assert!(diverged, "different seeds should draw different faults");
    }

    #[test]
    fn draws_do_not_depend_on_call_order() {
        let injector = FaultInjector::new(&FaultPlan::from_spec(loud_spec(9)));
        let forward: Vec<_> = (0..64).map(|i| injector.for_request(i)).collect();
        let backward: Vec<_> = (0..64).rev().map(|i| injector.for_request(i)).collect();
        for (i, f) in forward.iter().enumerate() {
            assert_eq!(*f, backward[63 - i]);
        }
    }

    #[test]
    fn identity_transport_and_load_are_bit_exact() {
        let none = RequestFaults::none();
        for base in [0.0, 1.0e-9, 0.25, 3.75, 1.0e6] {
            assert_eq!(none.transport_seconds(base).to_bits(), base.to_bits());
        }
        assert_eq!(none.load_multiplier().to_bits(), 1.0f64.to_bits());
    }

    #[test]
    fn transport_zero_base_stays_zero() {
        let faults = RequestFaults {
            fetch_attempts: 3,
            fetch_slowdown: 4.0,
            fetch_backoff: 0.15,
            ..RequestFaults::none()
        };
        assert_eq!(faults.transport_seconds(0.0), 0.0);
        assert!(faults.transport_seconds(1.0) > 1.0);
    }

    #[test]
    fn transport_is_monotone_in_base() {
        let injector = FaultInjector::new(&FaultPlan::from_spec(loud_spec(13)));
        for i in 0..128 {
            let fx = injector.for_request(i);
            let mut prev = -1.0;
            for base in [0.0, 0.01, 0.5, 1.0, 10.0] {
                let t = fx.transport_seconds(base);
                assert!(t >= prev, "transport must be monotone in base");
                assert!(t >= base, "faults never make a fetch faster");
                prev = t;
            }
        }
    }

    #[test]
    fn backoff_schedule_is_exponential_and_bounded() {
        let retry = RetryPolicy::default();
        assert_eq!(retry.backoff_before(0), 0.0);
        assert!((retry.backoff_before(1) - 0.05).abs() < 1e-12);
        assert!((retry.backoff_before(2) - 0.10).abs() < 1e-12);
        assert_eq!(retry.total_backoff(1), 0.0);
        assert!((retry.total_backoff(3) - 0.15).abs() < 1e-12);
        let injector = FaultInjector::new(&FaultPlan::from_spec(loud_spec(21)));
        for i in 0..256 {
            let fx = injector.for_request(i);
            assert!(fx.fetch_attempts >= 1 && fx.fetch_attempts <= retry.max_attempts);
            assert!(fx.load_reloads < retry.max_attempts);
        }
    }

    #[test]
    fn victim_index_is_always_in_range() {
        let injector = FaultInjector::new(&FaultPlan::from_spec(loud_spec(33)));
        for i in 0..128 {
            let fx = injector.for_request(i);
            assert_eq!(fx.victim_index(0), 0);
            for len in 1..8 {
                assert!(fx.victim_index(len) < len);
            }
        }
    }

    #[test]
    fn validate_rejects_bad_specs() {
        assert!(FaultSpec::default().validate().is_ok());
        assert!(FaultSpec::uniform(1, 1.0).validate().is_ok());
        let spec = FaultSpec {
            node_crash_rate: 1.5,
            ..Default::default()
        };
        assert!(spec.validate().is_err());
        let spec = FaultSpec {
            straggler_slowdown: 0.5,
            ..Default::default()
        };
        assert!(spec.validate().is_err());
        let mut spec = FaultSpec::default();
        spec.retry.max_attempts = 0;
        assert!(spec.validate().is_err());
        let plan = FaultPlan {
            spec: FaultSpec::default(),
            schedule: vec![ScheduledFault {
                at: -1.0,
                node: 0,
                kind: FaultKind::NodeCrash,
            }],
        };
        assert!(plan.validate().is_err());
    }

    #[test]
    fn due_drains_in_time_order_and_resets() {
        let plan = FaultPlan {
            spec: FaultSpec::off(0),
            schedule: vec![
                ScheduledFault {
                    at: 5.0,
                    node: 1,
                    kind: FaultKind::NodeCrash,
                },
                ScheduledFault {
                    at: 1.0,
                    node: 0,
                    kind: FaultKind::ContainerKill,
                },
                ScheduledFault {
                    at: 5.0,
                    node: 0,
                    kind: FaultKind::NodeCrash,
                },
            ],
        };
        let mut injector = FaultInjector::new(&plan);
        assert!(injector.due(0.5).is_empty());
        let first = injector.due(1.0);
        assert_eq!(first.len(), 1);
        assert_eq!(first[0].node, 0);
        let rest = injector.due(10.0);
        assert_eq!(rest.len(), 2);
        assert_eq!(rest[0].node, 0);
        assert_eq!(rest[1].node, 1);
        assert!(injector.due(100.0).is_empty());
        injector.reset();
        assert_eq!(injector.due(10.0).len(), 3);
    }

    #[test]
    fn plan_serializes_round_trip() {
        let plan = FaultPlan {
            spec: loud_spec(77),
            schedule: vec![ScheduledFault {
                at: 120.0,
                node: 1,
                kind: FaultKind::NodeCrash,
            }],
        };
        let json = serde_json::to_string(&plan).expect("serialize");
        let back: FaultPlan = serde_json::from_str(&json).expect("deserialize");
        assert_eq!(back, plan);
    }

    #[test]
    fn quiet_detection() {
        assert!(FaultSpec::off(3).is_quiet());
        assert!(!loud_spec(3).is_quiet());
        assert!(FaultPlan::from_spec(FaultSpec::off(3)).is_quiet());
        let scheduled = FaultPlan {
            spec: FaultSpec::off(3),
            schedule: vec![ScheduledFault {
                at: 1.0,
                node: 0,
                kind: FaultKind::NodeCrash,
            }],
        };
        assert!(!scheduled.is_quiet());
    }
}
