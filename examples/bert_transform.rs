//! Transformer transformations (§5.2): the paper's two worked examples.
//!
//! ```sh
//! cargo run --release --example bert_transform
//! ```
//!
//! Example 1 — BERT-Base → BERT-Mini: reshape the reused attention
//! blocks' Q/K/V/O projections, remove redundant blocks.
//! Example 2 — BERT-SC → BERT-QA: add a fully connected layer and update
//! weights.

use optimus::core::{execute_plan, GroupPlanner, Planner};
use optimus::profile::{CostModel, CostProvider};
use optimus::zoo::{bert, BertConfig, BertSize, BertTask, BertVocab};

fn show_case(name: &str, src: optimus::model::ModelGraph, dst: optimus::model::ModelGraph) {
    let cost = CostModel::default();
    let plan = GroupPlanner.plan(&src, &dst, &cost);
    let load = cost.model_load_cost(&dst);
    println!("== {name}");
    println!(
        "   {} ({} ops) -> {} ({} ops)",
        src.name(),
        src.op_count(),
        dst.name(),
        dst.op_count()
    );
    println!(
        "   steps: replace x{} reshape x{} reduce x{} add x{} edge x{}",
        plan.cost.n_replace,
        plan.cost.n_reshape,
        plan.cost.n_reduce,
        plan.cost.n_add,
        plan.cost.n_edge
    );
    println!(
        "   transform {:.3} s vs scratch load {:.3} s  ({:.1}% saved)",
        plan.cost.total(),
        load,
        100.0 * (1.0 - plan.cost.total() / load)
    );
    let mut g = src.clone();
    let report = execute_plan(&mut g, &plan, &dst).expect("plan executes");
    assert!(g.structurally_equal(&dst));
    println!("   executed {} steps, verified ✓\n", report.steps_applied);
}

fn main() {
    // §5.2 Example 1: sizes. BERT-Base (12 blocks, 768 hidden) down to
    // BERT-Mini (4 blocks, 256 hidden) and back up.
    show_case(
        "Example 1a: BERT-Base -> BERT-Mini (reshape + reduce)",
        bert(BertConfig::new(BertSize::Base)),
        bert(BertConfig::new(BertSize::Mini)),
    );
    show_case(
        "Example 1b: BERT-Mini -> BERT-Base (reshape + add)",
        bert(BertConfig::new(BertSize::Mini)),
        bert(BertConfig::new(BertSize::Base)),
    );

    // §5.2 Example 2: downstream tasks. Sequence classification to
    // question answering adds a fully connected layer.
    show_case(
        "Example 2: BERT-SC -> BERT-QA (add an FC layer)",
        bert(BertConfig::new(BertSize::Base).task(BertTask::SequenceClassification)),
        bert(BertConfig::new(BertSize::Base).task(BertTask::QuestionAnswering)),
    );

    // §5.2 Case 1: embedding blocks of different sizes (Cased/Uncased).
    show_case(
        "Case 1: BERT-Cased -> BERT-Uncased (reshape the embedding)",
        bert(BertConfig::new(BertSize::Base).vocab(BertVocab::Cased)),
        bert(BertConfig::new(BertSize::Base).vocab(BertVocab::Uncased)),
    );

    // Contrast: CNN -> transformer always trips the safeguard (§8.2).
    let cost = CostModel::default();
    let cnn = optimus::zoo::resnet::resnet50();
    let b = bert(BertConfig::new(BertSize::Base));
    let plan = GroupPlanner.plan(&cnn, &b, &cost);
    let load = cost.model_load_cost(&b);
    println!("== Safeguard: ResNet50 -> BERT-Base");
    println!(
        "   transform {:.3} s vs load {:.3} s  -> the safeguard loads from scratch",
        plan.cost.total(),
        load
    );
    assert!(plan.cost.total() > 0.9 * load);
}
