//! The §5.1 model-sharing-aware load balancer in isolation.
//!
//! ```sh
//! cargo run --release --example load_balancer
//! ```
//!
//! Builds a function population with two model families and two demand
//! phases, then compares the placements produced by the sharing-aware
//! K-medoids balancer, hash routing, and least-loaded routing, scoring
//! each by the intra-node transformation affinity it creates.

use std::sync::Arc;

use optimus::balance::{
    hash_placement, least_loaded_placement, FunctionPoint, SharingAwareBalancer,
};
use optimus::core::{GroupPlanner, ModelRepository};
use optimus::profile::CostModel;

fn main() {
    // Model population: a VGG family and a BERT family.
    let repo = Arc::new(ModelRepository::new(Box::new(GroupPlanner)));
    let cost = CostModel::default();
    let mut models = vec![
        optimus::zoo::vgg::vgg11(),
        optimus::zoo::vgg::vgg13(),
        optimus::zoo::vgg::vgg16(),
        optimus::zoo::vgg::vgg19(),
    ];
    for cfg in [
        optimus::zoo::BertConfig::new(optimus::zoo::BertSize::Tiny),
        optimus::zoo::BertConfig::new(optimus::zoo::BertSize::Mini),
        optimus::zoo::BertConfig::new(optimus::zoo::BertSize::Small),
        optimus::zoo::BertConfig::new(optimus::zoo::BertSize::Base),
    ] {
        models.push(optimus::zoo::bert(cfg));
    }
    repo.register_all(models, &cost);

    // Demand histories: half the functions peak in the morning, half in
    // the evening — complementary pairs are good co-location candidates.
    let functions: Vec<FunctionPoint> = repo
        .model_names()
        .into_iter()
        .enumerate()
        .map(|(i, name)| {
            let morning = i % 2 == 0;
            let demand: Vec<f64> = (0..24)
                .map(|h| {
                    let peak = if morning { 9.0 } else { 20.0 };
                    (10.0 - (h as f64 - peak).abs()).max(0.0)
                })
                .collect();
            FunctionPoint { name, demand }
        })
        .collect();

    let edit = {
        let repo = repo.clone();
        move |a: &str, b: &str| repo.transform_latency(a, b).unwrap_or(f64::MAX / 4.0)
    };

    let nodes = 2;
    let sharing = SharingAwareBalancer::default().place(&functions, &edit, nodes);
    let hash = hash_placement(&functions, nodes);
    let least = least_loaded_placement(&functions, nodes);

    println!(
        "{:<22} {:>8} {:>8} {:>8}",
        "function", "sharing", "hash", "least"
    );
    for (i, f) in functions.iter().enumerate() {
        println!(
            "{:<22} {:>8} {:>8} {:>8}",
            f.name, sharing[i], hash[i], least[i]
        );
    }

    // Score: mean intra-node pairwise transformation latency (lower =
    // cheaper donors on the same node).
    let score = |placement: &[usize]| -> f64 {
        let mut total = 0.0;
        let mut pairs = 0usize;
        for i in 0..functions.len() {
            for j in 0..functions.len() {
                if i != j && placement[i] == placement[j] {
                    total += edit(&functions[i].name, &functions[j].name);
                    pairs += 1;
                }
            }
        }
        total / pairs.max(1) as f64
    };
    println!("\nmean intra-node transformation latency (lower is better):");
    println!("  sharing-aware: {:.3} s", score(&sharing));
    println!("  hash         : {:.3} s", score(&hash));
    println!("  least-loaded : {:.3} s", score(&least));
}
