//! Quickstart: transform the model inside a warm container instead of
//! loading the new model from scratch.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```
//!
//! Walks the full §4 pipeline on one request: a warm-but-idle container
//! holds VGG16; a request for VGG19 arrives; Optimus plans the
//! transformation offline, the safeguard compares it with a scratch load,
//! and the executor applies the meta-operators in place.

use optimus::core::{execute_plan, GroupPlanner, Planner};
use optimus::profile::{CostModel, CostProvider, Environment, PlatformProfile};

fn main() {
    let cost = CostModel::default();
    let plat = PlatformProfile::new(Environment::Cpu);

    // The model a warm container currently holds, and the model the next
    // request needs.
    let src = optimus::zoo::vgg::vgg16();
    let dst = optimus::zoo::vgg::vgg19();
    println!("container holds : {} ({} ops)", src.name(), src.op_count());
    println!(
        "request needs   : {} ({} ops)\n",
        dst.name(),
        dst.op_count()
    );

    // Offline planning (Module 2+: linear-time group-based planner).
    let plan = GroupPlanner.plan(&src, &dst, &cost);
    println!("plan: {} meta-operator steps", plan.steps.len());
    println!(
        "  replace x{:<3} reshape x{:<3} reduce x{:<3} add x{:<3} edge x{}",
        plan.cost.n_replace,
        plan.cost.n_reshape,
        plan.cost.n_reduce,
        plan.cost.n_add,
        plan.cost.n_edge
    );
    println!(
        "  planning took {:.3} ms (host time)\n",
        1e3 * plan.planning_seconds
    );

    // The §4.4 safeguard: transform only when cheaper than loading.
    let transform_latency = plan.cost.total();
    let scratch_latency = cost.model_load_cost(&dst);
    let cold_latency = plat.cold_init() + scratch_latency;
    println!("transformation  : {transform_latency:.3} s");
    println!("scratch load    : {scratch_latency:.3} s");
    println!("full cold start : {cold_latency:.3} s");
    assert!(
        transform_latency < scratch_latency,
        "safeguard would reject"
    );
    println!(
        "\n=> transformation saves {:.1}% vs a cold start\n",
        100.0 * (1.0 - (plat.repurpose_overhead + transform_latency) / cold_latency)
    );

    // Online execution: apply the meta-operators inside the container.
    let mut in_container = src.clone();
    let report = execute_plan(&mut in_container, &plan, &dst).expect("plan executes");
    assert!(in_container.structurally_equal(&dst));
    println!(
        "executed {} steps; container now serves '{}' (verified: {})",
        report.steps_applied,
        in_container.name(),
        report.verified
    );
}
