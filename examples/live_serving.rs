//! Live serving: the transformation mechanism running for real — threads
//! as containers, actual meta-operator execution, actual inference.
//!
//! ```sh
//! cargo run --release --example live_serving
//! ```
//!
//! Registers four small structurally similar CNNs, fires a mixed request
//! stream at the gateway, and reports per-request start kinds and measured
//! (wall-clock) latencies. Watch the `transformed` lines: those containers
//! had their model graphs rewritten in place by Replace/Reshape/Reduce/
//! Add/Edge and verified against the target before serving.

use optimus::model::tensor::Tensor;
use optimus::model::{Activation, GraphBuilder, ModelGraph, PoolKind};
use optimus::serve::{Gateway, GatewayConfig, ServedStart};

/// A small CNN the naive forward-pass engine can run in microseconds.
fn small_cnn(name: &str, channels: &[usize]) -> ModelGraph {
    let mut b = GraphBuilder::new(name);
    let mut x = b.input([1, 3, 16, 16]);
    let mut ch = 3;
    for &c in channels {
        x = b.conv2d_after(x, ch, c, (3, 3), (1, 1), 1);
        x = b.batchnorm_after(x, c);
        x = b.activation_after(x, Activation::Relu);
        ch = c;
    }
    let x = b.pool_after(x, PoolKind::Max, (2, 2), (2, 2));
    let x = b.global_avg_pool_after(x);
    let x = b.flatten_after(x);
    let _ = b.dense_after(x, ch, 10);
    b.finish().expect("valid example model")
}

fn main() {
    let config = GatewayConfig {
        nodes: 1,
        capacity_per_node: 2,
        idle_threshold: 0.0, // demo: containers idle immediately
        keep_alive: 60.0,
        ..GatewayConfig::default()
    };
    let gateway = Gateway::builder(config)
        .register_all(vec![
            small_cnn("cnn-narrow", &[8, 16]),
            small_cnn("cnn-wide", &[16, 32]),
            small_cnn("cnn-deep", &[8, 16, 24]),
            small_cnn("cnn-tiny", &[4]),
        ])
        .spawn();

    println!("registered models: {:?}\n", gateway.models());
    let stream = [
        "cnn-narrow",
        "cnn-wide",
        "cnn-narrow",
        "cnn-deep",
        "cnn-tiny",
        "cnn-wide",
        "cnn-deep",
        "cnn-narrow",
        "cnn-tiny",
        "cnn-wide",
    ];
    let mut transforms = 0;
    for (i, model) in stream.iter().enumerate() {
        let r = gateway
            .infer(model, Tensor::zeros([1, 3, 16, 16]))
            .expect("inference succeeds");
        let kind = match r.start {
            ServedStart::Warm => "warm       ",
            ServedStart::Cold => "cold       ",
            ServedStart::Transformed => {
                transforms += 1;
                "transformed"
            }
        };
        println!(
            "#{i:02} {model:<12} {kind}  startup {:7.3} ms ({} meta-ops)  infer {:6.3} ms  out {:?}",
            1e3 * r.startup_seconds,
            r.transform_steps,
            1e3 * r.compute_seconds,
            r.output.shape().dims(),
        );
    }
    assert!(transforms > 0, "the stream must exercise transformation");
    println!("\n{transforms} requests served by in-place model transformation.");
    gateway.shutdown();
}
