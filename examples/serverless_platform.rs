//! End-to-end serverless ML inference platform comparison.
//!
//! ```sh
//! cargo run --release --example serverless_platform
//! ```
//!
//! Registers a mixed CNN + BERT model population, generates an
//! Azure-Functions-style workload, runs the four systems the paper
//! compares (OpenWhisk, Pagurus, Tetris, Optimus) on the same trace, and
//! prints average service time, breakdowns and start-type fractions.

use std::sync::Arc;

use optimus::core::{GroupPlanner, ModelRepository};
use optimus::profile::CostModel;
use optimus::sim::{Platform, Policy, SimConfig, StartKind};
use optimus::workload::AzureTraceGenerator;

fn main() {
    // 1. Register the function population (models define costs and plans).
    let repo = Arc::new(ModelRepository::new(Box::new(GroupPlanner)));
    let cost = CostModel::default();
    let models = vec![
        optimus::zoo::vgg::vgg16(),
        optimus::zoo::vgg::vgg19(),
        optimus::zoo::resnet::resnet18(),
        optimus::zoo::resnet::resnet50(),
        optimus::zoo::resnet::resnet101(),
        optimus::zoo::densenet::densenet121(),
        optimus::zoo::mobilenet::mobilenet_v1(1.0, 0),
        optimus::zoo::mobilenet::mobilenet_v2(1.0, 0),
        optimus::zoo::xception::xception(),
        optimus::zoo::inception::inception_v1(),
        optimus::zoo::bert::bert(optimus::zoo::BertConfig::new(optimus::zoo::BertSize::Tiny)),
        optimus::zoo::bert::bert(optimus::zoo::BertConfig::new(optimus::zoo::BertSize::Mini)),
    ];
    println!(
        "registering {} models (computes the plan cache on a worker pool)...",
        models.len()
    );
    repo.register_all(models, &cost);
    let functions = repo.model_names();

    // 2. A production-like trace: 6 hours of Azure-style arrivals.
    let trace = AzureTraceGenerator::new(6.0 * 3600.0, 42).generate(&functions);
    println!(
        "trace: {} requests over 6 h across {} functions\n",
        trace.len(),
        functions.len()
    );

    // 3. Same trace, four systems, one small node to force pressure.
    let config = SimConfig {
        nodes: 1,
        capacity_per_node: 6,
        ..SimConfig::default()
    };
    println!(
        "{:<10} {:>9} {:>9} {:>7} {:>7} {:>7}",
        "system", "avg (s)", "p99 (s)", "cold", "xform", "warm"
    );
    for policy in Policy::ALL {
        let platform = Platform::new(config.clone(), policy, repo.clone());
        let report = platform.run(&trace);
        let frac = report.start_fractions();
        let get = |k: StartKind| frac.get(&k).copied().unwrap_or(0.0);
        println!(
            "{:<10} {:>9.3} {:>9.3} {:>6.1}% {:>6.1}% {:>6.1}%",
            policy.name(),
            report.avg_service_time(),
            report.percentile_service_time(99.0),
            100.0 * get(StartKind::Cold),
            100.0 * get(StartKind::Transform),
            100.0 * get(StartKind::Warm),
        );
    }
    println!("\nOptimus replaces cold starts with cheap in-container model transformations.");
}
