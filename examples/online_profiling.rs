//! Online profiling (§6 future work): keeping the planner's cost estimates
//! fresh when the environment drifts.
//!
//! ```sh
//! cargo run --release --example online_profiling
//! ```
//!
//! Scenario: the node becomes memory-bandwidth-starved, tripling the real
//! cost of weight-heavy `Replace` operations. Plans computed from the
//! stale offline profile mis-rank transformation against loading; the
//! [`OnlineCostModel`] observes executions, corrects its multipliers, and
//! the safeguard decision flips back to the truth.

use optimus::core::{GroupPlanner, Planner};
use optimus::model::OpKind;
use optimus::profile::{CostModel, CostProvider, ObservationKind, OnlineCostModel};

fn main() {
    let offline = CostModel::default();
    let online = OnlineCostModel::new(CostModel::default(), 0.25);

    // Ground truth after the drift: Replace is 3x slower than profiled
    // (e.g. the node is swapping), making weight-heavy transformations
    // less attractive than the offline profile believes.
    let drift = 3.0;

    let src = optimus::zoo::vgg::vgg_scaled(16, 1.0, 0);
    let dst = optimus::zoo::vgg::vgg_scaled(16, 1.0, 1); // weight variant: Replace-heavy plan

    let plan_offline = GroupPlanner.plan(&src, &dst, &offline);
    let true_cost = |replace_s: f64, rest: f64| drift * replace_s + rest;
    println!("offline profile:");
    println!(
        "  predicted transform {:.3} s, scratch load {:.3} s -> {}",
        plan_offline.cost.total(),
        offline.model_load_cost(&dst),
        verdict(plan_offline.cost.total(), offline.model_load_cost(&dst)),
    );
    let actual = true_cost(
        plan_offline.cost.replace,
        plan_offline.cost.total() - plan_offline.cost.replace,
    );
    println!(
        "  ACTUAL transform {:.3} s (Replace is {drift}x slower than profiled)",
        actual
    );

    // The system executes transformations and reports observed latencies.
    println!("\nfeeding 30 observations into the online profiler...");
    for _ in 0..30 {
        for kind in [OpKind::Conv2d, OpKind::Dense] {
            // Observed per-kind Replace latency = drift x prediction.
            let attrs_pred = match kind {
                OpKind::Conv2d => offline.replace_cost(&conv_attrs()),
                _ => offline.replace_cost(&dense_attrs()),
            };
            online.observe(
                ObservationKind::Replace(kind),
                attrs_pred,
                drift * attrs_pred,
            );
        }
    }
    println!(
        "  learned multipliers: Replace(conv2d) = {:.2}, Replace(dense) = {:.2}",
        online.multiplier(ObservationKind::Replace(OpKind::Conv2d)),
        online.multiplier(ObservationKind::Replace(OpKind::Dense)),
    );

    let plan_online = GroupPlanner.plan(&src, &dst, &online);
    println!("\nonline-corrected profile:");
    println!(
        "  predicted transform {:.3} s, scratch load {:.3} s -> {}",
        plan_online.cost.total(),
        online.model_load_cost(&dst),
        verdict(plan_online.cost.total(), online.model_load_cost(&dst)),
    );
    let err_offline = (plan_offline.cost.total() - actual).abs() / actual;
    let err_online = (plan_online.cost.total() - actual).abs() / actual;
    println!(
        "\nprediction error vs actual: offline {:.1}%, online {:.1}%",
        100.0 * err_offline,
        100.0 * err_online
    );
    assert!(err_online < err_offline);
}

fn verdict(transform: f64, load: f64) -> &'static str {
    if transform <= load {
        "TRANSFORM"
    } else {
        "LOAD (safeguard)"
    }
}

fn conv_attrs() -> optimus::model::OpAttrs {
    optimus::model::OpAttrs::Conv2d {
        in_channels: 256,
        out_channels: 256,
        kernel: (3, 3),
        stride: (1, 1),
        padding: optimus::model::Padding::Same,
        groups: 1,
        bias: true,
    }
}

fn dense_attrs() -> optimus::model::OpAttrs {
    optimus::model::OpAttrs::Dense {
        in_features: 4096,
        out_features: 4096,
        bias: true,
    }
}
