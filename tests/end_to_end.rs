//! Cross-crate integration tests: the full Optimus pipeline from model
//! zoo through planning, execution, load balancing and platform
//! simulation.

use std::sync::Arc;

use optimus::core::{execute_plan, GroupPlanner, ModelRepository, Planner};
use optimus::profile::{CostModel, CostProvider};
use optimus::sim::{PlacementStrategy, Platform, Policy, SimConfig, StartKind};
use optimus::workload::{AzureTraceGenerator, PoissonGenerator};

fn small_repo() -> Arc<ModelRepository> {
    let repo = ModelRepository::new(Box::new(GroupPlanner));
    let cost = CostModel::default();
    repo.register_all(
        vec![
            optimus::zoo::vgg::vgg11(),
            optimus::zoo::vgg::vgg16(),
            optimus::zoo::resnet::resnet18(),
            optimus::zoo::resnet::resnet50(),
            optimus::zoo::mobilenet::mobilenet_v1(1.0, 0),
            optimus::zoo::mobilenet::mobilenet_v1(0.5, 0),
        ],
        &cost,
    );
    Arc::new(repo)
}

#[test]
fn full_pipeline_poisson() {
    let repo = small_repo();
    let functions = repo.model_names();
    let trace = PoissonGenerator::new(0.01, 30_000.0, 3).generate(&functions);
    let config = SimConfig {
        nodes: 1,
        capacity_per_node: 3,
        placement: PlacementStrategy::Hash,
        ..SimConfig::default()
    };
    let mut avgs = Vec::new();
    for policy in Policy::ALL {
        let report = Platform::new(config.clone(), policy, repo.clone()).run(&trace);
        assert_eq!(report.len(), trace.len(), "{policy}: all requests served");
        assert!(
            report
                .records
                .iter()
                .all(|r| r.service_time().is_finite() && r.service_time() >= 0.0),
            "{policy}: finite non-negative latencies"
        );
        avgs.push((policy, report.avg_service_time()));
    }
    let get = |p: Policy| avgs.iter().find(|(q, _)| *q == p).expect("ran").1;
    assert!(
        get(Policy::Optimus) < get(Policy::OpenWhisk),
        "optimus {} !< openwhisk {}",
        get(Policy::Optimus),
        get(Policy::OpenWhisk)
    );
    assert!(get(Policy::Optimus) <= get(Policy::Pagurus) * 1.001);
}

#[test]
fn full_pipeline_azure_deterministic() {
    let repo = small_repo();
    let functions = repo.model_names();
    let trace = AzureTraceGenerator::new(20_000.0, 9).generate(&functions);
    let config = SimConfig {
        nodes: 2,
        capacity_per_node: 3,
        ..SimConfig::default()
    };
    let r1 = Platform::new(config.clone(), Policy::Optimus, repo.clone()).run(&trace);
    let r2 = Platform::new(config, Policy::Optimus, repo).run(&trace);
    assert_eq!(r1, r2, "same seed + config must reproduce exactly");
}

#[test]
fn optimus_transformations_match_cached_plans_end_to_end() {
    // Every Transform record under Optimus must cost either a cached plan
    // total or a scratch load (safeguard), never anything else.
    let repo = small_repo();
    let functions = repo.model_names();
    let trace = PoissonGenerator::new(0.005, 60_000.0, 11).generate(&functions);
    let config = SimConfig {
        nodes: 1,
        capacity_per_node: 3,
        placement: PlacementStrategy::Hash,
        ..SimConfig::default()
    };
    let report = Platform::new(config, Policy::Optimus, repo.clone()).run(&trace);
    let mut transforms = 0;
    for r in report
        .records
        .iter()
        .filter(|r| r.kind == StartKind::Transform)
    {
        transforms += 1;
        let load = repo.load_cost(&r.function).expect("registered");
        let matches_load = (r.load - load).abs() < 1e-9;
        let matches_a_plan = functions.iter().any(|src| {
            repo.plan(src, &r.function)
                .map(|p| (p.cost.total() - r.load).abs() < 1e-9)
                .unwrap_or(false)
        });
        assert!(
            matches_load || matches_a_plan,
            "transform load {} for {} matches neither a plan nor the scratch load",
            r.load,
            r.function
        );
    }
    assert!(transforms > 0, "the workload must exercise transformations");
}

#[test]
fn planned_transformation_roundtrip_through_facade() {
    let cost = CostModel::default();
    let src = optimus::zoo::mobilenet::mobilenet_v1(0.5, 0);
    let dst = optimus::zoo::mobilenet::mobilenet_v1(1.0, 0);
    let plan = GroupPlanner.plan(&src, &dst, &cost);
    assert!(plan.cost.total() < cost.model_load_cost(&dst));
    let mut g = src.clone();
    let report = execute_plan(&mut g, &plan, &dst).expect("plan executes");
    assert!(report.verified);
    assert_eq!(g.name(), "mobilenet_v1");
}

#[test]
fn transformed_graph_serializes_and_reloads() {
    let cost = CostModel::default();
    let src = optimus::zoo::vgg::vgg11();
    let dst = optimus::zoo::vgg::vgg13();
    let plan = GroupPlanner.plan(&src, &dst, &cost);
    let mut g = src.clone();
    execute_plan(&mut g, &plan, &dst).expect("plan executes");
    let json = optimus::model::serialize::to_json(&g).expect("serializes");
    let back = optimus::model::serialize::from_json(&json).expect("deserializes");
    assert!(back.structurally_equal(&dst));
}

#[test]
fn sharing_aware_balancer_beats_hash_for_optimus() {
    // The §5.1 ablation in miniature: with two structurally distinct
    // families, sharing-aware placement should give Optimus average
    // latency no worse than hash placement.
    let repo = {
        let repo = ModelRepository::new(Box::new(GroupPlanner));
        let cost = CostModel::default();
        let mut models = vec![
            optimus::zoo::vgg::vgg11(),
            optimus::zoo::vgg::vgg13(),
            optimus::zoo::vgg::vgg16(),
            optimus::zoo::vgg::vgg19(),
        ];
        for cfg in [
            optimus::zoo::BertConfig::new(optimus::zoo::BertSize::Tiny),
            optimus::zoo::BertConfig::new(optimus::zoo::BertSize::Mini),
            optimus::zoo::BertConfig::new(optimus::zoo::BertSize::Small),
            optimus::zoo::BertConfig::new(optimus::zoo::BertSize::Medium),
        ] {
            models.push(optimus::zoo::bert(cfg));
        }
        repo.register_all(models, &cost);
        Arc::new(repo)
    };
    let functions = repo.model_names();
    let trace = PoissonGenerator::new(0.008, 40_000.0, 21).generate(&functions);
    let run = |placement| {
        let config = SimConfig {
            nodes: 2,
            capacity_per_node: 2,
            placement,
            ..SimConfig::default()
        };
        Platform::new(config, Policy::Optimus, repo.clone())
            .run(&trace)
            .avg_service_time()
    };
    let sharing = run(PlacementStrategy::default());
    let hash = run(PlacementStrategy::Hash);
    assert!(
        sharing <= hash * 1.05,
        "sharing-aware {sharing:.3}s should not lose to hash {hash:.3}s"
    );
}

#[test]
fn all_extensions_compose() {
    // Sharing-aware placement + memory-aware capacity + predictive
    // prewarming, all at once, must still uphold the basic guarantees and
    // not regress plain Optimus.
    use optimus::sim::{MemoryLimit, PrewarmConfig};
    let repo = small_repo();
    let functions = repo.model_names();
    let trace = optimus::workload::AzureTraceGenerator::new(40_000.0, 3).generate(&functions);
    let base_config = SimConfig {
        nodes: 2,
        capacity_per_node: 3,
        ..SimConfig::default()
    };
    let full_config = SimConfig {
        nodes: 2,
        capacity_per_node: 16,
        memory: Some(MemoryLimit::gib(4)),
        prewarm: Some(PrewarmConfig::default()),
        ..SimConfig::default()
    };
    let base = Platform::new(base_config, Policy::Optimus, repo.clone()).run(&trace);
    let full = Platform::new(full_config, Policy::Optimus, repo.clone()).run(&trace);
    assert_eq!(full.len(), trace.len());
    for r in &full.records {
        assert!(r.service_time().is_finite() && r.service_time() >= 0.0);
        let scratch = repo.load_cost(&r.function).unwrap();
        assert!(r.load <= scratch + 1e-9, "safeguard holds under extensions");
    }
    // The extension stack should not be worse than the plain setup.
    assert!(
        full.avg_service_time() <= base.avg_service_time() * 1.05,
        "extensions {:.3}s vs base {:.3}s",
        full.avg_service_time(),
        base.avg_service_time()
    );
    // SLO view: extensions must serve at least as many requests within 1s.
    assert!(full.slo_attainment(1.0) + 1e-9 >= base.slo_attainment(1.0));
}
