//! `optimus-cli` — command-line driver for the Optimus library.
//!
//! ```text
//! optimus-cli list [<family>]              list catalog models
//! optimus-cli inspect <model>              model statistics
//! optimus-cli plan <src> <dst> [munkres]   plan a transformation
//! optimus-cli matrix <m1> <m2> [...]       transformation-latency matrix
//! optimus-cli dot <model>                  Graphviz DOT of a model graph
//! optimus-cli snapshot <m1,m2,...> <path>  register models, persist the
//!                                          plan cache to a JSON file
//! optimus-cli snapshot-info <path>         summarise a persisted snapshot
//! optimus-cli trace <path> [--workload poisson|azure] [--functions N]
//!                  [--rate R] [--duration S] [--seed K]
//!                                          generate a workload trace JSON
//! optimus-cli analyze [--functions N] [--duration S]
//!                                          workload pattern analysis
//! optimus-cli serve <m1,m2,...> [--port P] [--plan-cache <path>]
//!                                          start the live HTTP gateway;
//!                                          --plan-cache warm-loads and
//!                                          persists the plan artifact
//! optimus-cli simulate <m1,m2,...> [opts]  run the platform simulator
//!     opts: --policy <openwhisk|pagurus|tetris|optimus> (default optimus)
//!           --workload <poisson|azure>                  (default azure)
//!           --rate <req/s per function>                 (default 0.003)
//!           --duration <seconds>                        (default 21600)
//!           --nodes <n> --capacity <containers>         (default 2, 12)
//! ```
//!
//! Model names are catalog names (`optimus-cli list`), e.g. `vgg16`,
//! `resnet50`, `bert-base-uncased`, `mobilenet_v1-a0.50-v0`.

use std::process::ExitCode;
use std::sync::Arc;

use optimus::core::{GroupPlanner, ModelRepository, MunkresPlanner, Planner};
use optimus::model::{ModelGraph, ModelStats};
use optimus::profile::{CostModel, CostProvider};
use optimus::sim::{PlacementStrategy, Platform, Policy, SimConfig, StartKind};
use optimus::workload::{AzureTraceGenerator, PoissonGenerator, Trace};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("list") => cmd_list(args.get(1).map(String::as_str)),
        Some("inspect") => match args.get(1) {
            Some(name) => cmd_inspect(name),
            None => Err("usage: optimus-cli inspect <model>".into()),
        },
        Some("plan") => match (args.get(1), args.get(2)) {
            (Some(src), Some(dst)) => cmd_plan(src, dst, args.get(3).map(String::as_str)),
            _ => Err("usage: optimus-cli plan <src> <dst> [munkres]".into()),
        },
        Some("matrix") if args.len() >= 3 => cmd_matrix(&args[1..]),
        Some("analyze") => cmd_analyze(&args[1..]),
        Some("snapshot") => match (args.get(1), args.get(2)) {
            (Some(models), Some(path)) => cmd_snapshot(models, path),
            _ => Err("usage: optimus-cli snapshot <m1,m2,...> <path>".into()),
        },
        Some("snapshot-info") => match args.get(1) {
            Some(path) => cmd_snapshot_info(path),
            None => Err("usage: optimus-cli snapshot-info <path>".into()),
        },
        Some("trace") => match args.get(1) {
            Some(path) => cmd_trace(path, &args[2..]),
            None => Err("usage: optimus-cli trace <path> [opts]".into()),
        },
        Some("dot") => match args.get(1) {
            Some(name) => build(name).map(|g| print!("{}", optimus::model::dot::to_dot(&g))),
            None => Err("usage: optimus-cli dot <model>".into()),
        },
        Some("simulate") => match args.get(1) {
            Some(models) => cmd_simulate(models, &args[2..]),
            None => Err("usage: optimus-cli simulate <m1,m2,...> [opts]".into()),
        },
        Some("serve") => match args.get(1) {
            Some(models) => cmd_serve(models, &args[2..]),
            None => {
                Err("usage: optimus-cli serve <m1,m2,...> [--port P] [--plan-cache <path>]".into())
            }
        },
        _ => {
            eprintln!("{}", USAGE);
            return ExitCode::from(2);
        }
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str =
    "usage: optimus-cli <list|inspect|plan|matrix|dot|analyze|snapshot|serve|simulate> ...\n\
                     run `optimus-cli list` to see available models";

fn build(name: &str) -> Result<ModelGraph, String> {
    optimus::zoo::find(name)
        .map(|e| e.build())
        .ok_or_else(|| format!("unknown model '{name}' (try `optimus-cli list`)"))
}

fn cmd_list(family: Option<&str>) -> Result<(), String> {
    let mut shown = 0;
    for entry in optimus::zoo::catalog() {
        if let Some(f) = family {
            if !entry.family.name().eq_ignore_ascii_case(f) {
                continue;
            }
        }
        println!("{:<28} {}", entry.name, entry.family);
        shown += 1;
    }
    if shown == 0 {
        return Err(format!(
            "no models in family '{}'",
            family.unwrap_or("<any>")
        ));
    }
    eprintln!("\n{shown} models");
    Ok(())
}

fn cmd_inspect(name: &str) -> Result<(), String> {
    let model = build(name)?;
    let stats = ModelStats::of(&model);
    let cost = CostModel::default();
    let breakdown = cost.load_breakdown(&model);
    println!("model      : {}", stats.name);
    println!("family     : {}", model.family());
    println!(
        "operations : {} ({} weighted)",
        stats.ops, stats.weighted_ops
    );
    println!("edges      : {}", stats.edges);
    println!(
        "parameters : {:.1}M ({:.0} MB)",
        stats.params_millions(),
        stats.size_mib()
    );
    println!(
        "load cost  : {:.3} s (structure {:.1}%, weights {:.1}%)",
        breakdown.total(),
        100.0 * breakdown.structure_fraction(),
        100.0 * breakdown.assign_fraction()
    );
    println!("op histogram:");
    for (kind, count) in &stats.histogram.counts {
        println!("  {:<14} {}", kind.to_string(), count);
    }
    Ok(())
}

fn cmd_plan(src: &str, dst: &str, planner: Option<&str>) -> Result<(), String> {
    let s = build(src)?;
    let d = build(dst)?;
    let cost = CostModel::default();
    let plan = match planner {
        Some("munkres") => MunkresPlanner.plan(&s, &d, &cost),
        Some(other) if other != "group" => {
            return Err(format!("unknown planner '{other}' (group|munkres)"))
        }
        _ => GroupPlanner.plan(&s, &d, &cost),
    };
    let load = cost.model_load_cost(&d);
    println!("plan {} -> {} ({} planner)", src, dst, plan.planner);
    println!("  planning     : {:.3} ms", 1e3 * plan.planning_seconds);
    println!(
        "  steps        : replace x{} reshape x{} reduce x{} add x{} edge x{}",
        plan.cost.n_replace,
        plan.cost.n_reshape,
        plan.cost.n_reduce,
        plan.cost.n_add,
        plan.cost.n_edge
    );
    println!("  exec latency : {:.3} s", plan.cost.total());
    println!("  scratch load : {:.3} s", load);
    if plan.cost.total() <= load {
        println!(
            "  verdict      : TRANSFORM (saves {:.1}%)",
            100.0 * (1.0 - plan.cost.total() / load)
        );
    } else {
        println!("  verdict      : LOAD FROM SCRATCH (safeguard)");
    }
    Ok(())
}

fn cmd_matrix(names: &[String]) -> Result<(), String> {
    let cost = CostModel::default();
    let models: Vec<ModelGraph> = names.iter().map(|n| build(n)).collect::<Result<_, _>>()?;
    print!("{:<20}", "from \\ to");
    for m in &models {
        print!("{:>12}", truncate(m.name(), 12));
    }
    println!();
    for src in &models {
        print!("{:<20}", truncate(src.name(), 20));
        for dst in &models {
            let v = if src.name() == dst.name() {
                0.0
            } else if src.family().is_transformer() != dst.family().is_transformer() {
                cost.model_load_cost(dst)
            } else {
                let plan = GroupPlanner.plan(src, dst, &cost);
                plan.cost.total().min(cost.model_load_cost(dst))
            };
            print!("{:>12.3}", v);
        }
        println!();
    }
    print!("{:<20}", "LOAD");
    for dst in &models {
        print!("{:>12.3}", cost.model_load_cost(dst));
    }
    println!();
    Ok(())
}

fn cmd_analyze(opts: &[String]) -> Result<(), String> {
    let get = |flag: &str| -> Option<&str> {
        opts.iter()
            .position(|a| a == flag)
            .and_then(|i| opts.get(i + 1))
            .map(String::as_str)
    };
    let n: usize = get("--functions")
        .unwrap_or("30")
        .parse()
        .map_err(|e| format!("bad --functions: {e}"))?;
    let duration: f64 = get("--duration")
        .unwrap_or("172800")
        .parse()
        .map_err(|e| format!("bad --duration: {e}"))?;
    let names: Vec<String> = (0..n).map(|i| format!("f{i}")).collect();
    let trace = optimus::workload::AzureTraceGenerator::new(duration, 7).generate(&names);
    println!(
        "Azure-style trace: {} requests over {:.1} h across {} functions\n",
        trace.len(),
        duration / 3600.0,
        n
    );
    println!(
        "{:<8} {:>8} {:>10} {:>10} {:>8} {:>9}  pattern",
        "function", "count", "rate/s", "mean gap", "cv", "burst"
    );
    for s in optimus::workload::analyze_trace(&trace, 300.0) {
        println!(
            "{:<8} {:>8} {:>10.5} {:>9.1}s {:>8.2} {:>9.2}  {:?}",
            s.function,
            s.count,
            s.rate,
            s.mean_gap,
            s.cv_gap,
            s.burstiness,
            s.classify()
        );
    }
    Ok(())
}

fn cmd_snapshot(models_csv: &str, path: &str) -> Result<(), String> {
    let repo = ModelRepository::new(Box::new(GroupPlanner));
    let cost = CostModel::default();
    let models = models_csv
        .split(',')
        .map(|name| build(name.trim()))
        .collect::<Result<Vec<_>, _>>()?;
    repo.register_all(models, &cost);
    let snap = repo.snapshot();
    let json = snap.to_json();
    std::fs::write(path, &json).map_err(|e| format!("writing {path}: {e}"))?;
    println!(
        "persisted {} models and {} cached plans ({} bytes) to {path}",
        snap.models.len(),
        snap.plans.len(),
        json.len()
    );
    Ok(())
}

fn cmd_snapshot_info(path: &str) -> Result<(), String> {
    let json = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    let snap = optimus::core::RepositorySnapshot::from_json(&json).map_err(|e| e.to_string())?;
    let repo = ModelRepository::restore(snap, Box::new(GroupPlanner)).map_err(|e| e.to_string())?;
    println!("snapshot {path}:");
    for name in repo.model_names() {
        println!(
            "  {:<28} load {:.3} s",
            name,
            repo.load_cost(&name).unwrap_or(0.0)
        );
    }
    let names = repo.model_names();
    let mut transforms = 0;
    for a in &names {
        for b in &names {
            if a != b && repo.plan(a, b).is_some() {
                transforms += 1;
            }
        }
    }
    println!("  {} cached transformation plans", transforms);
    Ok(())
}

fn cmd_trace(path: &str, opts: &[String]) -> Result<(), String> {
    let get = |flag: &str| -> Option<&str> {
        opts.iter()
            .position(|a| a == flag)
            .and_then(|i| opts.get(i + 1))
            .map(String::as_str)
    };
    let n: usize = get("--functions")
        .unwrap_or("20")
        .parse()
        .map_err(|e| format!("bad --functions: {e}"))?;
    let duration: f64 = get("--duration")
        .unwrap_or("86400")
        .parse()
        .map_err(|e| format!("bad --duration: {e}"))?;
    let rate: f64 = get("--rate")
        .unwrap_or("0.003")
        .parse()
        .map_err(|e| format!("bad --rate: {e}"))?;
    let seed: u64 = get("--seed")
        .unwrap_or("7")
        .parse()
        .map_err(|e| format!("bad --seed: {e}"))?;
    let names: Vec<String> = (0..n).map(|i| format!("f{i}")).collect();
    let trace = match get("--workload").unwrap_or("azure") {
        "poisson" => PoissonGenerator::new(rate, duration, seed).generate(&names),
        "azure" => AzureTraceGenerator::new(duration, seed).generate(&names),
        other => return Err(format!("unknown workload '{other}'")),
    };
    std::fs::write(path, trace.to_json()).map_err(|e| format!("writing {path}: {e}"))?;
    println!(
        "wrote {} invocations over {:.1} h across {} functions to {path}",
        trace.len(),
        duration / 3600.0,
        n
    );
    Ok(())
}

fn cmd_simulate(models_csv: &str, opts: &[String]) -> Result<(), String> {
    let get = |flag: &str| -> Option<&str> {
        opts.iter()
            .position(|a| a == flag)
            .and_then(|i| opts.get(i + 1))
            .map(String::as_str)
    };
    let policy = match get("--policy").unwrap_or("optimus") {
        "openwhisk" => Policy::OpenWhisk,
        "pagurus" => Policy::Pagurus,
        "tetris" => Policy::Tetris,
        "optimus" => Policy::Optimus,
        other => return Err(format!("unknown policy '{other}'")),
    };
    let duration: f64 = get("--duration")
        .unwrap_or("21600")
        .parse()
        .map_err(|e| format!("bad --duration: {e}"))?;
    let rate: f64 = get("--rate")
        .unwrap_or("0.003")
        .parse()
        .map_err(|e| format!("bad --rate: {e}"))?;
    let nodes: usize = get("--nodes")
        .unwrap_or("2")
        .parse()
        .map_err(|e| format!("bad --nodes: {e}"))?;
    let capacity: usize = get("--capacity")
        .unwrap_or("12")
        .parse()
        .map_err(|e| format!("bad --capacity: {e}"))?;

    let repo = ModelRepository::new(Box::new(GroupPlanner));
    let cost = CostModel::default();
    let mut models = Vec::new();
    for name in models_csv.split(',') {
        models.push(build(name.trim())?);
    }
    let functions: Vec<String> = models.iter().map(|m| m.name().to_string()).collect();
    repo.register_all(models, &cost);
    let repo = Arc::new(repo);
    let trace: Trace = match get("--workload").unwrap_or("azure") {
        "poisson" => PoissonGenerator::new(rate, duration, 7).generate(&functions),
        "azure" => AzureTraceGenerator::new(duration, 7).generate(&functions),
        other => return Err(format!("unknown workload '{other}'")),
    };
    let config = SimConfig {
        nodes,
        capacity_per_node: capacity,
        placement: PlacementStrategy::default(),
        ..SimConfig::default()
    };
    eprintln!(
        "simulating {} requests over {:.1} h on {} node(s), policy {}",
        trace.len(),
        duration / 3600.0,
        nodes,
        policy
    );
    let report = Platform::new(config, policy, repo).run(&trace);
    let frac = report.start_fractions();
    let pct = |k: StartKind| 100.0 * frac.get(&k).copied().unwrap_or(0.0);
    println!("requests        : {}", report.len());
    println!("avg service time: {:.3} s", report.avg_service_time());
    println!(
        "p50/p99 service : {:.3} / {:.3} s",
        report.percentile_service_time(50.0),
        report.percentile_service_time(99.0)
    );
    let (w, i, l, c) = report.mean_breakdown();
    println!("mean breakdown  : wait {w:.3} + init {i:.3} + load {l:.3} + compute {c:.3}");
    println!(
        "starts          : cold {:.1}%, transform {:.1}%, warm {:.1}%",
        pct(StartKind::Cold),
        pct(StartKind::Transform),
        pct(StartKind::Warm)
    );
    println!("\nper-function:");
    for f in report.per_function() {
        println!(
            "  {:<26} {:>6} reqs  avg {:>7.3} s  (cold {} / xform {} / warm {})",
            f.function,
            f.requests,
            f.avg_service_time(),
            f.cold,
            f.transform,
            f.warm
        );
    }
    Ok(())
}

fn cmd_serve(models_csv: &str, opts: &[String]) -> Result<(), String> {
    let port: u16 = opts
        .iter()
        .position(|a| a == "--port")
        .and_then(|i| opts.get(i + 1))
        .map(|s| s.parse().map_err(|e| format!("bad --port: {e}")))
        .transpose()?
        .unwrap_or(8080);
    let plan_cache = opts
        .iter()
        .position(|a| a == "--plan-cache")
        .and_then(|i| opts.get(i + 1))
        .cloned();
    let mut builder = optimus::serve::Gateway::builder(optimus::serve::GatewayConfig::default());
    if let Some(path) = &plan_cache {
        builder = builder.plan_cache_path(path);
    }
    let models = models_csv
        .split(',')
        .map(|name| build(name.trim()))
        .collect::<Result<Vec<_>, _>>()?;
    let gateway = std::sync::Arc::new(builder.register_all(models).spawn());
    if let Some(path) = &plan_cache {
        println!("plan cache: {path} (warm-loaded if present, persisted on registration)");
    }
    let server = optimus::serve::HttpServer::serve(gateway, port).map_err(|e| e.to_string())?;
    println!("Optimus gateway listening on http://{}", server.addr());
    println!("  GET  /models");
    println!("  POST /infer  {{\"model\": \"<name>\", \"shape\": [..], \"data\": [..]}}");
    println!("  GET  /metrics   Prometheus text exposition");
    println!("  GET  /stats     metrics snapshot as JSON");
    println!("  GET  /healthz   liveness probe");
    println!("press Ctrl-C to stop");
    // Serve until the process is killed.
    loop {
        std::thread::sleep(std::time::Duration::from_secs(3600));
    }
}

fn truncate(s: &str, n: usize) -> String {
    s.chars().take(n).collect()
}
