//! # Optimus — warming serverless ML inference via inter-function model
//! transformation
//!
//! A from-scratch Rust reproduction of the EuroSys '24 paper *Optimus:
//! Warming Serverless ML Inference via Inter-Function Model
//! Transformation* (Hong et al.).
//!
//! This facade re-exports the whole system:
//!
//! - [`model`] — computational-graph IR with typed operations, lazy
//!   deterministic weights, and a forward-pass engine;
//! - [`zoo`] — VGG / ResNet / DenseNet / MobileNet / Xception / Inception /
//!   BERT / NAS-Bench-201 builders and the Imgclsmob-style catalog;
//! - [`profile`] — the offline profiler and calibrated latency cost model;
//! - [`core`] — the paper's contribution: meta-operators
//!   (Replace/Reshape/Reduce/Add/Edge), the Munkres and group-based
//!   planners, plan cache, safeguard, and container scheduling;
//! - [`balance`] — the §5.1 model-sharing-aware K-medoids load balancer;
//! - [`workload`] — Poisson and Azure-style trace generators;
//! - [`sim`] — the serverless-platform simulator with the four compared
//!   systems (OpenWhisk, Pagurus, Tetris, Optimus);
//! - [`serve`] — a live in-process serving engine (threads as containers)
//!   that really executes transformations and inference, mirroring the
//!   paper's §7 prototype;
//! - [`telemetry`] — the shared metrics + request-tracing substrate:
//!   lock-free counters/gauges/histograms, per-request phase spans, a
//!   Prometheus text renderer, and JSONL trace sinks, wired through the
//!   gateway, the simulator, the plan cache, and the balancer.
//!
//! ## Quickstart
//!
//! ```
//! use optimus::core::{GroupPlanner, Planner, execute_plan};
//! use optimus::profile::{CostModel, CostProvider};
//!
//! // A warm container holds VGG16; a request for VGG19 arrives.
//! let src = optimus::zoo::vgg::vgg16();
//! let dst = optimus::zoo::vgg::vgg19();
//! let cost = CostModel::default();
//!
//! // Plan the transformation (offline) and execute it (in-container).
//! let plan = GroupPlanner.plan(&src, &dst, &cost);
//! assert!(plan.cost.total() < cost.model_load_cost(&dst));
//!
//! let mut in_container = src.clone();
//! execute_plan(&mut in_container, &plan, &dst).unwrap();
//! assert!(in_container.structurally_equal(&dst));
//! ```

pub use optimus_balance as balance;
pub use optimus_core as core;
pub use optimus_model as model;
pub use optimus_profile as profile;
pub use optimus_serve as serve;
pub use optimus_sim as sim;
pub use optimus_telemetry as telemetry;
pub use optimus_workload as workload;
pub use optimus_zoo as zoo;
