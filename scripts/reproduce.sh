#!/usr/bin/env bash
# Regenerate every table/figure of the paper plus the ablations and
# extensions, writing JSON results into results/ and logs into logs/.
set -euo pipefail
cd "$(dirname "$0")/.."
mkdir -p results logs

echo "== building (release) =="
cargo build --release --workspace

EXPS=(fig2 fig3 fig4 fig5 fig8 fig11 fig12 fig13 fig14 fig15 table1 fig16 \
      ablation_planner ablation_safeguard ablation_balancer \
      ablation_thresholds ablation_memory ext_prewarm plan_warmup store)
for exp in "${EXPS[@]}"; do
  echo "== exp_${exp} =="
  ./target/release/exp_"${exp}" | tee "logs/exp_${exp}.log"
done

echo "== criterion micro-benchmarks =="
cargo bench -p optimus-bench | tee logs/criterion.log

echo "all experiments regenerated; see results/ and logs/"
