#!/usr/bin/env bash
# CI gate: formatting, lints, and the full test suite.
# Run locally before pushing; .github/workflows/ci.yml runs the same steps.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check =="
cargo fmt --all --check

echo "== cargo clippy (deny warnings) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo test =="
cargo test -q --workspace

echo "== sweep byte-identity (sequential vs 2/8 threads) =="
cargo test -q -p optimus-bench --test sweep_identity

echo "== sim event-loop bench smoke (small config) =="
cargo bench -p optimus-bench --bench sim_event_loop -- --small

echo "== exp_plan_warmup (small CI config) =="
cargo run --release -q -p optimus-bench --bin exp_plan_warmup -- --small

echo "== exp_store (small CI config, parallel sweep) =="
cargo run --release -q -p optimus-bench --bin exp_store -- --small --threads 2

echo "== exp_chaos (small CI config, fault-injection sweep) =="
cargo run --release -q -p optimus-bench --bin exp_chaos -- --small --threads 2

echo "== exp_scale_out (small CI config, elastic multicast sweep) =="
cargo run --release -q -p optimus-bench --bin exp_scale_out -- --small --threads 2

echo "== exp_serve_scale (small CI config, live serving front-end trajectory) =="
cargo run --release -q -p optimus-bench --bin exp_serve_scale -- --small

echo "== exp_prewarm_predict (small CI config, arrival-prediction sweep) =="
cargo run --release -q -p optimus-bench --bin exp_prewarm_predict -- --small --threads 2

echo "== exp_catalog_scale (small CI config, sharded plan-cache checks) =="
cargo run --release -q -p optimus-bench --bin exp_catalog_scale -- --small

echo "== exp_llm_transform (small CI config, decoder transformation checks) =="
cargo run --release -q -p optimus-bench --bin exp_llm_transform -- --small --threads 2

echo "== decide-path bench smoke (small config) =="
cargo bench -p optimus-bench --bench decide_path -- --small

echo "all checks passed"
